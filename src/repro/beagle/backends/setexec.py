"""Shared operation-set executor used by every NumPy-family backend.

:func:`execute_operation_block` evaluates the slice ``ops[lo:hi]`` of an
independent operation set through a :class:`~repro.beagle.workspace.Workspace`
arena — classification, gathers, batched matmuls, the contribution
product, per-operation rescaling and the destination scatter. The
reference backend runs one block covering the whole set; the blocked
backend partitions the set into cache-sized blocks and loops.

Bit-identity across block boundaries is structural, not incidental: the
batched ``matmul`` over ``(n, C, P, S)`` stacks is a loop of independent
2-D GEMMs, so restricting the same call sequence to a sub-range performs
exactly the same arithmetic on exactly the same operands. The parity
suite (``tests/property/test_backend_parity.py``) still asserts it
empirically.

Block-local row layout (``nb = hi - lo`` operations): first children
occupy contribution rows ``0..nb-1``, second children ``nb..2nb-1`` —
the same layout the monolithic engine used for the whole set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from ...obs import get_recorder
from ...obs.profile import PHASE_PARTIALS, PHASE_SCALING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..instance import BeagleInstance
    from ..operations import Operation
    from ..workspace import Workspace

__all__ = ["execute_operation_block", "execute_upper_block", "MatmulHook"]

#: Signature of a batched-matmul override: ``hook(gathered, mats, out)``
#: computes ``out[i] = gathered[i] @ mats[i].T`` per category for stacks
#: of ``(n, C, P, S)`` partials and ``(n, C, S, S)`` (untransposed)
#: matrices. ``None`` selects the BLAS path through the arena's
#: transpose scratch.
MatmulHook = Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], None]]


def execute_operation_block(
    instance: "BeagleInstance",
    ws: "Workspace",
    ops: List["Operation"],
    lo: int,
    hi: int,
    matmul: MatmulHook = None,
) -> None:
    """Evaluate operations ``ops[lo:hi]`` through the arena ``ws``.

    The caller must have sized the arena (``ws.ensure(hi - lo)``) and
    validated set independence. Child buffers are validated here (firsts
    before seconds, matching the serial execution order), destinations
    are written and marked valid, and operations carrying a
    ``destination_scale`` are rescaled exactly as the serial kernel
    rescales — so any partition of a set into blocks computes the same
    bits as one block covering the whole set.
    """
    nb = hi - lo
    block = ops[lo:hi]
    with get_recorder().phase(PHASE_PARTIALS):
        # Classification pass: validate children (firsts before seconds,
        # matching the serial order) and bucket each row as internal
        # partials, compact tip codes or explicit tip partials. Pure int
        # bookkeeping into preallocated arrays.
        n_int = n_code = n_exp = 0
        for base, which in ((0, 0), (nb, 1)):
            for i, op in enumerate(block):
                if which == 0:
                    b, mat = op.child1, op.child1_matrix
                else:
                    b, mat = op.child2, op.child2_matrix
                row = base + i
                ws.child_buffers[row] = b
                if b < instance.tip_count:
                    if b in instance._tip_codes:
                        ws.code_sel[n_code] = row
                        ws.code_tips[n_code] = b
                        ws.code_mats[n_code] = mat
                        n_code += 1
                    elif b in instance._tip_partials:
                        ws.explicit_sel[n_exp] = row
                        ws.explicit_mats[n_exp] = mat
                        n_exp += 1
                    else:
                        raise ValueError(f"tip buffer {b} has no data")
                else:
                    slot = instance._internal_slot(b)
                    if not instance._partials_valid[slot]:
                        raise ValueError(
                            f"partials buffer {b} read before being computed"
                        )
                    ws.internal_sel[n_int] = row
                    ws.internal_slots[n_int] = slot
                    ws.internal_mats[n_int] = mat
                    n_int += 1
        for i, op in enumerate(block):
            slot = op.destination - instance.tip_count
            if not 0 <= slot < instance.partials_buffer_count:
                raise IndexError("destination buffer out of range")
            ws.dest_slots[i] = slot

        C, S = instance.category_count, instance.state_count
        if n_int:
            # Internal children: gather partials and matrices into
            # contiguous stacks, one batched L @ Pᵀ, scatter back.
            np.take(
                instance._partials,
                ws.internal_slots[:n_int],
                axis=0,
                out=ws.gathered[:n_int],
            )
            np.take(
                instance._matrices,
                ws.internal_mats[:n_int],
                axis=0,
                out=ws.mats[:n_int],
            )
            if matmul is None:
                np.copyto(
                    ws.mats_T[:n_int], ws.mats[:n_int].transpose(0, 1, 3, 2)
                )
                np.matmul(
                    ws.gathered[:n_int], ws.mats_T[:n_int], out=ws.scratch[:n_int]
                )
            else:
                matmul(ws.gathered[:n_int], ws.mats[:n_int], ws.scratch[:n_int])
            ws.contributions[ws.internal_sel[:n_int]] = ws.scratch[:n_int]
        if n_code:
            # Compact tips: transpose matrices and pad a ones row at
            # state index S (the "unknown" code), then resolve every
            # (row, category, pattern) to one flat row gather.
            np.take(
                instance._matrices,
                ws.code_mats[:n_code],
                axis=0,
                out=ws.mats[:n_code],
            )
            np.copyto(
                ws.padded_T[:n_code, :, :S, :],
                ws.mats[:n_code].transpose(0, 1, 3, 2),
            )
            ws.padded_T[:n_code, :, S, :] = 1.0
            np.take(
                instance._tip_codes_dense,
                ws.code_tips[:n_code],
                axis=0,
                out=ws.codes[:n_code],
            )
            np.add(
                ws.row_base[:n_code, :, None],
                ws.codes[:n_code][:, None, :],
                out=ws.rowidx[:n_code],
            )
            rows2d = ws.padded_T[:n_code].reshape(n_code * C * (S + 1), S)
            np.take(
                rows2d,
                ws.rowidx[:n_code],
                axis=0,
                out=ws.scratch[:n_code],
                mode="clip",
            )
            ws.contributions[ws.code_sel[:n_code]] = ws.scratch[:n_code]
        for j in range(n_exp):  # rare: partial-ambiguity tips
            row = int(ws.explicit_sel[j])
            partials = instance._tip_partials[int(ws.child_buffers[row])]
            np.matmul(
                partials,
                instance._matrices[int(ws.explicit_mats[j])].transpose(0, 2, 1),
                out=ws.contributions[row],
            )

        product = ws.contributions[:nb]
        np.multiply(product, ws.contributions[nb : 2 * nb], out=product)
    if any(op.destination_scale >= 0 for op in block):
        with get_recorder().phase(PHASE_SCALING):
            factors = ws.scale_factors
            safe = ws.scale_safe
            mask = ws.scale_mask
            logs = ws.scale_logs
            for i, op in enumerate(block):
                if op.destination_scale < 0:
                    continue
                rows = product[i]  # (C, P, S) view
                np.amax(rows, axis=(0, 2), out=factors)
                np.less_equal(factors, 0.0, out=mask)
                np.copyto(safe, factors)
                safe[mask] = 1.0
                rows /= safe[None, :, None]
                np.log(safe, out=logs)
                instance.scale.write(op.destination_scale, logs)
    instance._partials[ws.dest_slots[:nb]] = product
    instance._partials_valid[ws.dest_slots[:nb]] = True


def execute_upper_block(
    instance: "BeagleInstance",
    ws: "Workspace",
    ops: List["Operation"],
    lo: int,
    hi: int,
    matmul: MatmulHook = None,
) -> None:
    """Evaluate *upper*-partial operations ``ops[lo:hi]`` through ``ws``.

    The pre-order twin of :func:`execute_operation_block`: ``child1`` is
    a sibling's lower buffer (tip codes, explicit tip partials, or
    internal partials — the same classification), ``child2`` is always
    the parent's upper buffer, and the destination lands in the upper
    bank. The arithmetic per operation is exactly Eq. 1 — two child
    contributions multiplied — so any block partition computes the same
    bits as the serial kernel, and the results match the far-side
    half-tree partials a per-edge rerooted post-order evaluation would
    produce (the bit-consistency the gradient parity gate asserts).

    Upper operations never rescale (``destination_scale`` is −1 by
    construction; the gradient engine runs unscaled, like the per-edge
    derivative oracle).
    """
    nb = hi - lo
    block = ops[lo:hi]
    base = instance.upper_base
    upper = instance._upper
    upper_valid = instance._upper_valid
    assert upper is not None and upper_valid is not None
    with get_recorder().phase(PHASE_PARTIALS):
        # First children (lower bank): the standard classification pass
        # over rows 0..nb-1.
        n_int = n_code = n_exp = 0
        for i, op in enumerate(block):
            b, mat = op.child1, op.child1_matrix
            ws.child_buffers[i] = b
            if b < instance.tip_count:
                if b in instance._tip_codes:
                    ws.code_sel[n_code] = i
                    ws.code_tips[n_code] = b
                    ws.code_mats[n_code] = mat
                    n_code += 1
                elif b in instance._tip_partials:
                    ws.explicit_sel[n_exp] = i
                    ws.explicit_mats[n_exp] = mat
                    n_exp += 1
                else:
                    raise ValueError(f"tip buffer {b} has no data")
            else:
                slot = instance._internal_slot(b)
                if not instance._partials_valid[slot]:
                    raise ValueError(
                        f"partials buffer {b} read before being computed"
                    )
                ws.internal_sel[n_int] = i
                ws.internal_slots[n_int] = slot
                ws.internal_mats[n_int] = mat
                n_int += 1
        # Second children (upper bank) and destinations: pure slot math.
        for i, op in enumerate(block):
            slot = op.child2 - base
            if not 0 <= slot < upper.shape[0]:
                raise IndexError(f"upper buffer {op.child2} out of range")
            if not upper_valid[slot]:
                raise ValueError(
                    f"upper buffer {op.child2} read before being computed"
                )
            ws.upper_slots[i] = slot
            ws.upper_mats[i] = op.child2_matrix
            dest = op.destination - base
            if not 0 <= dest < upper.shape[0]:
                raise IndexError(
                    f"upper destination {op.destination} out of range"
                )
            ws.dest_slots[i] = dest

        C, S = instance.category_count, instance.state_count
        if n_int:
            np.take(
                instance._partials,
                ws.internal_slots[:n_int],
                axis=0,
                out=ws.gathered[:n_int],
            )
            np.take(
                instance._matrices,
                ws.internal_mats[:n_int],
                axis=0,
                out=ws.mats[:n_int],
            )
            if matmul is None:
                np.copyto(
                    ws.mats_T[:n_int], ws.mats[:n_int].transpose(0, 1, 3, 2)
                )
                np.matmul(
                    ws.gathered[:n_int], ws.mats_T[:n_int], out=ws.scratch[:n_int]
                )
            else:
                matmul(ws.gathered[:n_int], ws.mats[:n_int], ws.scratch[:n_int])
            ws.contributions[ws.internal_sel[:n_int]] = ws.scratch[:n_int]
        if n_code:
            np.take(
                instance._matrices,
                ws.code_mats[:n_code],
                axis=0,
                out=ws.mats[:n_code],
            )
            np.copyto(
                ws.padded_T[:n_code, :, :S, :],
                ws.mats[:n_code].transpose(0, 1, 3, 2),
            )
            ws.padded_T[:n_code, :, S, :] = 1.0
            np.take(
                instance._tip_codes_dense,
                ws.code_tips[:n_code],
                axis=0,
                out=ws.codes[:n_code],
            )
            np.add(
                ws.row_base[:n_code, :, None],
                ws.codes[:n_code][:, None, :],
                out=ws.rowidx[:n_code],
            )
            rows2d = ws.padded_T[:n_code].reshape(n_code * C * (S + 1), S)
            np.take(
                rows2d,
                ws.rowidx[:n_code],
                axis=0,
                out=ws.scratch[:n_code],
                mode="clip",
            )
            ws.contributions[ws.code_sel[:n_code]] = ws.scratch[:n_code]
        for j in range(n_exp):  # rare: partial-ambiguity tips
            row = int(ws.explicit_sel[j])
            partials = instance._tip_partials[int(ws.child_buffers[row])]
            np.matmul(
                partials,
                instance._matrices[int(ws.explicit_mats[j])].transpose(0, 2, 1),
                out=ws.contributions[row],
            )

        # Parent uppers: gather, batched L @ Pᵀ into the second-child rows.
        np.take(upper, ws.upper_slots[:nb], axis=0, out=ws.gathered[:nb])
        np.take(
            instance._matrices, ws.upper_mats[:nb], axis=0, out=ws.mats[:nb]
        )
        if matmul is None:
            np.copyto(ws.mats_T[:nb], ws.mats[:nb].transpose(0, 1, 3, 2))
            np.matmul(
                ws.gathered[:nb],
                ws.mats_T[:nb],
                out=ws.contributions[nb : 2 * nb],
            )
        else:
            matmul(ws.gathered[:nb], ws.mats[:nb], ws.contributions[nb : 2 * nb])

        product = ws.contributions[:nb]
        np.multiply(product, ws.contributions[nb : 2 * nb], out=product)
    upper[ws.dest_slots[:nb]] = product
    upper_valid[ws.dest_slots[:nb]] = True
