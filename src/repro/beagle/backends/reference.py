"""The reference NumPy backend — the engine's original kernel path.

This is the code that lived inline in
:class:`~repro.beagle.instance.BeagleInstance` before the backend split,
verbatim: one arena sized to the whole operation set, one pass of
gathers/matmuls/product per launch. Its log-likelihoods define
correctness — every other backend is gated against it by
:mod:`repro.beagle.parity`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from ...models.eigen import transition_matrices
from ..backend import BackendInfo
from ..kernels import rescale_partials, root_site_likelihoods, update_partials
from ..workspace import Workspace
from .setexec import execute_operation_block, execute_upper_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...models.eigen import EigenDecomposition
    from ..instance import BeagleInstance
    from ..operations import Operation

__all__ = ["ReferenceBackend"]


class ReferenceBackend:
    """Baseline NumPy kernels; the parity gate's ground truth."""

    _info = BackendInfo(
        name="reference",
        description="baseline NumPy engine (whole-set arena, one pass)",
        kind="cpu",
        parity="bit-identical",
    )

    @property
    def info(self) -> BackendInfo:
        """Static descriptor: name, kind and parity class."""
        return self._info

    def create_workspace(
        self,
        dtype: np.dtype,
        category_count: int,
        pattern_count: int,
        state_count: int,
    ) -> Workspace:
        """One grow-on-demand arena sized to the widest set seen."""
        return Workspace(dtype, category_count, pattern_count, state_count)

    def materialize_matrices(
        self, eigen: "EigenDecomposition", scaled_times: np.ndarray
    ) -> np.ndarray:
        """One batched eigen-multiply for all (time, category) pairs."""
        return transition_matrices(eigen, scaled_times)

    def update_partials_batch(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Evaluate the whole set as a single arena block."""
        k = len(operations)
        ws = instance.workspace
        ws.ensure(k)
        execute_operation_block(instance, ws, operations, 0, k)

    def update_partials_single(
        self, instance: "BeagleInstance", operation: "Operation"
    ) -> None:
        """One operation through the serial kernel (no arena)."""
        op = operation
        partials1, codes1 = instance._child_arrays(op.child1)
        partials2, codes2 = instance._child_arrays(op.child2)
        slot = instance._internal_slot(op.destination)
        update_partials(
            instance._matrices[op.child1_matrix],
            instance._matrices[op.child2_matrix],
            partials1,
            codes1,
            partials2,
            codes2,
            out=instance._partials[slot],
        )

    def update_upper_partials(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Evaluate one pre-order upper set as a single arena block."""
        k = len(operations)
        ws = instance.workspace
        ws.ensure(k)
        execute_upper_block(instance, ws, operations, 0, k)

    def rescale(self, partials: np.ndarray) -> np.ndarray:
        """BEAGLE's dynamic-max rescale (see :func:`rescale_partials`)."""
        return rescale_partials(partials)

    def root_reduce(
        self,
        partials: np.ndarray,
        frequencies: np.ndarray,
        category_weights: np.ndarray,
    ) -> np.ndarray:
        """Frequency/category contraction to per-pattern likelihoods."""
        return root_site_likelihoods(partials, frequencies, category_weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._info.name}>"
