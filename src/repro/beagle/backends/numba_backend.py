"""Optional numba-compiled backend (never required).

When `numba <https://numba.pydata.org/>`_ is importable, this module
provides :class:`NumbaBackend`: the cache-blocked strategy of
:class:`~repro.beagle.backends.blocked.BlockedNumpyBackend` with the
batched contribution GEMM replaced by an ``@njit``-compiled loop nest.
The compiled kernel accumulates each inner product in a fixed ascending
order, which is *not* guaranteed to match the BLAS summation order —
so the backend registers under the ``tolerance`` parity class with a
documented log-likelihood bound instead of claiming bit-identity.

When numba is absent (the default in this repository's container), the
module still imports cleanly: :data:`NUMBA_AVAILABLE` is ``False``,
:class:`NumbaBackend` raises a typed error on construction, and the
resource registry simply never lists the backend. Nothing anywhere
requires the dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..backend import BackendInfo
from .blocked import BlockedNumpyBackend
from .setexec import MatmulHook

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore[import-not-found]

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the expected offline path
    numba = None
    NUMBA_AVAILABLE = False

__all__ = ["NumbaBackend", "NUMBA_AVAILABLE"]

_compiled_gemm = None


def _build_gemm():  # pragma: no cover - requires numba
    """Compile (once) the ordered batched ``L @ Pᵀ`` loop nest."""
    global _compiled_gemm
    if _compiled_gemm is None:

        @numba.njit(cache=False, fastmath=False)
        def batched_gemm_t(gathered, mats, out):
            n, C, P, S = gathered.shape
            for i in range(n):
                for c in range(C):
                    for p in range(P):
                        for z in range(S):
                            acc = 0.0
                            for x in range(S):
                                acc += gathered[i, c, p, x] * mats[i, c, z, x]
                            out[i, c, p, z] = acc

        _compiled_gemm = batched_gemm_t
    return _compiled_gemm


class NumbaBackend(BlockedNumpyBackend):
    """Blocked execution with a numba-compiled contribution GEMM.

    Parity class ``tolerance``: the compiled kernel's fixed ascending
    accumulation order may differ from the BLAS order, bounding the
    log-likelihood deviation from the reference backend at
    ``info.tolerance`` (1e-6) instead of zero. Construction raises
    ``ImportError`` when numba is not importable; the registry only
    offers this resource when it is.
    """

    _info = BackendInfo(
        name="numba",
        description="numba-compiled blocked engine (tolerance parity)",
        kind="cpu",
        parity="tolerance",
        tolerance=1e-6,
        requires=("numba",),
    )

    def __init__(self, *args, **kwargs) -> None:
        if not NUMBA_AVAILABLE:
            raise ImportError(
                "the 'numba' backend requires the numba package, which is "
                "not importable in this environment; use 'reference' or "
                "'blocked' instead"
            )
        super().__init__(*args, **kwargs)

    def _matmul(self) -> MatmulHook:  # pragma: no cover - requires numba
        """The compiled loop nest instead of BLAS."""
        return _build_gemm()
