"""Pattern-axis blocking for narrow operation sets.

The batch-axis blocking of :class:`BlockedNumpyBackend` only helps when a
set is *wide*: a pectinate tree's sets hold one or two operations each,
so there is no batch axis to partition and the whole
``(C, P, S)`` working set of every operation streams through cache
anyway. This backend adds the orthogonal cut: for narrow sets it
evaluates each operation pattern-tile by pattern-tile, keeping the tile's
child contributions and destination slice cache-resident. Wide sets
defer to the inherited batch-axis path, so the backend is never worse
than ``blocked``.

Bit-identity holds on both paths: a pattern tile of the child
contribution ``L @ Pᵀ`` is a row partition of independent
``(S,)·(S,S)`` products (the reduction axis ``S`` is untouched), the
tip-code path is an exact gather, and rescaling runs over the fully
assembled destination exactly as the shared set executor runs it. The
parity suite asserts the equality empirically per release.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ...obs import get_recorder
from ...obs.profile import PHASE_PARTIALS, PHASE_SCALING
from ..backend import BackendInfo
from ..kernels import child_contribution
from .blocked import DEFAULT_CACHE_BUDGET_BYTES, BlockedNumpyBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..instance import BeagleInstance
    from ..operations import Operation

__all__ = ["PatternBlockedBackend"]

#: Sets narrower than this run pattern-tiled; wider sets use the
#: inherited batch-axis blocking (which needs a batch axis to cut).
DEFAULT_NARROW_THRESHOLD = 4

_MIN_TILE = 64


class PatternBlockedBackend(BlockedNumpyBackend):
    """Cache blocking along the pattern axis for narrow sets.

    Parameters
    ----------
    narrow_threshold:
        Sets with fewer operations than this are evaluated one operation
        at a time in pattern tiles; wider sets use the inherited
        batch-axis blocking.
    pattern_tile:
        Fixed patterns per tile; ``None`` (default) sizes tiles from
        ``cache_budget_bytes`` and the instance dimensions, clamped to
        at least 64 patterns.
    block_ops, cache_budget_bytes:
        Passed through to :class:`BlockedNumpyBackend`.
    """

    _info = BackendInfo(
        name="pattern-blocked",
        description=(
            "pattern-axis blocking for narrow sets, batch-axis for wide "
            "(bit-identical)"
        ),
        kind="cpu",
        parity="bit-identical",
    )

    def __init__(
        self,
        block_ops: Optional[int] = None,
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET_BYTES,
        *,
        narrow_threshold: int = DEFAULT_NARROW_THRESHOLD,
        pattern_tile: Optional[int] = None,
    ) -> None:
        super().__init__(block_ops, cache_budget_bytes)
        if narrow_threshold < 1:
            raise ValueError("narrow_threshold must be positive")
        if pattern_tile is not None and pattern_tile < 1:
            raise ValueError("pattern_tile must be positive")
        self._narrow_threshold = narrow_threshold
        self._pattern_tile = pattern_tile

    def tile_for(self, instance: "BeagleInstance") -> int:
        """Patterns per tile for this instance's dimensions.

        Six hot ``(C, tile, S)`` slices per tile (two child
        contributions, the destination, plus transpose/gather scratch):
        ``6·C·tile·S`` elements inside the cache budget.
        """
        if self._pattern_tile is not None:
            return self._pattern_tile
        per_pattern = (
            6
            * instance.category_count
            * instance.state_count
            * instance.dtype.itemsize
        )
        tile = self._cache_budget_bytes // max(per_pattern, 1)
        return int(min(max(tile, _MIN_TILE), instance.pattern_count))

    def _tile_contribution(
        self,
        instance: "BeagleInstance",
        buffer_index: int,
        matrix_index: int,
        p0: int,
        p1: int,
    ) -> np.ndarray:
        """One child's contribution restricted to patterns ``p0:p1``."""
        matrices = instance._matrices[matrix_index]
        if buffer_index < instance.tip_count:
            if buffer_index in instance._tip_codes:
                codes = instance._tip_codes[buffer_index][p0:p1]
                return child_contribution(
                    matrices, codes=codes, dtype=instance.dtype
                )
            if buffer_index in instance._tip_partials:
                partials = instance._tip_partials[buffer_index]
                return partials[:, p0:p1, :] @ matrices.transpose(0, 2, 1)
            raise ValueError(f"tip buffer {buffer_index} has no data")
        slot = instance._internal_slot(buffer_index)
        if not instance._partials_valid[slot]:
            raise ValueError(
                f"partials buffer {buffer_index} read before being computed"
            )
        partials = instance._partials[slot]
        return partials[:, p0:p1, :] @ matrices.transpose(0, 2, 1)

    def _tiled_operation(
        self,
        instance: "BeagleInstance",
        op: "Operation",
        out: np.ndarray,
        tile: int,
    ) -> None:
        """Assemble one destination ``(C, P, S)`` tile by tile."""
        P = instance.pattern_count
        for p0 in range(0, P, tile):
            p1 = min(p0 + tile, P)
            left = self._tile_contribution(
                instance, op.child1, op.child1_matrix, p0, p1
            )
            right = self._tile_contribution(
                instance, op.child2, op.child2_matrix, p0, p1
            )
            np.multiply(left, right, out=out[:, p0:p1, :])

    def _rescale_destination(
        self, instance: "BeagleInstance", op: "Operation", out: np.ndarray
    ) -> None:
        """Per-operation rescale over the assembled destination.

        The same arithmetic, scratch and scale-bank write as the shared
        set executor — run after all tiles so the max reduction sees the
        identical full-pattern array.
        """
        ws = instance.workspace
        factors = ws.scale_factors
        safe = ws.scale_safe
        mask = ws.scale_mask
        logs = ws.scale_logs
        np.amax(out, axis=(0, 2), out=factors)
        np.less_equal(factors, 0.0, out=mask)
        np.copyto(safe, factors)
        safe[mask] = 1.0
        out /= safe[None, :, None]
        np.log(safe, out=logs)
        instance.scale.write(op.destination_scale, logs)

    def update_partials_batch(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Narrow sets pattern-tiled, wide sets batch-axis blocked."""
        if len(operations) >= self._narrow_threshold:
            super().update_partials_batch(instance, operations)
            return
        tile = self.tile_for(instance)
        instance.workspace  # materialise scale scratch before use
        for op in operations:
            slot = instance._internal_slot(op.destination)
            out = instance._partials[slot]
            with get_recorder().phase(PHASE_PARTIALS):
                self._tiled_operation(instance, op, out, tile)
            if op.destination_scale >= 0:
                with get_recorder().phase(PHASE_SCALING):
                    self._rescale_destination(instance, op, out)
            instance._partials_valid[slot] = True

    def update_upper_partials(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Pre-order twin: narrow upper sets pattern-tiled as well."""
        if len(operations) >= self._narrow_threshold:
            super().update_upper_partials(instance, operations)
            return
        tile = self.tile_for(instance)
        base = instance.upper_base
        upper = instance._upper
        upper_valid = instance._upper_valid
        assert upper is not None and upper_valid is not None
        P = instance.pattern_count
        for op in operations:
            parent_slot = op.child2 - base
            if not 0 <= parent_slot < upper.shape[0]:
                raise IndexError(f"upper buffer {op.child2} out of range")
            if not upper_valid[parent_slot]:
                raise ValueError(
                    f"upper buffer {op.child2} read before being computed"
                )
            dest = op.destination - base
            if not 0 <= dest < upper.shape[0]:
                raise IndexError(
                    f"upper destination {op.destination} out of range"
                )
            out = upper[dest]
            parent = upper[parent_slot]
            matrices = instance._matrices[op.child2_matrix]
            with get_recorder().phase(PHASE_PARTIALS):
                for p0 in range(0, P, tile):
                    p1 = min(p0 + tile, P)
                    left = self._tile_contribution(
                        instance, op.child1, op.child1_matrix, p0, p1
                    )
                    right = parent[:, p0:p1, :] @ matrices.transpose(0, 2, 1)
                    np.multiply(left, right, out=out[:, p0:p1, :])
            upper_valid[dest] = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tile = self._pattern_tile if self._pattern_tile is not None else "auto"
        return (
            f"<{type(self).__name__} {self._info.name} tile={tile} "
            f"narrow<{self._narrow_threshold}>"
        )
