"""Kernel-backend implementations.

Each module here implements the :class:`~repro.beagle.backend.KernelBackend`
protocol for one execution strategy:

* :mod:`~repro.beagle.backends.reference` — the baseline NumPy engine,
  exactly the code that lived inline in ``BeagleInstance`` before the
  backend split. Its numbers *define* correctness for the parity gate.
* :mod:`~repro.beagle.backends.blocked` — the same NumPy call sequence
  applied in cache-sized blocks along the operation axis; bit-identical
  to the reference and measurably faster on wide operation sets.
* :mod:`~repro.beagle.backends.pattern_blocked` — the orthogonal cut:
  pattern-axis tiling for *narrow* sets (pectinate/random regimes where
  there is no batch axis to partition), batch-axis blocking otherwise;
  bit-identical on both paths.
* :mod:`~repro.beagle.backends.numba_backend` — optional: the blocked
  strategy with the batched matmul compiled by numba when that package
  is importable. Never required; registered only when available.

Backends register with :mod:`repro.beagle.resources`; nothing imports
:mod:`repro.beagle.instance` from here (the dependency points the other
way).
"""

from .reference import ReferenceBackend
from .blocked import BlockedNumpyBackend
from .pattern_blocked import PatternBlockedBackend
from .numba_backend import NUMBA_AVAILABLE, NumbaBackend

__all__ = [
    "ReferenceBackend",
    "BlockedNumpyBackend",
    "PatternBlockedBackend",
    "NumbaBackend",
    "NUMBA_AVAILABLE",
]
