"""Cache-blocked NumPy backend: the same arithmetic, a smaller working set.

The reference backend streams a whole k-operation set through arena
buffers of ``2k`` rows — at 256 taxa × 1024 patterns that is tens of
megabytes touched per launch, far beyond any CPU cache level. This
backend partitions the set into blocks of ``B`` operations along the
batch axis and runs the identical call sequence per block, keeping the
hot arena rows cache-resident. Because the batched GEMM is a loop of
independent 2-D multiplies, the partition changes *nothing* about the
arithmetic: results are bit-identical to the reference backend (parity
class ``bit-identical``), while the measured wall clock on wide sets
drops ~1.3× on the acceptance config (see
``bench_results/backend_matrix.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..backend import BackendInfo
from .reference import ReferenceBackend
from .setexec import MatmulHook, execute_operation_block, execute_upper_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..instance import BeagleInstance
    from ..operations import Operation

__all__ = ["BlockedNumpyBackend", "DEFAULT_CACHE_BUDGET_BYTES"]

#: Target working-set size of one block. The block's hot rows span three
#: ``(2B, C, P, S)`` arrays (contributions, scratch, gathered); 768 KiB
#: keeps them comfortably L2-resident, which measured fastest in the
#: block-size sweep (B = 4 on the 256-taxon/1024-pattern f64 config,
#: 1.3x over the reference; larger budgets plateaued by B ≈ 32).
DEFAULT_CACHE_BUDGET_BYTES = 768 * 1024

_MIN_BLOCK = 4
_MAX_BLOCK = 64


class BlockedNumpyBackend(ReferenceBackend):
    """Reference arithmetic in cache-sized blocks along the batch axis.

    Parameters
    ----------
    block_ops:
        Fixed operations per block; ``None`` (default) sizes blocks from
        ``cache_budget_bytes`` and the instance dimensions, clamped to
        ``[4, 64]``.
    cache_budget_bytes:
        Working-set target for automatic block sizing.
    """

    _info = BackendInfo(
        name="blocked",
        description="cache-blocked NumPy engine (bit-identical, ~1.3x on wide sets)",
        kind="cpu",
        parity="bit-identical",
    )

    def __init__(
        self,
        block_ops: Optional[int] = None,
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET_BYTES,
    ) -> None:
        if block_ops is not None and block_ops < 1:
            raise ValueError("block_ops must be positive")
        if cache_budget_bytes < 1:
            raise ValueError("cache_budget_bytes must be positive")
        self._block_ops = block_ops
        self._cache_budget_bytes = cache_budget_bytes

    def block_for(self, instance: "BeagleInstance") -> int:
        """Operations per block for this instance's dimensions."""
        if self._block_ops is not None:
            return self._block_ops
        # Three hot (2B, C, P, S) arrays per block: contributions,
        # scratch and gathered — 6·B·C·P·S elements.
        row_bytes = (
            instance.category_count
            * instance.pattern_count
            * instance.state_count
            * instance.dtype.itemsize
        )
        block = self._cache_budget_bytes // max(6 * row_bytes, 1)
        return int(min(max(block, _MIN_BLOCK), _MAX_BLOCK))

    def _matmul(self) -> MatmulHook:
        """Batched-matmul override for subclasses; BLAS when ``None``."""
        return None

    def update_partials_batch(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Evaluate the set block by block through a block-sized arena."""
        k = len(operations)
        block = self.block_for(instance)
        ws = instance.workspace
        ws.ensure(min(k, block))
        matmul = self._matmul()
        for lo in range(0, k, block):
            execute_operation_block(
                instance, ws, operations, lo, min(lo + block, k), matmul=matmul
            )

    def update_upper_partials(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Evaluate one pre-order upper set block by block."""
        k = len(operations)
        block = self.block_for(instance)
        ws = instance.workspace
        ws.ensure(min(k, block))
        matmul = self._matmul()
        for lo in range(0, k, block):
            execute_upper_block(
                instance, ws, operations, lo, min(lo + block, k), matmul=matmul
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        block = self._block_ops if self._block_ops is not None else "auto"
        return f"<{type(self).__name__} {self._info.name} block={block}>"
