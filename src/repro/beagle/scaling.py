"""Scale-factor buffer management.

Likelihood partials underflow single- and even double-precision floats on
large trees: each level multiplies values < 1. BEAGLE's remedy is
per-pattern rescaling — divide a freshly computed partials array by its
per-pattern maximum and remember the logs. The ``--manualscale`` /
``--rescale-frequency`` options of ``synthetictest`` (Table II) control
when these factors are recomputed; this module provides the buffer bank
backing that machinery in :class:`repro.beagle.instance.BeagleInstance`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScaleBufferBank"]


class ScaleBufferBank:
    """A bank of per-pattern log scale-factor buffers.

    Parameters
    ----------
    count:
        Number of buffers (BEAGLE's ``scaleBufferCount``).
    n_patterns:
        Buffer length; one log factor per site pattern.
    """

    def __init__(self, count: int, n_patterns: int) -> None:
        if count < 0 or n_patterns < 1:
            raise ValueError("invalid scale buffer dimensions")
        self._logs = np.zeros((count, n_patterns))

    @property
    def count(self) -> int:
        """Number of scale buffers in the bank."""
        return int(self._logs.shape[0])

    @property
    def n_patterns(self) -> int:
        """Patterns per scale buffer."""
        return int(self._logs.shape[1])

    def _check(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise IndexError(f"scale buffer {index} out of range [0, {self.count})")

    def write(self, index: int, log_factors: np.ndarray) -> None:
        """Overwrite one buffer with fresh per-pattern log factors.

        Raises
        ------
        ValueError
            If ``log_factors`` is not exactly one log factor per pattern.
            NumPy assignment would otherwise silently *broadcast* a
            wrong-shaped array — a scalar, a short vector of a
            compatible length-1 axis, or a ``(k, n_patterns)`` block —
            corrupting every accumulated likelihood downstream.
        """
        self._check(index)
        arr = np.asarray(log_factors, dtype=np.float64)
        if arr.shape != (self.n_patterns,):
            raise ValueError(
                f"log factors must have shape ({self.n_patterns},) — one "
                f"per pattern — got {arr.shape}"
            )
        self._logs[index] = arr

    def read(self, index: int) -> np.ndarray:
        """Log factors of one buffer (copy)."""
        self._check(index)
        return self._logs[index].copy()

    def reset(self, index: int) -> None:
        """Zero one buffer (log factor 0 == factor 1)."""
        self._check(index)
        self._logs[index] = 0.0

    def reset_all(self) -> None:
        """Zero every scale buffer."""
        self._logs[:] = 0.0

    def accumulate(self, source_indices, cumulative_index: int) -> None:
        """Sum source buffers into the cumulative buffer (BEAGLE's
        ``accumulateScaleFactors`` with log scalers)."""
        self._check(cumulative_index)
        for index in source_indices:
            self._check(index)
            if index == cumulative_index:
                raise ValueError("cumulative buffer cannot be its own source")
        for index in source_indices:
            self._logs[cumulative_index] += self._logs[index]
