"""The kernel-backend contract: one protocol, many implementations.

BEAGLE gets "fast as the hardware allows" by hiding heterogeneous kernel
implementations behind a resource-discovery API: callers ask for a
resource and receive *some* implementation honouring one numerical
contract. This module is that contract for the NumPy work-alike. A
:class:`KernelBackend` supplies the five operations the engine
(:class:`~repro.beagle.instance.BeagleInstance`) delegates:

* workspace/arena allocation (:meth:`KernelBackend.create_workspace`),
* transition-matrix materialization
  (:meth:`KernelBackend.materialize_matrices`),
* batched partials evaluation (:meth:`KernelBackend.update_partials_batch`),
* single-operation partials evaluation
  (:meth:`KernelBackend.update_partials_single`),
* batched *upper*-partials evaluation — the pre-order pass of the
  all-branch gradient sweep (:meth:`KernelBackend.update_upper_partials`),
* rescaling (:meth:`KernelBackend.rescale`) and the root reduction
  (:meth:`KernelBackend.root_reduce`).

Everything else — buffer bookkeeping, validity tracking, scale-bank
accumulation, statistics, observability — stays in the engine and is
identical across backends. The formal contract (shapes, dtypes, the
engine-view attributes a backend may touch, and the parity classes the
gate enforces) is documented in ``docs/BACKENDS.md``; the parity gate
itself lives in :mod:`repro.beagle.parity`.

Backends are **stateless**: all mutable scratch lives in the
:class:`~repro.beagle.workspace.Workspace` owned by the instance, so one
backend object may serve any number of instances concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..models.eigen import EigenDecomposition
    from .instance import BeagleInstance
    from .operations import Operation
    from .workspace import Workspace

__all__ = ["BackendInfo", "KernelBackend", "PARITY_BIT_IDENTICAL", "PARITY_TOLERANCE"]

#: Parity class of backends whose log-likelihoods must equal the
#: reference backend's bit for bit (same dtype, same inputs).
PARITY_BIT_IDENTICAL = "bit-identical"

#: Parity class of backends allowed a documented, bounded deviation
#: (``BackendInfo.tolerance``) from the reference log-likelihood.
PARITY_TOLERANCE = "tolerance"


@dataclass(frozen=True)
class BackendInfo:
    """Descriptor of one registered kernel backend (a "resource").

    Attributes
    ----------
    name:
        Registry key; what ``--rsrc <name>`` and ``REPRO_BACKEND``
        select.
    description:
        One-line human summary shown by ``python -m
        repro.beagle.resources``.
    kind:
        Hardware class the backend targets (``"cpu"`` today; a real
        device backend would register ``"gpu"``).
    parity:
        :data:`PARITY_BIT_IDENTICAL` or :data:`PARITY_TOLERANCE` — the
        contract class the parity gate holds the backend to.
    tolerance:
        Maximum absolute log-likelihood deviation from the reference
        backend a :data:`PARITY_TOLERANCE` backend may show. Must be
        ``0.0`` for bit-identical backends.
    requires:
        Optional import requirements (e.g. ``("numba",)``); a backend is
        only registered when every requirement is importable.
    """

    name: str
    description: str
    kind: str = "cpu"
    parity: str = PARITY_BIT_IDENTICAL
    tolerance: float = 0.0
    requires: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.parity not in (PARITY_BIT_IDENTICAL, PARITY_TOLERANCE):
            raise ValueError(f"unknown parity class {self.parity!r}")
        if self.tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if self.parity == PARITY_BIT_IDENTICAL and self.tolerance != 0.0:
            raise ValueError("bit-identical backends must declare tolerance 0")


@runtime_checkable
class KernelBackend(Protocol):
    """What a kernel implementation must provide to drive the engine.

    Implementations receive the :class:`BeagleInstance` itself for the
    partials paths and may read/write exactly the *engine-view*
    attributes listed in ``docs/BACKENDS.md`` (partials storage, matrix
    storage, tip data, validity flags, scale bank, workspace) — nothing
    else. All array-shape conventions follow the engine: partials are
    ``(C, P, S)``, transition matrices ``(C, S, S)``.
    """

    @property
    def info(self) -> BackendInfo:
        """Static descriptor: name, kind and parity class."""
        ...

    def create_workspace(
        self,
        dtype: np.dtype,
        category_count: int,
        pattern_count: int,
        state_count: int,
    ) -> "Workspace":
        """Allocate the scratch arena batched execution runs through.

        Returned arenas must be :class:`~repro.beagle.workspace.Workspace`
        instances (or subclasses) so serving's cross-instance arena
        adoption (:meth:`BeagleInstance.adopt_workspace`) keeps working
        across backends.
        """
        ...

    def materialize_matrices(
        self, eigen: "EigenDecomposition", scaled_times: np.ndarray
    ) -> np.ndarray:
        """Transition matrices ``P(t)`` for a flat vector of scaled times.

        Returns ``(len(scaled_times), S, S)`` float64 matrices — the
        engine reshapes to ``(k, C, S, S)`` and installs them. Cached
        (:class:`~repro.beagle.workspace.TransitionMatrixCache`) and
        uncached paths both call this, so a backend's matrices are
        cache-composition invariant by construction.
        """
        ...

    def update_partials_batch(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Execute one validated, independent operation set.

        The engine has already checked set independence and non-
        emptiness. The backend must compute every destination partials
        buffer, apply per-operation rescaling for operations carrying a
        ``destination_scale``, and mark destinations valid — the
        semantics of one BEAGLE multi-operation kernel launch.
        """
        ...

    def update_partials_single(
        self, instance: "BeagleInstance", operation: "Operation"
    ) -> None:
        """Compute one operation's destination partials (serial path).

        Writes the destination buffer only; the engine finishes the
        operation (validity flag, rescaling via :meth:`rescale`).
        """
        ...

    def update_upper_partials(
        self, instance: "BeagleInstance", operations: List["Operation"]
    ) -> None:
        """Execute one validated, independent *upper*-partial set.

        The pre-order twin of :meth:`update_partials_batch`: each
        operation reads a sibling's lower buffer (``child1``) and the
        parent's upper buffer (``child2``, index ``≥ instance.upper_base``)
        and writes the destination into the instance's upper bank. Upper
        operations never rescale — the gradient sweep runs unscaled, like
        the per-edge rerooted derivative oracle it must match bit for
        bit. The engine has already checked set independence, non-
        emptiness, and that the upper bank is enabled.
        """
        ...

    def rescale(self, partials: np.ndarray) -> np.ndarray:
        """Rescale ``(C, P, S)`` partials in place; return per-pattern
        log factors ``(P,)`` in the partials dtype."""
        ...

    def root_reduce(
        self,
        partials: np.ndarray,
        frequencies: np.ndarray,
        category_weights: np.ndarray,
    ) -> np.ndarray:
        """Per-pattern root likelihoods ``Σ_c w_c Σ_z π_z L[c,p,z]``."""
        ...
