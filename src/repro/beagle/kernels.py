"""Vectorised partial-likelihood kernels.

These are the NumPy counterparts of BEAGLE's CUDA kernels. Array layout is
``(categories, patterns, states)`` for partials and
``(categories, states, states)`` for transition matrices, so the paper's
fine-grained ``patterns × states`` grid maps onto contiguous BLAS batches,
and the medium-grained ``× subtrees`` axis (paper §IV-B) is one more
leading batch dimension.

Two execution styles are provided, mirroring the paper's serial vs
multi-operation comparison (§VI-A):

* :func:`update_partials` — one operation per call (one "kernel launch").
* :func:`update_partials_batch` — all operations of an independent set
  evaluated by **stacked** ``matmul`` calls, the analogue of BEAGLE's
  multi-operation kernel. On a CPU the per-call Python/dispatch overhead
  plays the role of kernel-launch overhead, so batching yields a genuine,
  measurable speedup of the same shape as the paper's GPU result.

FLOP accounting (:func:`operation_flops`) follows the paper's effective-
FLOPS throughput metric (§VI-C).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "child_contribution",
    "dense_tip_partials",
    "update_partials",
    "update_partials_batch",
    "root_site_likelihoods",
    "edge_site_likelihoods",
    "rescale_partials",
    "operation_flops",
]


def dense_tip_partials(
    codes: np.ndarray,
    n_states: int,
    n_categories: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Expand compact tip codes to dense ``(C, P, S)`` partials.

    The identity-matrix contribution of :func:`child_contribution`:
    observed states become one-hot rows, the "unknown" code ``n_states``
    becomes all-ones. Used to seed pre-order upper-partial buffers from
    tip sources and to hand tip lowers to the per-branch derivative
    recombination.
    """
    eye = np.eye(n_states, dtype=dtype)
    return child_contribution(
        np.broadcast_to(eye, (n_categories, n_states, n_states)),
        codes=codes,
        dtype=np.dtype(dtype),
    )


def child_contribution(
    matrices: np.ndarray,
    partials: Optional[np.ndarray] = None,
    codes: Optional[np.ndarray] = None,
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """One child's factor of Eq. 1: ``Σ_x P(x|z,t) L(x)``.

    Parameters
    ----------
    matrices:
        ``(C, S, S)`` transition matrices, ``matrices[c, z, x] =
        Pr(x | z, t·r_c)``.
    partials:
        ``(C, P, S)`` child partials (internal node or ambiguous tip).
    codes:
        ``(P,)`` compact tip states; the value ``S`` means "unknown"
        (contribution 1 for every parent state). Exactly one of
        ``partials``/``codes`` must be given.
    dtype:
        Dtype of the code-gather scratch (and hence the result on the
        codes path); defaults to ``matrices.dtype`` so float32 inputs
        yield float32 contributions instead of silently widening.

    Returns
    -------
    ndarray
        ``(C, P, S)`` contribution indexed by parent state ``z``.
    """
    if (partials is None) == (codes is None):
        raise ValueError("provide exactly one of partials or codes")
    if partials is not None:
        # Σ_x L[c,p,x] · P[c,z,x]  ==  L @ Pᵀ  batched over categories.
        return partials @ matrices.transpose(0, 2, 1)
    C, S, _ = matrices.shape
    codes = np.asarray(codes)
    if dtype is None:
        dtype = matrices.dtype
    # Gather columns of P by observed state; pad with a ones column so the
    # unknown code S yields a contribution of 1 for every parent state.
    padded = np.concatenate(
        [matrices, np.ones((C, S, 1), dtype=dtype)], axis=2
    )
    return padded[:, :, codes].transpose(0, 2, 1)


def update_partials(
    matrices1: np.ndarray,
    matrices2: np.ndarray,
    partials1: Optional[np.ndarray] = None,
    codes1: Optional[np.ndarray] = None,
    partials2: Optional[np.ndarray] = None,
    codes2: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute one destination partials array (a single operation).

    Implements Eq. 1 of the paper for every category, pattern and parent
    state: the product of the two child contributions. ``out`` may be a
    preallocated ``(C, P, S)`` buffer to write into (a view into the
    instance's partials storage — no copies, per the hpc guide).
    """
    left = child_contribution(matrices1, partials1, codes1)
    right = child_contribution(matrices2, partials2, codes2)
    if out is None:
        return left * right
    np.multiply(left, right, out=out)
    return out


def update_partials_batch(
    matrices1: np.ndarray,
    matrices2: np.ndarray,
    children1: Sequence[Tuple[Optional[np.ndarray], Optional[np.ndarray]]],
    children2: Sequence[Tuple[Optional[np.ndarray], Optional[np.ndarray]]],
    outs: np.ndarray,
) -> None:
    """Multi-operation kernel: k independent operations in stacked calls.

    Parameters
    ----------
    matrices1, matrices2:
        ``(k, C, S, S)`` stacked transition matrices for the first and
        second child of each operation.
    children1, children2:
        Per operation a ``(partials, codes)`` pair (exactly one non-None),
        matching :func:`child_contribution`.
    outs:
        ``(k, C, P, S)`` stacked destination array; written in place by
        a single vectorised multiply (slice views of the instance's
        partials storage stack into one such array without copying when
        the destinations are contiguous).

    Notes
    -----
    Children given as *partials* across the whole batch are evaluated with
    a single ``(k, C, P, S) @ (k, C, S, S)`` batched ``matmul``; children
    given as tip *codes* use one fused gather; the final product lands in
    ``outs`` through one ``np.multiply``. This is the library's analogue
    of BEAGLE's pointer-arithmetic multi-operation kernel: the number of
    NumPy dispatches is O(1) in the operation count.
    """
    if not isinstance(outs, np.ndarray) or outs.ndim != 4:
        raise TypeError(
            "outs must be a stacked (k, C, P, S) ndarray; stack per-"
            "operation destination views with np.stack before calling"
        )
    k = outs.shape[0]
    if not (len(children1) == len(children2) == k):
        raise ValueError("children and outs must have equal lengths")
    if matrices1.shape[0] != k or matrices2.shape[0] != k:
        raise ValueError("stacked matrices must have one entry per operation")

    dtype = outs.dtype
    left = _batched_contribution(matrices1, children1, dtype=dtype)
    right = _batched_contribution(matrices2, children2, dtype=dtype)
    np.multiply(left, right, out=outs)


def _batched_contribution(
    matrices: np.ndarray,
    children: Sequence[Tuple[Optional[np.ndarray], Optional[np.ndarray]]],
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """Stacked child contributions ``(k, C, P, S)``.

    ``dtype`` fixes the result dtype (defaulting to ``matrices.dtype``)
    so float32 batches are not silently widened to float64.
    """
    k, C, S, _ = matrices.shape
    if dtype is None:
        dtype = matrices.dtype
    partial_idx = [i for i, (p, c) in enumerate(children) if p is not None]
    code_idx = [i for i, (p, c) in enumerate(children) if p is None]
    if code_idx and not partial_idx:
        P = len(children[code_idx[0]][1])
    elif partial_idx:
        P = children[partial_idx[0]][0].shape[1]
    else:
        raise ValueError("empty operation batch")
    result = np.empty((k, C, P, S), dtype=dtype)

    if partial_idx:
        stacked = np.stack([children[i][0] for i in partial_idx])
        mats = matrices[partial_idx].transpose(0, 1, 3, 2)
        result[partial_idx] = stacked @ mats
    if code_idx:
        codes = np.stack([children[i][1] for i in code_idx])  # (m, P)
        mats = matrices[code_idx]  # (m, C, S, S)
        padded = np.concatenate(
            [mats, np.ones((len(code_idx), C, S, 1), dtype=dtype)], axis=3
        )
        # Gather per batch entry: padded[i, :, :, codes[i]] -> (m, C, S, P)
        gathered = np.take_along_axis(
            padded, codes[:, None, None, :], axis=3
        )
        result[code_idx] = gathered.transpose(0, 1, 3, 2)
    return result


def rescale_partials(partials: np.ndarray) -> np.ndarray:
    """Rescale ``(C, P, S)`` partials in place; return per-pattern log factors.

    The scale factor for a pattern is the maximum of its partials across
    categories and states (BEAGLE's default "dynamic max" scaler).
    Patterns whose partials are all zero keep factor 1 so a hard underflow
    stays visible as a −inf site likelihood rather than NaN.
    """
    factors = partials.max(axis=(0, 2))
    safe = np.where(factors > 0.0, factors, 1.0)
    partials /= safe[None, :, None]
    return np.log(safe)


def root_site_likelihoods(
    partials: np.ndarray,
    frequencies: np.ndarray,
    category_weights: np.ndarray,
) -> np.ndarray:
    """Per-pattern likelihood at the root: ``Σ_c w_c Σ_z π_z L[c,p,z]``."""
    by_category = partials @ frequencies  # (C, P)
    return category_weights @ by_category  # (P,)


def edge_site_likelihoods(
    parent_partials: np.ndarray,
    child_contribution_: np.ndarray,
    frequencies: np.ndarray,
    category_weights: np.ndarray,
) -> np.ndarray:
    """Per-pattern likelihood across a root edge.

    ``parent_partials`` are the partials of the node above the edge viewed
    as a half-tree root; ``child_contribution_`` is
    :func:`child_contribution` of the node below across the edge's
    transition matrices.
    """
    joint = parent_partials * child_contribution_
    by_category = joint @ frequencies
    return category_weights @ by_category


def operation_flops(n_patterns: int, n_states: int, n_categories: int = 1) -> int:
    """Effective floating-point operations of one partial-likelihood op.

    Per category, pattern and parent state: two length-``S`` inner
    products (``2S`` multiply–adds each) plus the final multiply — the
    count underlying the paper's GFLOPS throughput metric.
    """
    per_state = 4 * n_states + 1
    return n_categories * n_patterns * n_states * per_state
