"""Preallocated execution arenas for the batched partials kernel.

Two pieces of engine state that make the hot path *incremental-friendly*:

* :class:`Workspace` — a grow-on-demand arena of scratch arrays sized to
  the widest operation set seen so far. Once warm, the engine's
  :meth:`~repro.beagle.instance.BeagleInstance.update_partials_set` runs
  with **zero per-set array allocations**: gathers land in preallocated
  buffers (``np.take(..., out=)``), matmuls write through ``out=``, and
  index bookkeeping reuses fixed ``int64`` arrays. On a GPU this arena
  would be device memory allocated once at instance creation (exactly
  BEAGLE's buffer model); on the CPU it removes the allocator from the
  per-iteration profile, which is what makes thousands of tiny dirty-path
  launches (MCMC proposals) cheap.

* :class:`TransitionMatrixCache` — an LRU cache of computed transition
  matrices keyed by (eigen decomposition, rates version, quantized branch
  length). Inference loops re-derive the same ``P(t)`` over and over:
  a full-traversal proposal recomputes ``n − 1`` matrices of which
  ``n − 2`` are unchanged, and trees routinely carry duplicate branch
  lengths. Hits return the exact array computed on the original miss, so
  caching never perturbs likelihoods (bit-identical by construction).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = ["Workspace", "TransitionMatrixCache"]


class Workspace:
    """Grow-on-demand scratch arena for batched operation-set execution.

    Parameters
    ----------
    dtype:
        Floating-point dtype of the partials/matrices the arena serves.
    category_count, pattern_count, state_count:
        The instance's fixed data dimensions ``C``, ``P``, ``S``.

    Notes
    -----
    :meth:`ensure` grows every buffer to hold at least ``k`` operations
    (``2k`` child rows) and bumps :attr:`allocations`; repeated calls at
    or below the high-water mark are free. Tests assert steady state by
    checking that :attr:`allocations` stops moving across evaluations.
    """

    def __init__(
        self,
        dtype: np.dtype,
        category_count: int,
        pattern_count: int,
        state_count: int,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.category_count = category_count
        self.pattern_count = pattern_count
        self.state_count = state_count
        #: Operations the arena can currently hold without growing.
        self.capacity = 0
        #: Times the arena (re)allocated its buffers — stable in steady state.
        self.allocations = 0
        # Per-pattern scaling scratch is size-independent: allocate once.
        P = pattern_count
        self._factors = np.empty(P, dtype=self.dtype)
        self._safe = np.empty(P, dtype=self.dtype)
        # Log factors stay in the instance dtype so the batched rescale
        # computes exactly what the serial kernel computes; the scale
        # bank widens to float64 on write, as it does for the serial path.
        self._logs = np.empty(P, dtype=self.dtype)
        self._mask = np.empty(P, dtype=bool)

    def compatible_with(
        self,
        dtype: np.dtype,
        category_count: int,
        pattern_count: int,
        state_count: int,
    ) -> bool:
        """May an instance with these dimensions execute through this
        arena? Exact dimension equality is required — the buffers' shapes
        are baked in at allocation, and a mismatched ``out=`` target
        would either fail or silently truncate."""
        return (
            np.dtype(dtype) == self.dtype
            and category_count == self.category_count
            and pattern_count == self.pattern_count
            and state_count == self.state_count
        )

    def ensure(self, k: int) -> None:
        """Grow every buffer to hold at least ``k`` operations."""
        if k <= self.capacity:
            return
        C, P, S = self.category_count, self.pattern_count, self.state_count
        cap = max(k, 2 * self.capacity)
        rows = 2 * cap  # one child row per (operation, side)
        dt = self.dtype
        # Child contributions for the whole set: firsts then seconds.
        self.contributions = np.empty((rows, C, P, S), dtype=dt)
        # Group-local compute target (scattered into `contributions`).
        self.scratch = np.empty((rows, C, P, S), dtype=dt)
        # Internal-child partials gathered contiguously for the matmul.
        self.gathered = np.empty((rows, C, P, S), dtype=dt)
        # Transition matrices gathered per group, plus their transposes.
        self.mats = np.empty((rows, C, S, S), dtype=dt)
        self.mats_T = np.empty((rows, C, S, S), dtype=dt)
        # Transposed matrices padded with a ones row at state index S, so
        # the tip-code gather resolves the "unknown" code to all-ones.
        self.padded_T = np.empty((rows, C, S + 1, S), dtype=dt)
        # Tip-code gather bookkeeping.
        self.codes = np.empty((rows, P), dtype=np.int64)
        self.rowidx = np.empty((rows, C, P), dtype=np.int64)
        # row_base[i, c] = (i*C + c) * (S+1): the flat row offset of
        # (operation-row i, category c) in the padded_T row matrix.
        base = (np.arange(rows)[:, None] * C + np.arange(C)[None, :]) * (S + 1)
        self.row_base = np.ascontiguousarray(base, dtype=np.int64)
        # Child classification (filled by the engine's submit loop).
        self.child_buffers = np.empty(rows, dtype=np.int64)
        self.internal_sel = np.empty(rows, dtype=np.int64)
        self.internal_slots = np.empty(rows, dtype=np.int64)
        self.internal_mats = np.empty(rows, dtype=np.int64)
        self.code_sel = np.empty(rows, dtype=np.int64)
        self.code_tips = np.empty(rows, dtype=np.int64)
        self.code_mats = np.empty(rows, dtype=np.int64)
        self.explicit_sel = np.empty(rows, dtype=np.int64)
        self.explicit_mats = np.empty(rows, dtype=np.int64)
        # Upper-bank bookkeeping (pre-order pass): the second child of an
        # upper operation is always a parent's upper buffer.
        self.upper_slots = np.empty(rows, dtype=np.int64)
        self.upper_mats = np.empty(rows, dtype=np.int64)
        # Destinations.
        self.dest_slots = np.empty(cap, dtype=np.int64)
        self.capacity = cap
        self.allocations += 1

    # -- per-pattern scaling scratch (size-independent views) -----------
    @property
    def scale_factors(self) -> np.ndarray:
        """``(P,)`` max-reduction target for one operation's rescale."""
        return self._factors

    @property
    def scale_safe(self) -> np.ndarray:
        """``(P,)`` zero-protected factors (zeros replaced by 1)."""
        return self._safe

    @property
    def scale_logs(self) -> np.ndarray:
        """``(P,)`` log factors (instance dtype) handed to the scale bank."""
        return self._logs

    @property
    def scale_mask(self) -> np.ndarray:
        """``(P,)`` bool scratch marking non-positive factors."""
        return self._mask

    def nbytes(self) -> int:
        """Bytes currently held by the arena's buffers."""
        total = (
            self._factors.nbytes
            + self._safe.nbytes
            + self._logs.nbytes
            + self._mask.nbytes
        )
        if self.capacity:
            for name in (
                "contributions",
                "scratch",
                "gathered",
                "mats",
                "mats_T",
                "padded_T",
                "codes",
                "rowidx",
                "row_base",
                "child_buffers",
                "internal_sel",
                "internal_slots",
                "internal_mats",
                "code_sel",
                "code_tips",
                "code_mats",
                "explicit_sel",
                "explicit_mats",
                "upper_slots",
                "upper_mats",
                "dest_slots",
            ):
                total += getattr(self, name).nbytes
        return total

    def buffer_token(self) -> Tuple[int, ...]:
        """Identity token of the big buffers — unchanged means reused."""
        if not self.capacity:
            return ()
        return (
            id(self.contributions),
            id(self.scratch),
            id(self.gathered),
            id(self.mats),
            id(self.padded_T),
        )


class TransitionMatrixCache:
    """LRU cache of computed transition-matrix stacks ``(C, S, S)``.

    Keys combine the eigen decomposition's identity, the rates version
    (the category-rate vector's bytes), and the — optionally quantized —
    branch length. Values are the float64 matrices exactly as the batched
    eigen-multiply produced them, so a hit installs bit-identical data.

    Parameters
    ----------
    capacity:
        Maximum cached entries; the least recently used entry is evicted
        beyond it.
    quantum:
        Branch-length quantization step. ``0.0`` (default) keys on the
        exact float — hits only for *exactly* repeated lengths, and the
        likelihood is untouched. A positive quantum snaps lengths to the
        grid **and computes the matrix at the snapped length**, trading a
        bounded branch-length perturbation for a higher hit rate; the
        cache stays self-consistent because key and computed length agree.

    Notes
    -----
    Entries pin the eigen decomposition they were computed from, so an
    ``id()``-based key can never alias a garbage-collected object. The
    cache is not thread-safe; share it across evaluators of one inference
    loop (see ``TreeLikelihood(matrix_cache=...)``), not across threads.
    """

    def __init__(self, capacity: int = 4096, quantum: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if quantum < 0.0:
            raise ValueError("quantum must be non-negative")
        self.capacity = capacity
        self.quantum = quantum
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Tuple[np.ndarray, Any]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def effective_length(self, t: float) -> float:
        """The branch length a lookup of ``t`` is served at.

        Identity when ``quantum`` is 0; otherwise ``t`` snapped to the
        nearest grid point (never negative).
        """
        if self.quantum == 0.0:
            return float(t)
        return max(round(float(t) / self.quantum), 0) * self.quantum

    def key_for(self, eigen: Any, rates_key: Hashable, t: float) -> Hashable:
        """Cache key of one (eigen, rates version, branch length) triple."""
        return (id(eigen), rates_key, self.effective_length(t))

    def lookup(self, key: Hashable) -> Optional[np.ndarray]:
        """The cached matrix for ``key`` (refreshes LRU order), or None.

        Does **not** touch the hit/miss counters — callers batch their
        own accounting so duplicate keys inside one engine call can be
        counted as hits.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def store(self, key: Hashable, matrix: np.ndarray, pin: Any = None) -> None:
        """Insert a computed matrix, evicting the LRU entry when full."""
        self._entries[key] = (matrix, pin)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters snapshot: hits, misses, evictions, size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TransitionMatrixCache size={len(self)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
