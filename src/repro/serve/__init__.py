"""Likelihood-as-a-service: an overload-safe serving front end.

The :mod:`repro.exec` pool answers *"how do N workers survive faults?"*;
this package answers the next question a deployment asks: *"how does a
shared service stay fair, bounded and honest when thousands of tenants
hit it at once?"* Five cooperating policy layers, each independently
testable:

* :mod:`~repro.serve.admission` — deadline-aware admission with typed
  reject reasons (never queue work that can only be shed later).
* :mod:`~repro.serve.fairness` — deficit-round-robin scheduling with
  per-tenant in-flight caps and a provable starvation bound.
* :mod:`~repro.serve.coalesce` — cross-request operation coalescing:
  compatible requests share kernel launches and a Workspace arena while
  every served value stays bit-identical to its serial evaluation.
* :mod:`~repro.serve.brownout` — staged graceful degradation (widen
  coalescing → clamp quotas → shed deadline-ascending), by policy.
* :mod:`~repro.serve.ledger` — closed-form accounting: every request in
  exactly one bucket, globally and per tenant; no silent drops.

:class:`~repro.serve.server.LikelihoodServer` wires them together;
:mod:`~repro.serve.traffic` generates seeded multi-tenant arrival traces
(burst storms included) for replayable overload chaos.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    ServerSaturatedError,
)
from .brownout import BrownoutController, BrownoutPolicy
from .coalesce import (
    BatchAssembler,
    CoalescedBatch,
    CoalescePolicy,
    CompatKey,
    pattern_bucket,
)
from .fairness import DeficitRoundRobin, FairnessConfig
from .ledger import (
    REJECT_BROWNOUT,
    REJECT_INFEASIBLE,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
    SHED_BROWNOUT,
    SHED_EXPIRED,
    ServeLedger,
    TenantLedger,
)
from .request import LikelihoodRequest, RequestDims, RequestOutcome
from .server import LikelihoodServer
from .traffic import Arrival, StepClock, burst_storm, replay, steady_trace

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ServerSaturatedError",
    "BrownoutController",
    "BrownoutPolicy",
    "BatchAssembler",
    "CoalescedBatch",
    "CoalescePolicy",
    "CompatKey",
    "pattern_bucket",
    "DeficitRoundRobin",
    "FairnessConfig",
    "ServeLedger",
    "TenantLedger",
    "SHED_EXPIRED",
    "SHED_BROWNOUT",
    "REJECT_QUEUE_FULL",
    "REJECT_TENANT_QUOTA",
    "REJECT_INFEASIBLE",
    "REJECT_BROWNOUT",
    "LikelihoodRequest",
    "RequestDims",
    "RequestOutcome",
    "LikelihoodServer",
    "Arrival",
    "StepClock",
    "steady_trace",
    "burst_storm",
    "replay",
]
