"""Seeded arrival traces: steady multi-tenant load and burst storms.

Chaos soaks need arrival patterns that are hostile *and* replayable.
Everything here is a pure function of its seed: the same
``burst_storm(seed=...)`` call always yields the same tenants, arrival
times, deadlines and burst placement, so a failing soak replays exactly
and two servers fed the same trace can be compared schedule-for-
schedule.

A trace is a list of :class:`Arrival` events sorted by time. The
:func:`replay` helper drives a server through a trace against an
injectable clock (a :class:`StepClock` in tests, the wall clock in
benches), submitting each arrival and stepping the server between
arrival groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Arrival", "StepClock", "steady_trace", "burst_storm", "replay"]


@dataclass(frozen=True)
class Arrival:
    """One request arrival in a trace."""

    at: float
    tenant: str
    budget_s: Optional[float] = None
    cost: int = 1
    label: str = ""


class StepClock:
    """A manual clock: time moves only when the test advances it."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0.0:
            raise ValueError("time only moves forward")
        self.now += seconds
        return self.now


def steady_trace(
    seed: int,
    *,
    n_tenants: int = 4,
    n_requests: int = 64,
    horizon_s: float = 1.0,
    budget_s: Optional[float] = None,
    weights: Optional[Sequence[float]] = None,
) -> List[Arrival]:
    """Uniform-ish multi-tenant arrivals over a horizon.

    Tenants are named ``t0 … t{n-1}``; each request picks its tenant
    with probability proportional to ``weights`` (uniform by default)
    and arrives at a uniform random time in ``[0, horizon_s)``.
    """
    if n_tenants < 1:
        raise ValueError("need at least one tenant")
    rng = np.random.default_rng((seed, 0x57EAD))
    p = None
    if weights is not None:
        w = np.asarray(list(weights), dtype=float)
        if len(w) != n_tenants or (w <= 0).any():
            raise ValueError("weights must be positive, one per tenant")
        p = w / w.sum()
    times = np.sort(rng.uniform(0.0, horizon_s, size=n_requests))
    tenants = rng.choice(n_tenants, size=n_requests, p=p)
    return [
        Arrival(
            at=float(times[i]),
            tenant=f"t{int(tenants[i])}",
            budget_s=budget_s,
            label=f"req-{i}",
        )
        for i in range(n_requests)
    ]


def burst_storm(
    seed: int,
    *,
    n_tenants: int = 8,
    n_requests: int = 256,
    horizon_s: float = 1.0,
    n_bursts: int = 3,
    burst_fraction: float = 0.6,
    burst_width_s: float = 0.02,
    budget_s: Optional[float] = None,
    hot_tenants: int = 1,
) -> List[Arrival]:
    """A hostile trace: background load plus tenant burst storms.

    ``burst_fraction`` of the requests arrive inside ``n_bursts`` narrow
    windows, all from ``hot_tenants`` randomly chosen hot tenants — the
    arrival pattern that starves cold tenants and saturates admission
    unless fairness and brownout hold. The rest arrive as steady
    background across all tenants.
    """
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError("burst_fraction must be within [0, 1]")
    if hot_tenants < 1 or hot_tenants > n_tenants:
        raise ValueError("hot_tenants must be within [1, n_tenants]")
    rng = np.random.default_rng((seed, 0xB125))
    n_burst = int(n_requests * burst_fraction)
    n_background = n_requests - n_burst
    arrivals: List[Arrival] = []
    # Steady background across every tenant.
    bg_times = np.sort(rng.uniform(0.0, horizon_s, size=n_background))
    bg_tenants = rng.choice(n_tenants, size=n_background)
    for i in range(n_background):
        arrivals.append(
            Arrival(
                at=float(bg_times[i]),
                tenant=f"t{int(bg_tenants[i])}",
                budget_s=budget_s,
                label=f"bg-{i}",
            )
        )
    # Burst windows: hot tenants fire n_burst requests inside narrow slots.
    hot = rng.choice(n_tenants, size=hot_tenants, replace=False)
    burst_starts = rng.uniform(0.0, max(horizon_s - burst_width_s, 0.0),
                               size=n_bursts)
    for i in range(n_burst):
        window = int(rng.integers(0, n_bursts))
        at = float(
            burst_starts[window] + rng.uniform(0.0, burst_width_s)
        )
        tenant = int(hot[int(rng.integers(0, hot_tenants))])
        arrivals.append(
            Arrival(
                at=at,
                tenant=f"t{tenant}",
                budget_s=budget_s,
                label=f"burst-{i}",
            )
        )
    arrivals.sort(key=lambda a: (a.at, a.label))
    return arrivals


def replay(
    server,
    arrivals: Sequence[Arrival],
    make_case_for: Callable[[Arrival], Callable[[], Tuple[object, object]]],
    *,
    clock: Optional[StepClock] = None,
    dims=None,
    step_every: int = 16,
) -> Tuple[list, list]:
    """Feed a trace into a server, stepping it as time advances.

    Parameters
    ----------
    server:
        A :class:`~repro.serve.server.LikelihoodServer`.
    arrivals:
        The trace (sorted by time).
    make_case_for:
        Builds each arrival's ``make_case`` factory.
    clock:
        The server's injected :class:`StepClock`, advanced to each
        arrival's timestamp; omit to submit without advancing time.
    dims:
        Optional shared :class:`~repro.serve.request.RequestDims` for
        every request (homogeneous-traffic traces).
    step_every:
        Run one serving cycle after this many submissions, modelling a
        server that drains while traffic keeps arriving.

    Returns
    -------
    (outcomes, rejections):
        Terminal outcomes collected across all steps plus the final
        drain, and the :class:`~repro.serve.admission.ServerSaturatedError`
        for each refused submission.
    """
    outcomes: list = []
    rejections: list = []
    since_step = 0
    for arrival in arrivals:
        if clock is not None and arrival.at > clock.now:
            clock.now = arrival.at
        try:
            server.submit(
                arrival.tenant,
                make_case_for(arrival),
                label=arrival.label or None,
                deadline_s=arrival.budget_s,
                cost=arrival.cost,
                dims=dims,
            )
        except Exception as exc:  # ServerSaturatedError and kin
            rejections.append(exc)
            continue
        since_step += 1
        if since_step >= step_every:
            outcomes.extend(server.step())
            since_step = 0
    outcomes.extend(server.drain())
    return outcomes, rejections
