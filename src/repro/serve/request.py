"""Request and outcome types for the likelihood server.

A :class:`LikelihoodRequest` is one tenant's ask: *evaluate this
(instance, plan) case and return the log-likelihood, preferably before
my deadline*. The server owns the request from admission to a terminal
:class:`RequestOutcome`; the ``make_case`` factory is the same shape the
pool's :meth:`~repro.exec.pool.JobContext.evaluate` and the sentinel
already use, so any :class:`~repro.inference.likelihood.TreeLikelihood`
plugs in directly via its ``make_case`` method.

:class:`RequestDims` carries the shape facts coalescing needs — state
count, pattern count, rate categories, precision — without building the
instance (instances are built lazily, on the worker that serves the
request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from ..exec.health import Deadline

__all__ = ["RequestDims", "LikelihoodRequest", "RequestOutcome"]

MakeCase = Callable[[], Tuple[object, object]]

#: Terminal statuses (mirrored in :mod:`repro.serve.ledger`).
SERVED = "served"
SHED = "shed"
FAILED = "failed"


@dataclass(frozen=True)
class RequestDims:
    """Shape of a request's likelihood case, for compatibility grouping.

    Parameters
    ----------
    state_count, pattern_count, category_count:
        The engine dimensions ``S``, ``P``, ``C``.
    precision:
        ``"double"`` or ``"single"`` — must match for arena sharing.
    """

    state_count: int
    pattern_count: int
    category_count: int = 1
    precision: str = "double"

    @classmethod
    def of_evaluator(cls, evaluator: Any) -> "RequestDims":
        """Dims of a :class:`~repro.inference.likelihood.TreeLikelihood`."""
        rates = getattr(evaluator, "rates", None)
        return cls(
            state_count=evaluator.model.n_states,
            pattern_count=evaluator.patterns.n_patterns,
            category_count=len(rates.rates) if rates is not None else 1,
            precision=evaluator.precision,
        )


@dataclass
class LikelihoodRequest:
    """One admitted unit of serving work (server-internal bookkeeping)."""

    index: int
    tenant: str
    make_case: MakeCase
    label: str
    dims: Optional[RequestDims] = None
    cost: int = 1
    budget_s: Optional[float] = None
    deadline: Optional[Deadline] = None
    submitted_at: float = 0.0
    attempts: int = 0
    retried: bool = False
    #: Plan set sizes, when known — lets the assembler and the device
    #: model price the coalesced launch schedule without re-planning.
    set_sizes: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def expired(self) -> bool:
        """Has the request's deadline already passed?"""
        return self.deadline is not None and self.deadline.expired

    def deadline_key(self) -> float:
        """Sort key for deadline-ascending policies (soonest first)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline.remaining


@dataclass(frozen=True)
class RequestOutcome:
    """Terminal state of one request.

    ``status`` is ``"served"`` (``value`` holds the log-likelihood),
    ``"shed"`` (dropped by explicit policy before completing — ``cause``
    says which policy) or ``"failed"`` (``error`` holds the typed
    failure). ``late`` marks served values that arrived after the
    request's deadline — delivered anyway, and counted. ``verified`` is
    set only when the server's bit-identity gate ran for this request.
    """

    index: int
    tenant: str
    label: str
    status: str
    value: Any = None
    error: Optional[BaseException] = None
    cause: Optional[str] = None
    attempts: int = 0
    coalesced_width: int = 1
    wait_s: float = 0.0
    late: bool = False
    verified: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """Was the request served?"""
        return self.status == SERVED
