"""The likelihood server: admission → fairness → coalescing → pool.

:class:`LikelihoodServer` is the overload-safe front end in front of a
:class:`~repro.exec.pool.LikelihoodPool`. One serving cycle
(:meth:`LikelihoodServer.step`) runs the pipeline::

    shed expired ─▶ brownout observe ─▶ DRR pick ─▶ coalesce ─▶ pool

1. Queued requests whose deadline already passed are shed (typed cause
   ``expired``) before any scheduling work is spent on them.
2. The brownout controller converts queue pressure into a level; level 3
   sheds the deadline-soonest backlog overflow (cause ``brownout``),
   level ≥ 1 widens coalescing, level ≥ 2 clamps admission quotas.
3. Deficit round robin picks this cycle's dispatch candidates fairly
   across tenants, honouring per-tenant in-flight caps.
4. The batch assembler coalesces compatible picks into shared-launch
   batches; each batch is one pool job whose members run sequentially
   through the worker's full resilient stack (bit-identical to serial by
   construction — optionally *checked* per request with ``verify=True``,
   which recomputes every served value on a clean serial engine and
   compares exactly).
5. Batches dispatch to the pool with the members' largest remaining
   budget as the job deadline; a failed batch is retried member-by-
   member, uncoalesced, once (seeded jitter orders the retry wave).

Every request ends in exactly one :class:`~repro.serve.request.RequestOutcome`
and every transition lands in the :class:`~repro.serve.ledger.ServeLedger`,
whose identities close at every step boundary — the "no silent drops"
contract is checkable, not aspirational. All scheduling decisions are
appended to :attr:`LikelihoodServer.schedule_log`; with the pool's
inline executor and an injected clock the whole serve schedule is a pure
function of ``(arrivals, jitter_seed)``, which the determinism
regression test pins down.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.planner import execute_plan
from ..exec.errors import PoolSaturatedError
from ..exec.pool import JobOutcome, LikelihoodPool
from ..exec.health import Deadline
from ..exec.resilient import seeded_jitter
from ..obs import get_recorder
from .admission import AdmissionConfig, AdmissionController, ServerSaturatedError
from .brownout import BrownoutController, BrownoutPolicy
from .coalesce import BatchAssembler, CoalescedBatch, CoalescePolicy
from .fairness import DeficitRoundRobin, FairnessConfig
from .ledger import (
    SHED_BROWNOUT,
    SHED_EXPIRED,
    ServeLedger,
)
from .request import (
    FAILED,
    SERVED,
    SHED,
    LikelihoodRequest,
    MakeCase,
    RequestDims,
    RequestOutcome,
)

__all__ = ["LikelihoodServer"]

Clock = Callable[[], float]


class LikelihoodServer:
    """Overload-safe, fair, coalescing front end over a likelihood pool.

    Parameters
    ----------
    pool:
        The worker pool evaluations dispatch to. The server drives it
        synchronously (submit batches, drain, account), so the pool's
        executor choice — threaded or deterministic inline — decides the
        server's execution style too.
    admission:
        Admission bounds and feasibility knobs
        (:class:`~repro.serve.admission.AdmissionConfig`).
    fairness:
        Deficit-round-robin knobs
        (:class:`~repro.serve.fairness.FairnessConfig`).
    coalesce:
        Batch assembly policy
        (:class:`~repro.serve.coalesce.CoalescePolicy`).
    brownout:
        Staged-degradation policy
        (:class:`~repro.serve.brownout.BrownoutPolicy`).
    verify:
        Re-compute every served value on a clean serial engine and
        compare bit-exactly (the coalescing equivalence gate; chaos
        soaks run with it on).
    jitter_seed:
        Seed of the shared jitter source
        (:func:`~repro.exec.resilient.seeded_jitter`) used for shed
        tie-breaking and retry-wave ordering. Same seed ⇒ same
        schedule, given the same arrivals and an inline pool.
    max_dispatch:
        Dispatch candidates per cycle (default ``4 × workers``).
    clock:
        Injectable time source shared with deadlines.
    """

    def __init__(
        self,
        pool: LikelihoodPool,
        *,
        admission: Optional[AdmissionConfig] = None,
        fairness: Optional[FairnessConfig] = None,
        coalesce: Optional[CoalescePolicy] = None,
        brownout: Optional[BrownoutPolicy] = None,
        verify: bool = False,
        jitter_seed: int = 0,
        max_dispatch: Optional[int] = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.pool = pool
        self.admission = AdmissionController(admission)
        self.scheduler = DeficitRoundRobin(fairness)
        self.assembler = BatchAssembler(coalesce)
        self.brownout = BrownoutController(brownout or BrownoutPolicy())
        self.verify = verify
        self.jitter_seed = jitter_seed
        self.max_dispatch = max_dispatch or 4 * len(pool.workers)
        self._clock = clock
        self.ledger = ServeLedger()
        #: Ordered scheduling decisions: ``(event, index, tenant, detail)``
        #: tuples — ``admit``/``reject``/``dispatch``/``serve``/``shed``/
        #: ``retry``/``fail``. Deterministic given arrivals + seed with
        #: an inline pool; the determinism regression compares two
        #: same-seed servers entry for entry.
        self.schedule_log: List[Tuple[str, int, str, str]] = []
        self._in_flight: Dict[str, int] = {}
        self._next_index = 0

    # -- submission ----------------------------------------------------
    def set_tenant_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's fair-share weight (default 1.0)."""
        self.scheduler.set_weight(tenant, weight)

    @property
    def pending(self) -> int:
        """Requests queued and not yet dispatched."""
        return self.scheduler.pending

    def submit(
        self,
        tenant: str,
        make_case: MakeCase,
        *,
        label: Optional[str] = None,
        deadline_s: Optional[float] = None,
        cost: int = 1,
        dims: Optional[RequestDims] = None,
        set_sizes: Sequence[int] = (),
    ) -> int:
        """Admit one request or refuse it with a typed reason.

        Returns the request index on admission; raises
        :class:`~repro.serve.admission.ServerSaturatedError` (a
        :class:`~repro.exec.errors.PoolSaturatedError`) on rejection.
        The request's deadline starts *now* — queue wait counts.
        """
        self.ledger.record_offered(tenant)
        decision = self.admission.decide(
            tenant=tenant,
            queue_depth=self.scheduler.pending,
            tenant_depth=self.scheduler.tenant_depth(tenant),
            workers=max(1, len(self.pool.supervisor.alive())),
            budget_s=deadline_s,
            quota_scale=self.brownout.quota_scale,
        )
        if not decision.admit:
            assert decision.reason is not None
            self.ledger.record_rejected(tenant, decision.reason)
            self.schedule_log.append(
                ("reject", -1, tenant, decision.reason)
            )
            get_recorder().count("repro_serve_rejected_total")
            raise ServerSaturatedError(
                f"request from {tenant} refused: {decision.detail}",
                reason=decision.reason,
                tenant=tenant,
                capacity=self.admission.config.max_queued,
                pending=self.scheduler.pending,
            )
        index = self._next_index
        self._next_index += 1
        request = LikelihoodRequest(
            index=index,
            tenant=tenant,
            make_case=make_case,
            label=label or f"req-{index}",
            dims=dims,
            cost=cost,
            budget_s=deadline_s,
            deadline=(
                Deadline(deadline_s, clock=self._clock)
                if deadline_s is not None
                else None
            ),
            submitted_at=self._clock(),
            set_sizes=tuple(set_sizes),
        )
        self.scheduler.enqueue(request)
        self.ledger.record_admitted(tenant)
        self.schedule_log.append(("admit", index, tenant, request.label))
        return index

    # -- serving cycle -------------------------------------------------
    def step(self) -> List[RequestOutcome]:
        """One serving cycle; returns the requests that went terminal."""
        outcomes: List[RequestOutcome] = []
        self._shed_expired(outcomes)
        level = self.brownout.observe(
            self.scheduler.pending, self.admission.config.max_queued
        )
        if level >= 3:
            self._shed_brownout(outcomes)
        picks = self.scheduler.pick(self.max_dispatch, in_flight=self._in_flight)
        if picks:
            batches = self.assembler.assemble(
                picks, width_scale=self.brownout.width_scale
            )
            self._dispatch(batches, outcomes, fresh=True)
        return outcomes

    def drain(self) -> List[RequestOutcome]:
        """Run serving cycles until the queue is empty."""
        outcomes: List[RequestOutcome] = []
        while self.scheduler.pending > 0:
            before = self.scheduler.pending
            cycle = self.step()
            outcomes.extend(cycle)
            if not cycle and self.scheduler.pending >= before:
                # Every queued tenant is capped with nothing in flight:
                # impossible by construction, but never spin silently.
                raise RuntimeError(
                    "serving made no progress with "
                    f"{self.scheduler.pending} requests queued"
                )
        return outcomes

    # -- shedding ------------------------------------------------------
    def _shed_expired(self, outcomes: List[RequestOutcome]) -> None:
        for request in self.scheduler.remove_if(lambda r: r.expired):
            self._finish_shed(request, SHED_EXPIRED, outcomes)

    def _shed_brownout(self, outcomes: List[RequestOutcome]) -> None:
        n = self.brownout.shed_count(
            self.scheduler.pending, self.admission.config.max_queued
        )
        if n <= 0:
            return
        # Deadline-ascending: victims are the least likely to be served
        # in time. Ties break on seeded jitter, not queue position, so
        # no tenant is systematically first against the wall.
        victims = sorted(
            self.scheduler.queued_requests(),
            key=lambda r: (
                r.deadline_key(),
                seeded_jitter(self.jitter_seed, r.index, r.attempts),
            ),
        )[:n]
        victim_ids = {id(r) for r in victims}
        self.scheduler.remove_if(lambda r: id(r) in victim_ids)
        for request in victims:
            self._finish_shed(request, SHED_BROWNOUT, outcomes)

    def _finish_shed(
        self,
        request: LikelihoodRequest,
        cause: str,
        outcomes: List[RequestOutcome],
        *,
        queued: bool = True,
    ) -> None:
        if not queued:
            self._in_flight[request.tenant] = (
                self._in_flight.get(request.tenant, 1) - 1
            )
        self.ledger.record_shed(request.tenant, cause, queued=queued)
        get_recorder().count("repro_serve_shed_total")
        self.schedule_log.append(("shed", request.index, request.tenant, cause))
        outcomes.append(
            RequestOutcome(
                index=request.index,
                tenant=request.tenant,
                label=request.label,
                status=SHED,
                cause=cause,
                attempts=request.attempts,
                wait_s=max(0.0, self._clock() - request.submitted_at),
            )
        )

    # -- dispatch ------------------------------------------------------
    def _job_deadline(self, batch: CoalescedBatch) -> Optional[float]:
        """The pool-job budget: the members' largest remaining budget
        (``None`` when any member is unbounded — a bounded job deadline
        must never kill an unbounded member's work)."""
        remaining: List[float] = []
        for member in batch.members:
            if member.deadline is None:
                return None
            left = member.deadline.remaining
            if left <= 0.0:
                # Expired while in flight: the deadline can no longer be
                # saved, so the value is computed to completion and
                # delivered late — a nonpositive pool budget would only
                # kill the work a second time.
                return None
            remaining.append(left)
        return max(remaining) if remaining else None

    def _dispatch(
        self,
        batches: List[CoalescedBatch],
        outcomes: List[RequestOutcome],
        *,
        fresh: bool,
    ) -> None:
        """Submit batches to the pool, drain, and account every member.

        ``fresh`` marks first dispatch (members move queued → in-flight);
        retry waves keep members in-flight. Batch failures retry their
        members individually (uncoalesced) exactly once.
        """
        started = self._clock()
        by_job: Dict[int, CoalescedBatch] = {}
        dispatched = 0
        for batch in batches:
            if fresh:
                for member in batch.members:
                    self.ledger.record_dispatched(member.tenant)
                    self._in_flight[member.tenant] = (
                        self._in_flight.get(member.tenant, 0) + 1
                    )
            for member in batch.members:
                member.attempts += 1
                self.schedule_log.append(
                    ("dispatch", member.index, member.tenant,
                     f"width={batch.width}")
                )
            if batch.coalesced:
                self.ledger.coalesced_requests += batch.width
                schedule = batch.launch_schedule()
                self.ledger.coalesced_launches += (
                    len(schedule) if schedule else 1
                )
            dispatched += batch.width
            label = "+".join(m.label for m in batch.members[:3]) + (
                f"+{batch.width - 3}" if batch.width > 3 else ""
            )
            try:
                job = self.pool.submit(
                    batch.job_fn(),
                    label=f"serve[{label}]",
                    deadline_s=self._job_deadline(batch),
                )
            except PoolSaturatedError:
                # The pool queue is full: drain what is in, then retry
                # the submit against an empty queue.
                self._settle(by_job, outcomes)
                by_job = {}
                job = self.pool.submit(
                    batch.job_fn(),
                    label=f"serve[{label}]",
                    deadline_s=self._job_deadline(batch),
                )
            by_job[job] = batch
        self._settle(by_job, outcomes)
        elapsed = self._clock() - started
        if dispatched > 0 and elapsed >= 0.0:
            self.admission.observe_service(elapsed / dispatched)

    def _settle(
        self,
        by_job: Dict[int, CoalescedBatch],
        outcomes: List[RequestOutcome],
    ) -> None:
        if not by_job:
            return
        retries: List[LikelihoodRequest] = []
        for job_outcome in self.pool.drain():
            batch = by_job.get(job_outcome.index)
            if batch is None:
                continue  # a job from an interleaved pool user
            self._account_batch(batch, job_outcome, outcomes, retries)
        if retries:
            # One uncoalesced retry wave, jitter-ordered so concurrent
            # batch failures do not re-arrive in lockstep.
            retries.sort(
                key=lambda r: seeded_jitter(
                    self.jitter_seed, r.index, r.attempts
                )
            )
            self._dispatch(
                [CoalescedBatch([r]) for r in retries],
                outcomes,
                fresh=False,
            )

    def _account_batch(
        self,
        batch: CoalescedBatch,
        job_outcome: JobOutcome,
        outcomes: List[RequestOutcome],
        retries: List[LikelihoodRequest],
    ) -> None:
        if job_outcome.ok:
            values = job_outcome.value
            for member, value in zip(batch.members, values):
                self._finish_served(member, value, batch.width, outcomes)
            return
        if job_outcome.status == "shed":
            # The pool shed the whole job (budget spent while queued);
            # the members were in flight from the server's view.
            for member in batch.members:
                self._finish_shed(
                    member, SHED_EXPIRED, outcomes, queued=False
                )
            return
        for member in batch.members:
            if not member.retried:
                member.retried = True
                self.ledger.record_retried(member.tenant)
                get_recorder().count("repro_serve_retries_total")
                self.schedule_log.append(
                    ("retry", member.index, member.tenant,
                     type(job_outcome.error).__name__)
                )
                retries.append(member)
            else:
                self._finish_failed(member, job_outcome, outcomes)

    def _finish_served(
        self,
        member: LikelihoodRequest,
        value: float,
        width: int,
        outcomes: List[RequestOutcome],
    ) -> None:
        late = member.expired
        verified: Optional[bool] = None
        if self.verify:
            verified = self._verify_serial(member, value)
        self._in_flight[member.tenant] = (
            self._in_flight.get(member.tenant, 1) - 1
        )
        self.ledger.record_served(member.tenant, late=late)
        get_recorder().count("repro_serve_served_total")
        if late:
            get_recorder().count("repro_serve_late_total")
        self.schedule_log.append(
            ("serve", member.index, member.tenant,
             f"width={width}" + (" late" if late else ""))
        )
        outcomes.append(
            RequestOutcome(
                index=member.index,
                tenant=member.tenant,
                label=member.label,
                status=SERVED,
                value=value,
                attempts=member.attempts,
                coalesced_width=width,
                wait_s=max(0.0, self._clock() - member.submitted_at),
                late=late,
                verified=verified,
            )
        )

    def _finish_failed(
        self,
        member: LikelihoodRequest,
        job_outcome: JobOutcome,
        outcomes: List[RequestOutcome],
    ) -> None:
        self._in_flight[member.tenant] = (
            self._in_flight.get(member.tenant, 1) - 1
        )
        self.ledger.record_failed(member.tenant)
        get_recorder().count("repro_serve_failed_total")
        self.schedule_log.append(
            ("fail", member.index, member.tenant,
             type(job_outcome.error).__name__)
        )
        outcomes.append(
            RequestOutcome(
                index=member.index,
                tenant=member.tenant,
                label=member.label,
                status=FAILED,
                error=job_outcome.error,
                cause=job_outcome.cause,
                attempts=member.attempts,
                wait_s=max(0.0, self._clock() - member.submitted_at),
            )
        )

    def _verify_serial(self, member: LikelihoodRequest, value: float) -> bool:
        """The bit-identity gate: recompute on a clean serial engine.

        The reference path builds a fresh case and runs
        :func:`~repro.core.planner.execute_plan` directly — no pool, no
        fault injection, no coalescing — and the comparison is exact
        equality, not a tolerance.
        """
        instance, plan = member.make_case()
        reference = execute_plan(instance, plan)
        identical = reference == value
        if identical:
            self.ledger.verified += 1
        else:
            self.ledger.verify_failures += 1
            get_recorder().count("repro_serve_verify_failures_total")
        return identical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LikelihoodServer pending={self.scheduler.pending} "
            f"level={self.brownout.level} "
            f"served={self.ledger.served}/{self.ledger.admitted}>"
        )
