"""Per-tenant fairness: deficit-round-robin scheduling with in-flight caps.

One hot tenant must not crowd out the rest. The server keeps one FIFO
queue per tenant and picks dispatch candidates with **deficit round
robin** (Shreedhar & Varghese): the scheduler visits tenants in a fixed
rotation; each visit credits the tenant's *deficit counter* with a
quantum scaled by its weight, and the tenant may dispatch queued
requests as long as their cost fits the accumulated deficit. Cheap
requests flow freely; an expensive request waits until its tenant has
accumulated enough credit — but never forever:

**Starvation-freedom.** A tenant with pending work whose in-flight cap
is not exhausted accumulates ``quantum × weight`` credit per round, so
its head request of cost ``c`` is dispatched after at most
``ceil(c / (quantum × weight))`` of its round visits
(:meth:`DeficitRoundRobin.starvation_bound`). The property suite checks
this bound for arbitrary arrival schedules and weights.

Per-tenant **in-flight caps** bound how much of the worker fleet one
tenant can hold at once; a capped tenant is skipped *without* accruing
credit (credit while blocked would burst on uncap, defeating the cap).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional

from .request import LikelihoodRequest

__all__ = ["FairnessConfig", "DeficitRoundRobin"]


@dataclass(frozen=True)
class FairnessConfig:
    """Knobs of the deficit-round-robin scheduler.

    Parameters
    ----------
    quantum:
        Credit (in request-cost units) a weight-1.0 tenant accrues per
        round visit. Larger quanta approach plain round robin over
        requests; smaller quanta enforce cost-proportional sharing more
        tightly at the price of more visits per dispatch.
    in_flight_cap:
        Maximum requests one tenant may have dispatched-but-unfinished
        (``None`` = uncapped).
    """

    quantum: float = 4.0
    in_flight_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.quantum <= 0.0:
            raise ValueError("quantum must be positive")
        if self.in_flight_cap is not None and self.in_flight_cap < 1:
            raise ValueError("in_flight_cap must be positive (or None)")


@dataclass
class _TenantQueue:
    name: str
    weight: float = 1.0
    deficit: float = 0.0
    queue: Deque[LikelihoodRequest] = field(default_factory=deque)


class DeficitRoundRobin:
    """Weighted deficit-round-robin over per-tenant FIFO queues."""

    def __init__(self, config: Optional[FairnessConfig] = None) -> None:
        self.config = config or FairnessConfig()
        self._tenants: "OrderedDict[str, _TenantQueue]" = OrderedDict()
        self._rotation: List[str] = []
        self._cursor = 0
        #: Scheduling rounds completed (one round = one full rotation).
        self.rounds = 0

    # -- tenant management ---------------------------------------------
    def _tenant(self, name: str) -> _TenantQueue:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantQueue(name)
            self._tenants[name] = state
            self._rotation.append(name)
        return state

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's scheduling weight (must be positive)."""
        if weight <= 0.0:
            raise ValueError("tenant weight must be positive")
        self._tenant(tenant).weight = float(weight)

    def weight(self, tenant: str) -> float:
        """The tenant's current weight (1.0 if never set)."""
        state = self._tenants.get(tenant)
        return state.weight if state is not None else 1.0

    # -- queue surface --------------------------------------------------
    def enqueue(self, request: LikelihoodRequest) -> None:
        """Append a request to its tenant's FIFO."""
        self._tenant(request.tenant).queue.append(request)

    @property
    def pending(self) -> int:
        """Requests queued across all tenants."""
        return sum(len(t.queue) for t in self._tenants.values())

    def tenant_depth(self, tenant: str) -> int:
        """Requests queued for one tenant."""
        state = self._tenants.get(tenant)
        return len(state.queue) if state is not None else 0

    def queued_requests(self) -> List[LikelihoodRequest]:
        """Snapshot of every queued request (rotation order)."""
        out: List[LikelihoodRequest] = []
        for name in self._rotation:
            out.extend(self._tenants[name].queue)
        return out

    def remove_if(
        self, predicate: Callable[[LikelihoodRequest], bool]
    ) -> List[LikelihoodRequest]:
        """Remove and return every queued request matching ``predicate``
        (FIFO order preserved for survivors)."""
        removed: List[LikelihoodRequest] = []
        for state in self._tenants.values():
            kept: Deque[LikelihoodRequest] = deque()
            for request in state.queue:
                if predicate(request):
                    removed.append(request)
                else:
                    kept.append(request)
            state.queue = kept
            if not state.queue:
                state.deficit = 0.0
        return removed

    def pop_deadline_ascending(self, n: int) -> List[LikelihoodRequest]:
        """Remove the ``n`` queued requests with the soonest deadlines
        (the brownout shed order: they are the least likely to be served
        in time, so shedding them wastes the least feasible work)."""
        if n <= 0:
            return []
        victims = sorted(
            self.queued_requests(), key=lambda r: r.deadline_key()
        )[:n]
        victim_ids = {id(r) for r in victims}
        self.remove_if(lambda r: id(r) in victim_ids)
        return victims

    # -- scheduling -----------------------------------------------------
    def starvation_bound(self, tenant: str, cost: int) -> int:
        """Round visits before a head request of ``cost`` must dispatch."""
        import math

        credit = self.config.quantum * self.weight(tenant)
        return max(1, math.ceil(cost / credit))

    def pick(
        self,
        max_picks: int,
        in_flight: Optional[Mapping[str, int]] = None,
    ) -> List[LikelihoodRequest]:
        """Dispatch candidates for one scheduling cycle.

        Visits tenants in rotation from the persistent cursor, crediting
        deficits and popping affordable head requests, until
        ``max_picks`` requests are picked or a full rotation yields
        nothing (every tenant empty, capped, or saving credit).
        """
        if max_picks <= 0:
            return []
        in_flight = in_flight or {}
        cap = self.config.in_flight_cap
        picks: List[LikelihoodRequest] = []
        picked_per_tenant: Dict[str, int] = {}
        n = len(self._rotation)
        if n == 0:
            return picks
        idle_visits = 0
        while len(picks) < max_picks and idle_visits < n:
            name = self._rotation[self._cursor]
            self._cursor = (self._cursor + 1) % n
            if self._cursor == 0:
                self.rounds += 1
            state = self._tenants[name]
            if not state.queue:
                state.deficit = 0.0
                idle_visits += 1
                continue
            if cap is not None:
                active = in_flight.get(name, 0) + picked_per_tenant.get(name, 0)
                if active >= cap:
                    idle_visits += 1
                    continue
            state.deficit += self.config.quantum * state.weight
            capped_mid_visit = False
            while (
                state.queue
                and len(picks) < max_picks
                and state.queue[0].cost <= state.deficit
            ):
                if cap is not None:
                    active = (
                        in_flight.get(name, 0)
                        + picked_per_tenant.get(name, 0)
                    )
                    if active >= cap:
                        capped_mid_visit = True
                        break
                request = state.queue.popleft()
                state.deficit -= request.cost
                picks.append(request)
                picked_per_tenant[name] = picked_per_tenant.get(name, 0) + 1
            if not state.queue:
                state.deficit = 0.0
            # A visit that dispatched nothing but accrued credit is still
            # progress — the head becomes affordable within
            # ceil(cost / (quantum · weight)) visits — so only empty or
            # capped visits count toward the all-idle exit.
            idle_visits = idle_visits + 1 if capped_mid_visit else 0
        return picks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depths = {n: len(t.queue) for n, t in self._tenants.items()}
        return f"<DeficitRoundRobin pending={depths} rounds={self.rounds}>"
