"""Cross-request operation coalescing: compatible cases share launches.

The paper's multi-operation kernel batches the independent operations of
*one* tree into one launch. A serving front end sees the same structure
**across requests**: at any instant, many tenants' evaluations are at
the same depth with mutually independent operation sets, and a device
(BEAGLE 4.1's multi-client concurrency) can run them as one wide launch.
This module implements that policy layer:

* :class:`CompatKey` — requests may share launches when their engine
  dimensions agree: precision, state count, rate categories, and a
  pattern-count bucket.
* **Pad vs. split** (:class:`CoalescePolicy`) — ``"split"`` groups only
  requests with *identical* pattern counts (lanes stay dense; bit-exact
  arena sharing applies to the whole batch). ``"pad"`` buckets pattern
  counts up to the next power of two, coalescing more aggressively at
  the price of padded lanes: the device model prices every member at the
  bucket width, so the throughput/waste trade-off is explicit.
* :class:`CoalescedBatch` — one pool job serving N requests. Members
  execute sequentially through the worker's full resilient stack (each
  against its own buffers, so every served value is **bit-identical to
  its serial single-request evaluation** by construction), while
  same-shaped members adopt one shared
  :class:`~repro.beagle.workspace.Workspace` arena — one scratch
  allocation per batch instead of one per tenant. The *launch schedule*
  — lockstep rounds whose width is the sum of the members' same-depth
  set sizes — is what the GPU model prices
  (:meth:`repro.gpu.simulator.SimulatedDevice.time_coalesced`): one
  launch overhead per round instead of one per member set.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..obs import get_recorder
from .request import LikelihoodRequest, RequestDims

__all__ = [
    "CompatKey",
    "CoalescePolicy",
    "CoalescedBatch",
    "BatchAssembler",
    "pattern_bucket",
]


def pattern_bucket(pattern_count: int, mode: str) -> int:
    """The pattern-count bucket a request coalesces within.

    ``"split"`` — the exact count (only identical widths share).
    ``"pad"`` — the next power of two at or above the count (wider
    sharing, padded lanes).
    """
    if pattern_count < 1:
        raise ValueError("pattern_count must be positive")
    if mode == "split":
        return pattern_count
    if mode == "pad":
        bucket = 1
        while bucket < pattern_count:
            bucket *= 2
        return bucket
    raise ValueError(f"unknown coalesce mode {mode!r}")


@dataclass(frozen=True)
class CompatKey:
    """Dimensions under which two requests may share kernel launches."""

    precision: str
    state_count: int
    category_count: int
    pattern_bucket: int

    @classmethod
    def of(cls, dims: RequestDims, mode: str) -> "CompatKey":
        """The key of one request's dims under a pad/split mode."""
        return cls(
            precision=dims.precision,
            state_count=dims.state_count,
            category_count=dims.category_count,
            pattern_bucket=pattern_bucket(dims.pattern_count, mode),
        )


@dataclass(frozen=True)
class CoalescePolicy:
    """Knobs of the batch assembler.

    Parameters
    ----------
    mode:
        ``"split"`` (default, lanes dense, exact pattern-count match) or
        ``"pad"`` (power-of-two pattern buckets, wider batches).
    max_width:
        Requests per coalesced batch before the assembler starts a new
        one. The brownout controller grows this multiplicatively under
        overload (throughput over per-request latency).
    enabled:
        ``False`` makes every request its own singleton batch (the
        uncoalesced baseline the bench compares against).
    """

    mode: str = "split"
    max_width: int = 8
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("split", "pad"):
            raise ValueError(f"unknown coalesce mode {self.mode!r}")
        if self.max_width < 1:
            raise ValueError("max_width must be positive")


class CoalescedBatch:
    """N compatible requests served as one pool job."""

    def __init__(
        self,
        members: Sequence[LikelihoodRequest],
        key: Optional[CompatKey] = None,
    ) -> None:
        if not members:
            raise ValueError("a batch needs at least one member")
        self.members: List[LikelihoodRequest] = list(members)
        self.key = key

    @property
    def width(self) -> int:
        """Member count."""
        return len(self.members)

    @property
    def coalesced(self) -> bool:
        """Does this batch actually share launches (width ≥ 2)?"""
        return len(self.members) >= 2

    def launch_schedule(self) -> List[int]:
        """Lockstep round widths: round ``r`` fuses every member's
        ``r``-th operation set into one launch of their summed sizes.
        Empty when any member's plan shape is unknown."""
        if any(not m.set_sizes for m in self.members):
            return []
        rounds: List[int] = []
        for sizes in zip_longest(*(m.set_sizes for m in self.members)):
            rounds.append(sum(s for s in sizes if s is not None))
        return rounds

    def solo_launches(self) -> int:
        """Launches the members would issue served one at a time."""
        return sum(len(m.set_sizes) for m in self.members)

    def job_fn(self) -> Callable[[object], List[float]]:
        """The pool job evaluating every member, in order.

        Members run sequentially through the worker's full stack —
        deadline guard, fault injection, retry/degrade/rescale — each
        against its own instance and plan, so recovery and bit-identity
        guarantees are inherited unchanged from the single-request path.
        Same-shaped members adopt the first member's Workspace arena;
        a raising member fails the whole job, which the pool then
        reroutes (re-serving earlier members is safe: values are
        deterministic and the last write wins with identical bits).

        Arena adoption is backend-agnostic: every kernel backend keeps
        all of its scratch in the Workspace (backends themselves are
        stateless), and the arena is pure per-launch scratch, so members
        whose instances run *different* backends may share one arena —
        the dims key deliberately excludes the backend.
        """
        members = self.members
        batch_width = len(members)

        def run(ctx) -> List[float]:
            obs = get_recorder()
            arenas: Dict[Tuple[object, int, int, int], object] = {}
            values: List[float] = []
            for member in members:
                instance, plan = member.make_case()
                engine = instance
                workspace = getattr(engine, "workspace", None)
                adopt = getattr(engine, "adopt_workspace", None)
                if workspace is not None and adopt is not None:
                    dims_key = (
                        getattr(engine, "dtype", None),
                        getattr(engine, "category_count", -1),
                        getattr(engine, "pattern_count", -1),
                        getattr(engine, "state_count", -1),
                    )
                    shared = arenas.get(dims_key)
                    if shared is None:
                        arenas[dims_key] = workspace
                    else:
                        adopt(shared)
                if obs.enabled:
                    with obs.span(
                        "serve.request",
                        category="serve",
                        tenant=member.tenant,
                        label=member.label,
                        batch_width=batch_width,
                    ):
                        values.append(ctx.execute(instance, plan))
                else:
                    values.append(ctx.execute(instance, plan))
            return values

        return run


class BatchAssembler:
    """Groups scheduler picks into coalesced batches.

    Grouping preserves the scheduler's dispatch order within each
    compatibility class (fairness decisions are not reordered), and a
    request without declared dims is never coalesced — it becomes a
    singleton batch.
    """

    def __init__(self, policy: Optional[CoalescePolicy] = None) -> None:
        self.policy = policy or CoalescePolicy()

    def key_for(self, request: LikelihoodRequest) -> Optional[CompatKey]:
        """The request's compatibility key (None = never coalesce)."""
        if request.dims is None:
            return None
        return CompatKey.of(request.dims, self.policy.mode)

    def assemble(
        self,
        picks: Sequence[LikelihoodRequest],
        *,
        width_scale: float = 1.0,
    ) -> List[CoalescedBatch]:
        """Partition ``picks`` into batches.

        Parameters
        ----------
        picks:
            Scheduler output, in dispatch order.
        width_scale:
            Brownout multiplier (≥ 1.0) on the policy's ``max_width``.
        """
        width_cap = max(1, int(self.policy.max_width * width_scale))
        batches: List[CoalescedBatch] = []
        if not self.policy.enabled:
            return [CoalescedBatch([pick]) for pick in picks]
        open_batches: Dict[Hashable, CoalescedBatch] = {}
        for pick in picks:
            key = self.key_for(pick)
            if key is None:
                batches.append(CoalescedBatch([pick]))
                continue
            batch = open_batches.get(key)
            if batch is None:
                batch = CoalescedBatch([pick], key=key)
                batches.append(batch)
                if batch.width < width_cap:
                    open_batches[key] = batch
            else:
                batch.members.append(pick)
                if batch.width >= width_cap:
                    del open_batches[key]
        return batches
