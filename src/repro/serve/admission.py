"""Deadline-aware admission control with typed reject reasons.

The server never queues unboundedly: a submission that cannot be served
acceptably is refused *now*, with a reason, as a
:class:`ServerSaturatedError` — a subclass of the pool's
:class:`~repro.exec.errors.PoolSaturatedError`, so callers that already
handle pool saturation handle server saturation for free. Four reasons:

``queue-full``
    The server's bounded queue is at capacity (the direct analogue of
    the pool's admission bound).
``tenant-quota``
    The submitting tenant alone is at its queued-request quota — one hot
    tenant fills its own slice, not the shared queue.
``infeasible-deadline``
    The request carries a deadline the current backlog makes impossible:
    the expected queue wait (estimated from an EWMA of observed service
    times) already exceeds the budget. Rejecting at the door is strictly
    kinder than queueing work that can only be shed later.
``brownout-clamp``
    The brownout controller has clamped per-tenant quotas below the
    configured level (sustained overload; see
    :mod:`repro.serve.brownout`).

Every decision is pure bookkeeping over counts the server passes in, so
admission is deterministic and unit-testable without a server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exec.errors import PoolSaturatedError
from .ledger import (
    REJECT_BROWNOUT,
    REJECT_INFEASIBLE,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
)

__all__ = [
    "ServerSaturatedError",
    "AdmissionConfig",
    "AdmissionDecision",
    "AdmissionController",
]


class ServerSaturatedError(PoolSaturatedError):
    """A request was refused by the server's admission control.

    Parameters
    ----------
    reason:
        One of the typed rejection reasons
        (:data:`~repro.serve.ledger.REJECT_QUEUE_FULL` …).
    tenant:
        The submitting tenant.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        tenant: str,
        capacity: Optional[int] = None,
        pending: Optional[int] = None,
    ) -> None:
        super().__init__(message, capacity=capacity, pending=pending)
        self.reason = reason
        self.tenant = tenant


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller.

    Parameters
    ----------
    max_queued:
        Bound on requests queued across all tenants.
    tenant_quota:
        Bound on requests one tenant may have queued (``None`` = only
        the global bound applies).
    feasibility:
        Reject requests whose deadline the estimated queue wait already
        exceeds. Needs at least one observed service time to act.
    service_ewma_alpha:
        Smoothing factor of the service-time estimate.
    """

    max_queued: int = 1024
    tenant_quota: Optional[int] = None
    feasibility: bool = True
    service_ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be positive")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be positive (or None)")
        if not 0.0 < self.service_ewma_alpha <= 1.0:
            raise ValueError("service_ewma_alpha must be in (0, 1]")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admit: bool
    reason: Optional[str] = None
    detail: str = ""


class AdmissionController:
    """Stateless-per-decision admission over server-supplied counts.

    The only internal state is the service-time EWMA
    (:meth:`observe_service`), which the feasibility check uses to
    estimate how long a newly queued request would wait.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        #: EWMA of per-request service seconds (None until first sample).
        self.service_estimate_s: Optional[float] = None

    def observe_service(self, seconds: float) -> None:
        """Fold one observed per-request service time into the EWMA."""
        if seconds < 0.0:
            return
        if self.service_estimate_s is None:
            self.service_estimate_s = seconds
        else:
            a = self.config.service_ewma_alpha
            self.service_estimate_s = (
                a * seconds + (1.0 - a) * self.service_estimate_s
            )

    def estimated_wait_s(self, queue_depth: int, workers: int) -> Optional[float]:
        """Expected queue wait with ``queue_depth`` requests ahead."""
        if self.service_estimate_s is None or workers < 1:
            return None
        return queue_depth * self.service_estimate_s / workers

    def decide(
        self,
        *,
        tenant: str,
        queue_depth: int,
        tenant_depth: int,
        workers: int = 1,
        budget_s: Optional[float] = None,
        quota_scale: float = 1.0,
    ) -> AdmissionDecision:
        """Admit or reject one submission.

        Parameters
        ----------
        tenant, queue_depth, tenant_depth, workers:
            Who is asking and what the queue looks like.
        budget_s:
            The request's deadline budget, for the feasibility check.
        quota_scale:
            Brownout clamp in ``(0, 1]`` applied to the tenant quota; a
            rejection that only occurs because ``quota_scale < 1``
            carries the ``brownout-clamp`` reason.
        """
        cfg = self.config
        if queue_depth >= cfg.max_queued:
            return AdmissionDecision(
                False,
                REJECT_QUEUE_FULL,
                f"queue at capacity ({cfg.max_queued})",
            )
        if cfg.tenant_quota is not None:
            clamped = max(1, int(cfg.tenant_quota * quota_scale))
            if tenant_depth >= clamped:
                reason = (
                    REJECT_BROWNOUT
                    if clamped < cfg.tenant_quota
                    else REJECT_TENANT_QUOTA
                )
                return AdmissionDecision(
                    False,
                    reason,
                    f"tenant {tenant} at quota "
                    f"({tenant_depth}/{clamped}"
                    + (
                        f", clamped from {cfg.tenant_quota}"
                        if clamped < cfg.tenant_quota
                        else ""
                    )
                    + ")",
                )
        if cfg.feasibility and budget_s is not None:
            wait = self.estimated_wait_s(queue_depth, workers)
            if wait is not None and wait > budget_s:
                return AdmissionDecision(
                    False,
                    REJECT_INFEASIBLE,
                    f"estimated wait {wait * 1e3:.0f} ms exceeds "
                    f"{budget_s * 1e3:.0f} ms budget",
                )
        return AdmissionDecision(True)
