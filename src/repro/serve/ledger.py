"""Closed-form request accounting for the likelihood server.

Every request a :class:`~repro.serve.server.LikelihoodServer` ever sees
lands in exactly one terminal bucket — ``served``, ``shed``, ``failed``
— or is still ``queued``/``in_flight``; submissions refused by admission
control are ``rejected`` before they are ever queued. The
:class:`ServeLedger` keeps those counts globally *and* per tenant, and
its :meth:`ServeLedger.imbalances` checks the identities that make
"no silent drops" a checkable property instead of a hope (the same
discipline as :class:`~repro.exec.pool.PoolStats` and the shard ledger
of PR 7)::

    offered  == admitted + rejected
    admitted == served + shed + failed + queued + in_flight
    rejected == sum(rejected_by_reason)
    shed     == sum(shed_by_cause)
    <total>  == sum over tenants, for every bucket

After a full drain ``queued == in_flight == 0``, so the second identity
collapses to the closed form ``admitted == served + shed + failed``.
``retried``, ``late``, ``coalesced_*`` and ``verified`` are informative
counters outside the identities (a retry is not a terminal outcome; a
late or verified request is still served).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["TenantLedger", "ServeLedger"]

#: Terminal request statuses.
SERVED = "served"
SHED = "shed"
FAILED = "failed"

#: Shed causes.
SHED_EXPIRED = "expired"  # deadline ran out while queued
SHED_BROWNOUT = "brownout"  # deadline-ascending overload shed

#: Rejection reasons (admission control).
REJECT_QUEUE_FULL = "queue-full"
REJECT_TENANT_QUOTA = "tenant-quota"
REJECT_INFEASIBLE = "infeasible-deadline"
REJECT_BROWNOUT = "brownout-clamp"


@dataclass
class TenantLedger:
    """One tenant's slice of the server's accounting."""

    tenant: str
    offered: int = 0
    rejected: int = 0
    admitted: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0
    queued: int = 0
    in_flight: int = 0
    retried: int = 0
    late: int = 0

    def imbalances(self) -> List[str]:
        """Violated per-tenant identities (empty means the row closes)."""
        problems: List[str] = []
        if self.offered != self.admitted + self.rejected:
            problems.append(
                f"tenant {self.tenant}: offered={self.offered} != "
                f"admitted={self.admitted} + rejected={self.rejected}"
            )
        accounted = (
            self.served + self.shed + self.failed
            + self.queued + self.in_flight
        )
        if self.admitted != accounted:
            problems.append(
                f"tenant {self.tenant}: admitted={self.admitted} != "
                f"served={self.served} + shed={self.shed} + "
                f"failed={self.failed} + queued={self.queued} + "
                f"in_flight={self.in_flight}"
            )
        return problems


@dataclass
class ServeLedger:
    """Aggregate server ledger plus per-tenant rows.

    Attributes
    ----------
    offered:
        Every :meth:`~repro.serve.server.LikelihoodServer.submit` call,
        accepted or not.
    rejected / rejected_by_reason:
        Submissions refused by admission control, by typed reason.
    admitted:
        Requests that entered the queue.
    served / shed / failed:
        Terminal outcomes; ``shed_by_cause`` splits queue-expiry from
        brownout shedding.
    queued / in_flight:
        Requests not yet terminal (both zero after a full drain).
    retried:
        Server-level uncoalesced re-dispatches after a batch failure
        (non-terminal; the request still ends in exactly one bucket).
    late:
        Served requests whose value arrived after their deadline —
        delivered and counted, never silently dropped.
    coalesced_launches / coalesced_requests:
        Shared launch rounds issued and requests that rode in a batch of
        width ≥ 2.
    verified / verify_failures:
        Bit-identity gate traffic (``verify=`` mode): served values
        re-computed serially and compared exactly.
    """

    offered: int = 0
    rejected: int = 0
    admitted: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0
    queued: int = 0
    in_flight: int = 0
    retried: int = 0
    late: int = 0
    coalesced_launches: int = 0
    coalesced_requests: int = 0
    verified: int = 0
    verify_failures: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    shed_by_cause: Dict[str, int] = field(default_factory=dict)
    tenants: Dict[str, TenantLedger] = field(default_factory=dict)

    # -- recording ------------------------------------------------------
    def tenant(self, name: str) -> TenantLedger:
        """The (created-on-first-use) row for ``name``."""
        row = self.tenants.get(name)
        if row is None:
            row = TenantLedger(name)
            self.tenants[name] = row
        return row

    def record_offered(self, tenant: str) -> None:
        """Count a request arriving at the front door."""
        self.offered += 1
        self.tenant(tenant).offered += 1

    def record_rejected(self, tenant: str, reason: str) -> None:
        """Count an admission rejection under typed ``reason``."""
        self.rejected += 1
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1
        )
        self.tenant(tenant).rejected += 1

    def record_admitted(self, tenant: str) -> None:
        """Count an admitted request entering the queue."""
        self.admitted += 1
        self.queued += 1
        row = self.tenant(tenant)
        row.admitted += 1
        row.queued += 1

    def record_dispatched(self, tenant: str) -> None:
        """Move one request from queued to in-flight."""
        self.queued -= 1
        self.in_flight += 1
        row = self.tenant(tenant)
        row.queued -= 1
        row.in_flight += 1

    def record_served(self, tenant: str, *, late: bool = False) -> None:
        """Close an in-flight request with a value (``late`` if past deadline)."""
        self.in_flight -= 1
        self.served += 1
        row = self.tenant(tenant)
        row.in_flight -= 1
        row.served += 1
        if late:
            self.late += 1
            row.late += 1

    def record_shed(self, tenant: str, cause: str, *, queued: bool = True) -> None:
        """Close a request as shed (``queued`` selects which bucket it leaves)."""
        if queued:
            self.queued -= 1
            self.tenant(tenant).queued -= 1
        else:
            self.in_flight -= 1
            self.tenant(tenant).in_flight -= 1
        self.shed += 1
        self.shed_by_cause[cause] = self.shed_by_cause.get(cause, 0) + 1
        self.tenant(tenant).shed += 1

    def record_failed(self, tenant: str) -> None:
        """Close an in-flight request whose retries are exhausted."""
        self.in_flight -= 1
        self.failed += 1
        row = self.tenant(tenant)
        row.in_flight -= 1
        row.failed += 1

    def record_retried(self, tenant: str) -> None:
        """Count one uncoalesced retry of a failed batch member."""
        self.retried += 1
        self.tenant(tenant).retried += 1

    # -- identities -----------------------------------------------------
    def imbalances(self) -> List[str]:
        """Violated ledger identities (empty means the ledger closes)."""
        problems: List[str] = []
        if self.offered != self.admitted + self.rejected:
            problems.append(
                f"offered={self.offered} != admitted={self.admitted} "
                f"+ rejected={self.rejected}"
            )
        accounted = (
            self.served + self.shed + self.failed
            + self.queued + self.in_flight
        )
        if self.admitted != accounted:
            problems.append(
                f"admitted={self.admitted} != served={self.served} "
                f"+ shed={self.shed} + failed={self.failed} "
                f"+ queued={self.queued} + in_flight={self.in_flight}"
            )
        if self.rejected != sum(self.rejected_by_reason.values()):
            problems.append(
                f"rejected={self.rejected} != "
                f"sum(by reason)={sum(self.rejected_by_reason.values())}"
            )
        if self.shed != sum(self.shed_by_cause.values()):
            problems.append(
                f"shed={self.shed} != "
                f"sum(by cause)={sum(self.shed_by_cause.values())}"
            )
        for bucket in (
            "offered", "rejected", "admitted", "served", "shed",
            "failed", "queued", "in_flight", "retried", "late",
        ):
            total = getattr(self, bucket)
            by_tenant = sum(getattr(r, bucket) for r in self.tenants.values())
            if total != by_tenant:
                problems.append(
                    f"{bucket}={total} != sum over tenants={by_tenant}"
                )
        for row in self.tenants.values():
            problems.extend(row.imbalances())
        return problems

    def balances(self) -> bool:
        """Does every ledger identity close?"""
        return not self.imbalances()

    def drained(self) -> bool:
        """No request left queued or in flight?"""
        return self.queued == 0 and self.in_flight == 0

    def explain(self) -> str:
        """Account for every ledger identity with its current numbers."""
        checks = [
            (
                "offered == admitted + rejected",
                self.offered,
                self.admitted + self.rejected,
                "every submission is admitted or refused with a reason",
            ),
            (
                "admitted == served + shed + failed + queued + in_flight",
                self.admitted,
                self.served + self.shed + self.failed
                + self.queued + self.in_flight,
                "every admitted request is somewhere, exactly once",
            ),
            (
                "rejected == sum(rejected_by_reason)",
                self.rejected,
                sum(self.rejected_by_reason.values()),
                "every rejection carries a typed reason",
            ),
            (
                "shed == sum(shed_by_cause)",
                self.shed,
                sum(self.shed_by_cause.values()),
                "every shed request carries a typed cause",
            ),
        ]
        lines = []
        for identity, lhs, rhs, meaning in checks:
            mark = "ok" if lhs == rhs else "VIOLATED"
            lines.append(f"[{mark}] {identity} ({lhs} vs {rhs}): {meaning}")
        return "\n".join(lines)

    def format(self) -> str:
        """One-line summary for logs and ``synthetictest`` output."""
        return (
            f"serve: tenants={len(self.tenants)} offered={self.offered} "
            f"admitted={self.admitted} rejected={self.rejected} "
            f"served={self.served} shed={self.shed} failed={self.failed} "
            f"retried={self.retried} late={self.late} "
            f"coalesced={self.coalesced_requests}req/"
            f"{self.coalesced_launches}launch "
            f"verified={self.verified}/{self.verified + self.verify_failures}"
        )
