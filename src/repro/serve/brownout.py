"""Graceful brownout: explicit, staged degradation under sustained load.

An overloaded server must degrade by *policy*, not by accident. The
:class:`BrownoutController` turns queue pressure (queued requests over
queue capacity) into a small integer **level**, and each level arms one
explicit mechanism — in escalating order of how much it hurts:

====== ===================================================================
level  effect
====== ===================================================================
0      normal operation
1      **coalescing width grows** (``width_scale`` doubles per level):
       more requests share each launch — aggregate throughput rises,
       per-request p99 latency pays
2      \\+ **per-tenant quota clamp** (``quota_scale`` halves): admission
       tightens each tenant's queued-request quota, shedding load at the
       door with the typed ``brownout-clamp`` reason
3      \\+ **deadline-ascending shed**: queued requests beyond the
       target backlog are dropped, soonest deadlines first (they are the
       least likely to be served in time, so the feasible work lost is
       minimal); every victim is a ledger-counted ``shed`` outcome
====== ===================================================================

The level is a pure function of observed pressure against fixed
thresholds — no hysteresis state, no clock — so two servers observing
the same queue sequence brown out identically (the determinism the
serve-schedule regression test pins down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["BrownoutPolicy", "BrownoutController"]


@dataclass(frozen=True)
class BrownoutPolicy:
    """Thresholds and effect strengths of the brownout stages.

    Parameters
    ----------
    thresholds:
        Pressure (queued / max_queued) at which levels 1, 2 and 3
        engage; strictly increasing, in ``(0, 1]``.
    widen_factor:
        Coalescing-width multiplier applied per level (level ``L`` ⇒
        ``widen_factor ** L``).
    clamp_factor:
        Per-tenant quota multiplier applied per level at or above 2
        (level 2 ⇒ ``clamp_factor``, level 3 ⇒ ``clamp_factor**2``).
    shed_target:
        Fraction of queue capacity the level-3 shed trims the backlog
        down to.
    """

    thresholds: Tuple[float, float, float] = (0.5, 0.75, 0.9)
    widen_factor: float = 2.0
    clamp_factor: float = 0.5
    shed_target: float = 0.75

    def __post_init__(self) -> None:
        t1, t2, t3 = self.thresholds
        if not 0.0 < t1 < t2 < t3 <= 1.0:
            raise ValueError(
                "thresholds must be strictly increasing within (0, 1]"
            )
        if self.widen_factor < 1.0:
            raise ValueError("widen_factor must be at least 1")
        if not 0.0 < self.clamp_factor <= 1.0:
            raise ValueError("clamp_factor must be in (0, 1]")
        if not 0.0 < self.shed_target <= 1.0:
            raise ValueError("shed_target must be in (0, 1]")


class BrownoutController:
    """Maps queue pressure to a level and its staged effects."""

    def __init__(self, policy: BrownoutPolicy = BrownoutPolicy()) -> None:
        self.policy = policy
        self.level = 0
        #: Highest level reached (reporting only).
        self.peak_level = 0

    def observe(self, queued: int, capacity: int) -> int:
        """Update and return the level for the current backlog."""
        pressure = queued / capacity if capacity > 0 else 0.0
        level = 0
        for threshold in self.policy.thresholds:
            if pressure >= threshold:
                level += 1
        self.level = level
        self.peak_level = max(self.peak_level, level)
        return level

    @property
    def width_scale(self) -> float:
        """Coalescing-width multiplier at the current level (≥ 1)."""
        return self.policy.widen_factor ** self.level

    @property
    def quota_scale(self) -> float:
        """Per-tenant quota multiplier at the current level (≤ 1)."""
        if self.level < 2:
            return 1.0
        return self.policy.clamp_factor ** (self.level - 1)

    def shed_count(self, queued: int, capacity: int) -> int:
        """Queued requests the level-3 shed should drop right now."""
        if self.level < 3:
            return 0
        target = int(capacity * self.policy.shed_target)
        return max(0, queued - target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BrownoutController level={self.level} peak={self.peak_level}>"
