"""Among-site rate variation.

Real sequence data mixes fast- and slow-evolving sites. The standard
treatment (Yang 1994) discretises a Gamma(α, α) distribution (mean 1) into
``k`` equal-probability categories, each represented by its mean rate; the
site likelihood is then the category-probability-weighted mixture. An
optional proportion of invariant sites (rate 0) extends this to the
"Γ + I" model. Rate categories multiply the engine's work by ``k`` — the
partial-likelihood grid becomes ``patterns × states × categories`` — which
is why they appear in the FLOP accounting of :mod:`repro.gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import gamma as gamma_dist

__all__ = [
    "RateCategories",
    "discrete_gamma",
    "invariant_plus_gamma",
    "single_rate",
    "draw_site_rates",
]


@dataclass(frozen=True)
class RateCategories:
    """A finite mixture of site-rate classes.

    Attributes
    ----------
    rates:
        Rate multiplier of each category.
    probabilities:
        Prior probability of each category (sums to 1).
    """

    rates: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=np.float64)
        probs = np.asarray(self.probabilities, dtype=np.float64)
        if rates.ndim != 1 or rates.shape != probs.shape:
            raise ValueError("rates and probabilities must be 1-D and equal length")
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
            raise ValueError("probabilities must be non-negative and sum to 1")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "probabilities", probs)

    @property
    def n_categories(self) -> int:
        return int(self.rates.shape[0])

    def mean_rate(self) -> float:
        """Expected rate over categories (≈ 1 for normalised mixtures)."""
        return float(np.dot(self.rates, self.probabilities))


def single_rate() -> RateCategories:
    """The trivial one-category mixture (no rate heterogeneity)."""
    return RateCategories(np.array([1.0]), np.array([1.0]))


def discrete_gamma(alpha: float, n_categories: int = 4) -> RateCategories:
    """Yang's (1994) mean-of-quantile discrete Gamma approximation.

    The Gamma(α, α) density is cut at its ``i/k`` quantiles; each
    category's rate is the conditional mean within its slice, computed
    analytically from the incomplete-gamma identity
    ``E[X; X ≤ q] = CDF_{α+1}(q · α/(α+1) scale)``. Category rates are then
    renormalised so the mixture mean is exactly 1.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if n_categories < 1:
        raise ValueError("need at least one category")
    if n_categories == 1:
        return single_rate()
    k = n_categories
    # Gamma(shape=alpha, scale=1/alpha): mean 1.
    dist = gamma_dist(a=alpha, scale=1.0 / alpha)
    cuts = dist.ppf(np.arange(1, k) / k)
    # E[X · 1{X ≤ q}] for Gamma(a, scale) equals CDF of Gamma(a+1, scale)
    # at q times the distribution mean (= 1 here).
    upper_dist = gamma_dist(a=alpha + 1.0, scale=1.0 / alpha)
    partial = np.concatenate(([0.0], upper_dist.cdf(cuts), [1.0]))
    rates = (partial[1:] - partial[:-1]) * k
    rates = rates / rates.mean()
    probs = np.full(k, 1.0 / k)
    return RateCategories(rates, probs)


def invariant_plus_gamma(
    alpha: float, p_invariant: float, n_categories: int = 4
) -> RateCategories:
    """Γ + I mixture: a point mass of invariant sites plus discrete Γ.

    The Γ category rates are scaled by ``1/(1 − p_inv)`` so the overall
    mean rate remains 1 (branch lengths keep their substitutions-per-site
    meaning).
    """
    if not 0.0 <= p_invariant < 1.0:
        raise ValueError("p_invariant must be in [0, 1)")
    base = discrete_gamma(alpha, n_categories)
    rates = np.concatenate(([0.0], base.rates / (1.0 - p_invariant)))
    probs = np.concatenate(([p_invariant], base.probabilities * (1.0 - p_invariant)))
    return RateCategories(rates, probs)


def draw_site_rates(
    categories: RateCategories,
    n_sites: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one rate multiplier per site from a category mixture.

    The sampling counterpart of likelihood-side rate mixtures: feed the
    result to :func:`repro.data.simulate.simulate_alignment` via
    ``site_rates`` so simulated data carries the heterogeneity the
    analysis model assumes.
    """
    if n_sites < 1:
        raise ValueError("need at least one site")
    picks = rng.choice(
        categories.n_categories, size=n_sites, p=categories.probabilities
    )
    return categories.rates[picks]
