"""Amino-acid substitution models (s = 20).

The paper benchmarks nucleotide-sized states but notes amino-acid and
codon models are "often even more computationally intensive" (§II-A) —
the per-operation arithmetic grows with ``s²``, shifting the device
saturation point. Two models are provided:

* :class:`Poisson` — equal exchangeabilities and frequencies, the exact
  20-state analogue of JC69. All entries are analytic, so it doubles as a
  test oracle.
* :class:`AminoAcidModel` — an arbitrary empirical-style model from a
  user-supplied exchangeability matrix and frequencies (the shape of
  WAG/LG/JTT, whose published constants we do not embed; see
  :func:`synthetic_empirical` for a deterministic stand-in with realistic
  heterogeneity).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.alphabet import AMINO_ACID
from .ratematrix import SubstitutionModel

__all__ = ["AminoAcidModel", "Poisson", "synthetic_empirical"]


class AminoAcidModel(SubstitutionModel):
    """A reversible 20-state model from explicit parameters.

    Parameters
    ----------
    exchangeabilities:
        Symmetric ``(20, 20)`` matrix of non-negative exchangeabilities.
    frequencies:
        20 stationary frequencies; defaults to equal.
    """

    def __init__(
        self,
        exchangeabilities: np.ndarray,
        frequencies: Optional[Sequence[float]] = None,
        name: str = "AA",
    ) -> None:
        freqs = (
            np.full(20, 1 / 20.0)
            if frequencies is None
            else np.asarray(frequencies, dtype=np.float64)
        )
        super().__init__(name, AMINO_ACID, np.asarray(exchangeabilities), freqs)


class Poisson(AminoAcidModel):
    """The Poisson model: every amino-acid exchange equally likely."""

    def __init__(self) -> None:
        r = np.ones((20, 20))
        np.fill_diagonal(r, 0.0)
        super().__init__(r, None, name="Poisson")


def synthetic_empirical(seed: int = 0) -> AminoAcidModel:
    """A deterministic WAG/LG-shaped stand-in model.

    Published empirical matrices (WAG, LG, JTT) are copyrighted tables of
    190 fitted constants; rather than risk mis-transcribing them we
    generate a reproducible matrix with the same *statistical* character:
    log-normal exchangeabilities spanning ~3 orders of magnitude and
    Dirichlet frequencies concentrated like observed proteome
    compositions. Every structural property the engine relies on
    (reversibility, normalisation, 20 states) is identical to a real
    empirical model.
    """
    rng = np.random.default_rng(seed)
    r = np.zeros((20, 20))
    upper = np.triu_indices(20, k=1)
    r[upper] = rng.lognormal(mean=0.0, sigma=1.5, size=len(upper[0]))
    r = r + r.T
    freqs = rng.dirichlet(np.full(20, 10.0))
    return AminoAcidModel(r, freqs, name=f"SyntheticEmpirical(seed={seed})")
