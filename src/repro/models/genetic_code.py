"""The standard genetic code and the 61-state codon alphabet.

The codon model of :mod:`repro.models.codon` needs to know which of the 64
codons are stop codons (excluded from the state space, leaving 61 *sense*
codons for the standard code), which pairs of codons differ at exactly one
position, and whether a one-step substitution is synonymous.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from ..data.alphabet import Alphabet

__all__ = [
    "STANDARD_CODE",
    "STOP",
    "sense_codons",
    "codon_alphabet",
    "translate",
    "is_transition",
]

STOP = "*"

_BASES = "TCAG"
_AMINO_BY_BLOCK = (
    # The canonical TCAG-ordered translation string for the standard code.
    "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG"
)

#: Standard genetic code: codon (DNA alphabet, e.g. "ATG") -> one-letter
#: amino acid, with ``*`` for stop codons.
STANDARD_CODE: Dict[str, str] = {}
_i = 0
for _b1 in _BASES:
    for _b2 in _BASES:
        for _b3 in _BASES:
            STANDARD_CODE[_b1 + _b2 + _b3] = _AMINO_BY_BLOCK[_i]
            _i += 1
del _i, _b1, _b2, _b3


def translate(codon: str) -> str:
    """One-letter amino acid for a codon (``*`` for stop).

    Accepts T or U; case-insensitive.
    """
    key = codon.upper().replace("U", "T")
    try:
        return STANDARD_CODE[key]
    except KeyError:
        raise KeyError(f"not a codon: {codon!r}") from None


@lru_cache(maxsize=1)
def sense_codons() -> Tuple[str, ...]:
    """The 61 sense codons of the standard code, in alphabetical order."""
    return tuple(sorted(c for c, aa in STANDARD_CODE.items() if aa != STOP))


@lru_cache(maxsize=1)
def codon_alphabet() -> Alphabet:
    """A 61-state alphabet whose symbols are codon triplets."""
    return Alphabet("codon", sense_codons(), unknown="???")


_PURINES = frozenset("AG")
_PYRIMIDINES = frozenset("CT")


def is_transition(base_a: str, base_b: str) -> bool:
    """True when the single-base change ``a → b`` is a transition."""
    pair = {base_a, base_b}
    return pair <= _PURINES or pair <= _PYRIMIDINES
