"""Nucleotide substitution models (s = 4).

The classic reversible DNA model hierarchy, each a special case of GTR:

========  ==========================  ===========================
Model     Exchangeabilities           Frequencies
========  ==========================  ===========================
JC69      all equal                   equal
K80       transition/transversion κ   equal
F81       all equal                   free
HKY85     transition/transversion κ   free
TN93      two transition rates        free
GTR       six free rates              free
========  ==========================  ===========================

State order is ``A, C, G, T`` (matching :data:`repro.data.alphabet.DNA`
and BEAGLE). Transitions are A↔G and C↔T.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.alphabet import DNA
from .ratematrix import SubstitutionModel

__all__ = ["JC69", "K80", "F81", "HKY85", "TN93", "GTR", "random_gtr"]

_A, _C, _G, _T = 0, 1, 2, 3


def _exchange_from_six(rates: Sequence[float]) -> np.ndarray:
    """Build the symmetric 4×4 exchangeability matrix from GTR's six rates.

    Rate order follows the usual convention:
    ``(AC, AG, AT, CG, CT, GT)``.
    """
    ac, ag, at, cg, ct, gt = (float(x) for x in rates)
    r = np.zeros((4, 4))
    r[_A, _C] = r[_C, _A] = ac
    r[_A, _G] = r[_G, _A] = ag
    r[_A, _T] = r[_T, _A] = at
    r[_C, _G] = r[_G, _C] = cg
    r[_C, _T] = r[_T, _C] = ct
    r[_G, _T] = r[_T, _G] = gt
    return r


def _validate_freqs(frequencies: Optional[Sequence[float]]) -> np.ndarray:
    if frequencies is None:
        return np.full(4, 0.25)
    pi = np.asarray(frequencies, dtype=np.float64)
    if pi.shape != (4,):
        raise ValueError("nucleotide models need exactly 4 frequencies")
    return pi


class GTR(SubstitutionModel):
    """General time-reversible model with six exchangeabilities.

    Parameters
    ----------
    rates:
        ``(AC, AG, AT, CG, CT, GT)``, any positive scale (only ratios
        matter after normalisation).
    frequencies:
        ``(π_A, π_C, π_G, π_T)``; defaults to equal.
    """

    def __init__(
        self,
        rates: Sequence[float] = (1, 1, 1, 1, 1, 1),
        frequencies: Optional[Sequence[float]] = None,
        name: str = "GTR",
    ) -> None:
        rates = tuple(float(x) for x in rates)
        if len(rates) != 6:
            raise ValueError("GTR needs six exchangeability rates")
        if any(x <= 0 for x in rates):
            raise ValueError("GTR rates must be positive")
        self.rates = rates
        super().__init__(name, DNA, _exchange_from_six(rates), _validate_freqs(frequencies))


class JC69(GTR):
    """Jukes–Cantor 1969: equal rates, equal frequencies."""

    def __init__(self) -> None:
        super().__init__((1, 1, 1, 1, 1, 1), None, name="JC69")


class F81(GTR):
    """Felsenstein 1981: equal exchangeabilities, free frequencies."""

    def __init__(self, frequencies: Sequence[float]) -> None:
        super().__init__((1, 1, 1, 1, 1, 1), frequencies, name="F81")


class K80(GTR):
    """Kimura 1980: transition/transversion ratio κ, equal frequencies."""

    def __init__(self, kappa: float = 2.0) -> None:
        if kappa <= 0:
            raise ValueError("kappa must be positive")
        self.kappa = float(kappa)
        super().__init__((1, kappa, 1, 1, kappa, 1), None, name="K80")


class HKY85(GTR):
    """Hasegawa–Kishino–Yano 1985: κ plus free frequencies."""

    def __init__(self, kappa: float = 2.0, frequencies: Optional[Sequence[float]] = None) -> None:
        if kappa <= 0:
            raise ValueError("kappa must be positive")
        self.kappa = float(kappa)
        super().__init__((1, kappa, 1, 1, kappa, 1), frequencies, name="HKY85")


class TN93(GTR):
    """Tamura–Nei 1993: separate purine/pyrimidine transition rates."""

    def __init__(
        self,
        kappa_purine: float = 2.0,
        kappa_pyrimidine: float = 2.0,
        frequencies: Optional[Sequence[float]] = None,
    ) -> None:
        if kappa_purine <= 0 or kappa_pyrimidine <= 0:
            raise ValueError("kappa parameters must be positive")
        self.kappa_purine = float(kappa_purine)
        self.kappa_pyrimidine = float(kappa_pyrimidine)
        super().__init__(
            (1, kappa_purine, 1, 1, kappa_pyrimidine, 1),
            frequencies,
            name="TN93",
        )


def random_gtr(rng: np.random.Generator) -> GTR:
    """A random GTR model, used by ``synthetictest``-style benchmarks.

    Exchangeabilities are log-uniform in roughly [0.3, 3] and frequencies
    Dirichlet(5,5,5,5), giving realistic but well-conditioned matrices.
    """
    rates = np.exp(rng.uniform(np.log(0.3), np.log(3.0), size=6))
    freqs = rng.dirichlet(np.full(4, 5.0))
    return GTR(rates.tolist(), freqs.tolist(), name="GTR(random)")
