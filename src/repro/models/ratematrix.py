"""Reversible rate-matrix construction and the model base class.

Every model in this package is a *general time-reversible* (GTR-family)
process: off-diagonal rates factor as ``q_ij = r_ij · π_j`` with a
symmetric exchangeability matrix ``r`` and stationary frequencies ``π``.
Time reversibility is what licenses the paper's entire approach — the
likelihood of a tree under such a model is invariant to root placement
(Felsenstein's pulley principle), so the tree may be rerooted freely to
maximise concurrency (§V).
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

import numpy as np

from ..data.alphabet import Alphabet
from .eigen import EigenDecomposition, decompose_reversible, transition_matrices

__all__ = [
    "build_reversible_q",
    "normalize_rate",
    "SubstitutionModel",
]


def build_reversible_q(
    exchangeabilities: np.ndarray,
    frequencies: np.ndarray,
    *,
    normalize: bool = True,
) -> np.ndarray:
    """Construct ``Q`` from exchangeabilities and frequencies.

    Parameters
    ----------
    exchangeabilities:
        Symmetric non-negative ``(s, s)`` matrix ``r`` (diagonal ignored).
    frequencies:
        Stationary distribution ``π`` (positive, sums to 1 after
        renormalisation here).
    normalize:
        Rescale so the expected substitution rate at stationarity,
        ``-Σ_i π_i q_ii``, equals 1 — the convention that makes branch
        lengths read as expected substitutions per site.
    """
    r = np.asarray(exchangeabilities, dtype=np.float64)
    pi = np.asarray(frequencies, dtype=np.float64)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise ValueError("exchangeabilities must be square")
    if np.max(np.abs(r - r.T)) > 1e-12 * max(1.0, np.max(np.abs(r))):
        raise ValueError("exchangeabilities must be symmetric")
    if np.any(r < 0):
        raise ValueError("exchangeabilities must be non-negative")
    if pi.shape != (r.shape[0],):
        raise ValueError("frequencies length must match matrix size")
    if np.any(pi <= 0):
        raise ValueError("frequencies must be strictly positive")
    pi = pi / pi.sum()

    Q = r * pi[None, :]
    np.fill_diagonal(Q, 0.0)
    Q[np.diag_indices_from(Q)] = -Q.sum(axis=1)
    if normalize:
        Q = normalize_rate(Q, pi)
    return Q


def normalize_rate(Q: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
    """Scale ``Q`` so the stationary substitution rate is exactly 1."""
    pi = np.asarray(frequencies, dtype=np.float64)
    mu = -float(np.dot(pi, np.diag(Q)))
    if mu <= 0:
        raise ValueError("rate matrix has non-positive total rate")
    return Q / mu


class SubstitutionModel:
    """A reversible substitution model over a fixed alphabet.

    Concrete models (JC69, HKY85, GTR, Poisson, GY94 …) construct the
    exchangeabilities/frequencies and delegate everything else here:
    eigendecomposition, single and batched transition matrices, and the
    reversibility checks the engine relies on.

    Parameters
    ----------
    name:
        Display name, e.g. ``"HKY85"``.
    alphabet:
        The state alphabet; ``alphabet.n_states`` fixes ``s``.
    exchangeabilities, frequencies:
        Parameters of the reversible factorisation ``q_ij = r_ij π_j``.
    """

    def __init__(
        self,
        name: str,
        alphabet: Alphabet,
        exchangeabilities: np.ndarray,
        frequencies: Sequence[float],
    ) -> None:
        self.name = name
        self.alphabet = alphabet
        pi = np.asarray(frequencies, dtype=np.float64)
        if pi.shape != (alphabet.n_states,):
            raise ValueError(
                f"{name}: expected {alphabet.n_states} frequencies, got {pi.shape}"
            )
        self._frequencies = pi / pi.sum()
        self._Q = build_reversible_q(exchangeabilities, self._frequencies)

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.alphabet.n_states

    @property
    def frequencies(self) -> np.ndarray:
        """Stationary distribution ``π`` (copy)."""
        return self._frequencies.copy()

    @property
    def rate_matrix(self) -> np.ndarray:
        """Normalised rate matrix ``Q`` (copy)."""
        return self._Q.copy()

    @cached_property
    def eigen(self) -> EigenDecomposition:
        """Cached eigendecomposition used for all ``P(t)`` requests."""
        return decompose_reversible(self._Q, self._frequencies)

    # ------------------------------------------------------------------
    def transition_matrix(self, t: float) -> np.ndarray:
        """``P(t) = exp(Qt)`` for one branch length."""
        return transition_matrices(self.eigen, [float(t)])[0]

    def transition_matrices(self, times: Sequence[float]) -> np.ndarray:
        """Batched ``P(t)`` for many branch lengths at once."""
        return transition_matrices(self.eigen, times)

    def is_reversible(self, tolerance: float = 1e-10) -> bool:
        """Verify detailed balance ``π_i q_ij == π_j q_ji`` numerically."""
        flux = self._frequencies[:, None] * self._Q
        return bool(np.max(np.abs(flux - flux.T)) <= tolerance)

    def expected_rate(self) -> float:
        """Expected substitutions per unit time at stationarity (≈ 1)."""
        return -float(np.dot(self._frequencies, np.diag(self._Q)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} s={self.n_states}>"
