"""Eigendecomposition-based transition probabilities.

For a time-reversible rate matrix ``Q`` (i.e. ``π_i q_ij = π_j q_ji``) the
similarity transform ``S = diag(√π) Q diag(1/√π)`` is symmetric, so its
eigendecomposition is numerically stable (``scipy.linalg.eigh``) and gives

    P(t) = exp(Qt) = U · diag(exp(λ t)) · U⁻¹,
    U = diag(1/√π) V,   U⁻¹ = Vᵀ diag(√π),

with ``V`` the orthonormal eigenvectors of ``S``. This is exactly the
decomposition BEAGLE's ``setEigenDecomposition`` consumes, which is why the
engine (:mod:`repro.beagle`) accepts ``(U, U⁻¹, λ)`` triples rather than
raw rate matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.linalg

__all__ = [
    "EigenDecomposition",
    "decompose_reversible",
    "transition_matrices",
    "transition_derivatives",
]


@dataclass(frozen=True)
class EigenDecomposition:
    """``Q = U · diag(values) · U⁻¹`` for a reversible rate matrix.

    Attributes
    ----------
    values:
        Eigenvalues ``λ`` (all ≤ 0 up to round-off; the zero eigenvalue
        corresponds to the stationary distribution).
    vectors:
        ``U`` — right eigenvectors as columns.
    inverse_vectors:
        ``U⁻¹``.
    """

    values: np.ndarray
    vectors: np.ndarray
    inverse_vectors: np.ndarray

    @property
    def n_states(self) -> int:
        return self.values.shape[0]


def decompose_reversible(Q: np.ndarray, frequencies: np.ndarray) -> EigenDecomposition:
    """Stable eigendecomposition of a reversible rate matrix.

    Parameters
    ----------
    Q:
        ``(s, s)`` rate matrix with zero row sums satisfying detailed
        balance with respect to ``frequencies``.
    frequencies:
        Stationary distribution ``π`` (strictly positive).

    Raises
    ------
    ValueError
        If ``Q`` is not reversible with respect to ``frequencies`` (the
        symmetrised matrix would not be symmetric, silently corrupting
        transition probabilities).
    """
    Q = np.asarray(Q, dtype=np.float64)
    pi = np.asarray(frequencies, dtype=np.float64)
    if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
        raise ValueError("Q must be square")
    if pi.shape != (Q.shape[0],) or np.any(pi <= 0):
        raise ValueError("frequencies must be strictly positive, one per state")

    sqrt_pi = np.sqrt(pi)
    S = Q * (sqrt_pi[:, None] / sqrt_pi[None, :])
    asymmetry = np.max(np.abs(S - S.T))
    scale = max(1.0, np.max(np.abs(S)))
    if asymmetry > 1e-8 * scale:
        raise ValueError(
            f"rate matrix is not reversible w.r.t. the given frequencies "
            f"(asymmetry {asymmetry:.3e})"
        )
    S = (S + S.T) / 2.0
    values, V = scipy.linalg.eigh(S)
    U = V / sqrt_pi[:, None]
    U_inv = V.T * sqrt_pi[None, :]
    return EigenDecomposition(values=values, vectors=U, inverse_vectors=U_inv)


def transition_matrices(
    eigen: EigenDecomposition, times: Sequence[float]
) -> np.ndarray:
    """Batched ``P(t) = U · diag(exp(λ t)) · U⁻¹`` for many branch lengths.

    The batch is computed with one broadcast multiply and one stacked
    ``matmul`` — the vectorised form of BEAGLE's
    ``updateTransitionMatrices`` — so requesting all branches of a tree at
    once costs a single BLAS call.

    Returns
    -------
    ndarray
        ``(len(times), s, s)`` stochastic matrices. Tiny negative entries
        from round-off are clipped to 0.
    """
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise ValueError("times must be one-dimensional")
    if np.any(t < 0):
        raise ValueError("branch lengths must be non-negative")
    # exp_lambda_t: (k, s); scale columns of U once per time.
    exp_lt = np.exp(np.outer(t, eigen.values))
    scaled = eigen.vectors[None, :, :] * exp_lt[:, None, :]
    P = scaled @ eigen.inverse_vectors
    np.clip(P, 0.0, None, out=P)
    return P


def transition_derivatives(
    eigen: EigenDecomposition, times: Sequence[float], order: int = 1
) -> np.ndarray:
    """Batched derivatives ``d^k P(t) / dt^k = U · diag(λ^k e^{λt}) · U⁻¹``.

    Used by derivative-based branch-length optimisation (BEAGLE's
    ``calculateEdgeLogLikelihoods`` with derivative buffers). ``order`` 1
    gives ``Q·P(t)``, order 2 gives ``Q²·P(t)``.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise ValueError("times must be one-dimensional")
    if np.any(t < 0):
        raise ValueError("branch lengths must be non-negative")
    factor = eigen.values**order
    scaled_exp = factor[None, :] * np.exp(np.outer(t, eigen.values))
    scaled = eigen.vectors[None, :, :] * scaled_exp[:, None, :]
    return scaled @ eigen.inverse_vectors
