"""Codon substitution models (s = 61).

Implements the Goldman–Yang (1994) / Muse–Gaut style codon process over
the 61 sense codons of the standard genetic code. One-step rates:

* 0 for codon pairs differing at more than one position (instantaneous
  double changes excluded),
* ``κ`` multiplier when the single-base change is a transition,
* ``ω`` multiplier when the change is non-synonymous,
* times the target codon's stationary frequency (GTR factorisation), so
  the process is time-reversible and rerooting-safe like every other model
  in the library.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .genetic_code import codon_alphabet, is_transition, sense_codons, translate
from .ratematrix import SubstitutionModel

__all__ = ["GY94", "codon_frequencies_f1x4"]


def _codon_exchangeabilities(kappa: float, omega: float) -> np.ndarray:
    codons = sense_codons()
    s = len(codons)
    r = np.zeros((s, s))
    for i in range(s):
        for j in range(i + 1, s):
            a, b = codons[i], codons[j]
            diffs = [(x, y) for x, y in zip(a, b) if x != y]
            if len(diffs) != 1:
                continue
            rate = 1.0
            if is_transition(*diffs[0]):
                rate *= kappa
            if translate(a) != translate(b):
                rate *= omega
            r[i, j] = r[j, i] = rate
    return r


def codon_frequencies_f1x4(base_frequencies: Sequence[float]) -> np.ndarray:
    """F1x4 codon frequencies: product of per-base frequencies, renormalised.

    Parameters
    ----------
    base_frequencies:
        ``(π_A, π_C, π_G, π_T)`` as in the nucleotide models.
    """
    pi = np.asarray(base_frequencies, dtype=np.float64)
    if pi.shape != (4,):
        raise ValueError("need 4 base frequencies")
    if np.any(pi <= 0):
        raise ValueError("base frequencies must be positive")
    pi = pi / pi.sum()
    base_index = {"A": 0, "C": 1, "G": 2, "T": 3}
    freqs = np.array(
        [pi[base_index[c[0]]] * pi[base_index[c[1]]] * pi[base_index[c[2]]] for c in sense_codons()]
    )
    return freqs / freqs.sum()


class GY94(SubstitutionModel):
    """Goldman–Yang codon model with transition bias κ and dN/dS ω.

    Parameters
    ----------
    kappa:
        Transition/transversion rate ratio (> 0).
    omega:
        Non-synonymous/synonymous rate ratio (> 0); ω < 1 purifying
        selection, ω > 1 positive selection.
    codon_freqs:
        Stationary codon frequencies (61 values); defaults to equal. Use
        :func:`codon_frequencies_f1x4` to build them from base
        composition.
    """

    def __init__(
        self,
        kappa: float = 2.0,
        omega: float = 0.2,
        codon_freqs: Optional[Sequence[float]] = None,
    ) -> None:
        if kappa <= 0 or omega <= 0:
            raise ValueError("kappa and omega must be positive")
        self.kappa = float(kappa)
        self.omega = float(omega)
        alphabet = codon_alphabet()
        freqs = (
            np.full(alphabet.n_states, 1.0 / alphabet.n_states)
            if codon_freqs is None
            else np.asarray(codon_freqs, dtype=np.float64)
        )
        super().__init__(
            f"GY94(kappa={kappa:g}, omega={omega:g})",
            alphabet,
            _codon_exchangeabilities(self.kappa, self.omega),
            freqs,
        )
