"""Substitution-model substrate: reversible models over DNA/AA/codon states."""

from .eigen import EigenDecomposition, decompose_reversible, transition_matrices
from .ratematrix import SubstitutionModel, build_reversible_q, normalize_rate
from .nucleotide import F81, GTR, HKY85, JC69, K80, TN93, random_gtr
from .amino import AminoAcidModel, Poisson, synthetic_empirical
from .codon import GY94, codon_frequencies_f1x4
from .genetic_code import (
    STANDARD_CODE,
    STOP,
    codon_alphabet,
    is_transition,
    sense_codons,
    translate,
)
from .siterates import (
    draw_site_rates,
    RateCategories,
    discrete_gamma,
    invariant_plus_gamma,
    single_rate,
)

__all__ = [
    "EigenDecomposition",
    "decompose_reversible",
    "transition_matrices",
    "SubstitutionModel",
    "build_reversible_q",
    "normalize_rate",
    "JC69",
    "K80",
    "F81",
    "HKY85",
    "TN93",
    "GTR",
    "random_gtr",
    "AminoAcidModel",
    "Poisson",
    "synthetic_empirical",
    "GY94",
    "codon_frequencies_f1x4",
    "STANDARD_CODE",
    "STOP",
    "codon_alphabet",
    "sense_codons",
    "translate",
    "is_transition",
    "RateCategories",
    "discrete_gamma",
    "invariant_plus_gamma",
    "single_rate",
    "draw_site_rates",
]
