"""Observability: tracing, metrics, and profiling across the likelihood stack.

The paper's whole argument is about *where time goes* — operation-set
counts, kernel-launch overhead, concurrency exposed by rerooting. This
subpackage lets the reproduction observe its own execution the same way:

* :mod:`repro.obs.tracing` — nestable :class:`Span`\\ s with monotonic
  timestamps and structured attributes, collected thread-safely and
  exported as Chrome/Perfetto ``trace_event`` JSON, so a whole
  ``synthetictest`` run renders as a timeline of plans, kernel batches,
  reroot searches, pool jobs and MCMC steps;
* :mod:`repro.obs.metrics` — a typed registry of counters, gauges and
  fixed-bucket histograms (operations evaluated, sets per plan, reroot
  wins, pool reroutes/shed/deadline-exceeded, retry attempts, checkpoint
  writes, …), exportable as Prometheus text and JSON;
* :mod:`repro.obs.profile` — per-phase timers (transition matrices,
  partials, scaling, root reduction) fed by both the measuring CPU
  engine and the modelled GPU simulator.

The three are bundled behind one :class:`Recorder` facade. The global
recorder defaults to :data:`NULL_RECORDER` — every hook in the hot path
then resolves to a shared no-op object, so the disabled path costs one
global read and one method call, no allocation. Enable collection with
:func:`set_recorder` (or the :func:`recording` context manager), or from
the CLI with ``synthetictest --trace/--metrics/--profile``.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional, Union

from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metrics,
)
from .profile import NULL_PHASE, NullProfiler, PhaseProfiler, PhaseStats
from .tracing import (
    NULL_SPAN,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullProfiler",
    "NullRecorder",
    "NullTracer",
    "NULL_RECORDER",
    "PhaseProfiler",
    "PhaseStats",
    "Recorder",
    "Span",
    "SpanRecord",
    "Tracer",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "get_recorder",
    "set_recorder",
    "recording",
    "record_backend_info",
    "record_pool_stats",
    "record_serve_stats",
    "validate_metrics",
    "validate_trace",
]


class Recorder:
    """One handle bundling a tracer, a metrics registry and a profiler.

    Instrumentation sites call :meth:`span`, :meth:`count`,
    :meth:`observe` and :meth:`phase`; each delegates to the matching
    component. ``enabled`` is True so sites may skip attribute-dict
    construction entirely when the global recorder is the null one.
    """

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        declare_standard_metrics(self.metrics)

    # -- tracing --------------------------------------------------------
    def span(self, name: str, category: str = "repro", **attributes: Any):
        """A nestable timed span (context manager); see :class:`Tracer`."""
        return self.tracer.span(name, category, **attributes)

    # -- metrics --------------------------------------------------------
    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        """Increment counter ``name`` (registered on first use)."""
        self.metrics.counter(name).inc(amount)

    def gauge_set(self, name: str, value: Union[int, float]) -> None:
        """Set gauge ``name`` (registered on first use)."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Record ``value`` in histogram ``name`` (registered on first use)."""
        self.metrics.histogram(name).observe(value)

    # -- profiling ------------------------------------------------------
    def phase(self, name: str):
        """Per-phase timer (context manager); see :class:`PhaseProfiler`."""
        return self.profiler.phase(name)

    def add_phase_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit modelled seconds to a phase (GPU-simulator entry point)."""
        self.profiler.add(name, seconds, calls)


class NullRecorder(Recorder):
    """The default, disabled recorder: every hook is a shared no-op.

    ``enabled`` is False so hot paths can skip even the keyword-argument
    packing of ``span(...)`` calls; the methods still exist (and still
    cost only a call) for sites that do not bother to check.
    """

    enabled = False

    def __init__(self) -> None:
        self.tracer = NullTracer()
        self.metrics = MetricsRegistry()
        self.profiler = NullProfiler()

    def span(self, name: str, category: str = "repro", **attributes: Any):
        """The shared no-op span."""
        return NULL_SPAN

    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        """No-op."""

    def gauge_set(self, name: str, value: Union[int, float]) -> None:
        """No-op."""

    def observe(self, name: str, value: Union[int, float]) -> None:
        """No-op."""

    def phase(self, name: str):
        """The shared no-op phase timer."""
        return NULL_PHASE

    def add_phase_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        """No-op."""


#: The process-wide disabled recorder (identity-compared in tests).
NULL_RECORDER = NullRecorder()

_recorder: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The process-global recorder (the null recorder unless enabled)."""
    return _recorder


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` globally (``None`` restores the null
    recorder); returns the previous one so callers can restore it."""
    global _recorder
    previous = _recorder
    _recorder = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextlib.contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Context manager installing a recorder and restoring the previous
    one on exit — the test-friendly way to scope observation::

        with recording() as obs:
            execute_plan(instance, plan)
        obs.tracer.write("trace.json")
    """
    active = recorder if recorder is not None else Recorder()
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)


def declare_standard_metrics(registry: MetricsRegistry) -> None:
    """Pre-register the stack's standard instruments with help strings.

    Registration is idempotent, so sites that lazily re-request the same
    names get these instances back.
    """
    registry.counter(
        "repro_operations_evaluated_total",
        "Partial-likelihood operations executed by the engine",
    )
    registry.counter(
        "repro_kernel_launches_total",
        "Kernel launches (batched sets and per-op fallbacks)",
    )
    registry.counter(
        "repro_plans_built_total", "Execution plans constructed by make_plan"
    )
    registry.histogram(
        "repro_sets_per_plan",
        "Operation sets (kernel launches) per built plan",
        buckets=DEFAULT_COUNT_BUCKETS,
    )
    registry.histogram(
        "repro_operations_per_set",
        "Operations batched into each executed set",
        buckets=DEFAULT_COUNT_BUCKETS,
    )
    registry.counter(
        "repro_matrix_cache_hits_total",
        "Transition matrices served from the LRU matrix cache",
    )
    registry.counter(
        "repro_matrix_cache_misses_total",
        "Transition matrices computed on an LRU matrix-cache miss",
    )
    registry.counter(
        "repro_schedule_validations_total",
        "Operation-order validations run on built schedules",
    )
    registry.counter(
        "repro_schedule_violations_total",
        "Cross-set dependency violations found by schedule validation",
    )
    registry.counter(
        "repro_gradient_plans_built_total",
        "One-sweep gradient plans constructed by make_gradient_plan",
    )
    registry.counter(
        "repro_gradient_sweeps_total",
        "Post-order + pre-order gradient sweeps executed",
    )
    registry.counter(
        "repro_gradient_edges_total",
        "Branch derivative triples produced by all_branch_derivatives",
    )
    registry.counter(
        "repro_hmc_trajectories_total", "HMC leapfrog trajectories simulated"
    )
    registry.counter(
        "repro_reroot_searches_total", "Optimal-reroot searches run"
    )
    registry.counter(
        "repro_reroot_wins_total",
        "Reroot searches that reduced the operation-set count",
    )
    registry.counter(
        "repro_retry_attempts_total",
        "Launch re-attempts performed by ResilientInstance",
    )
    registry.counter(
        "repro_degraded_sets_total",
        "Batched sets degraded to per-operation launches",
    )
    registry.counter(
        "repro_rescues_total", "Rescaling escalations that recovered a run"
    )
    registry.counter(
        "repro_checkpoint_writes_total", "MCMC checkpoints written"
    )
    registry.counter("repro_mcmc_steps_total", "MCMC proposals evaluated")
    registry.counter("repro_mcmc_accepts_total", "MCMC proposals accepted")
    registry.counter(
        "repro_pool_jobs_completed_total", "Pool jobs finishing ok"
    )
    registry.counter(
        "repro_pool_reroutes_total", "Pool jobs rerouted after a worker failure"
    )
    registry.counter(
        "repro_pool_shed_total",
        "Pool jobs shed (admission control or queue-expired deadline)",
    )
    registry.counter(
        "repro_pool_deadline_exceeded_total",
        "Pool jobs whose deadline expired mid-execution",
    )
    registry.counter(
        "repro_pool_rescued_total", "Pool jobs re-run after a failed audit"
    )
    registry.counter(
        "repro_shard_evaluations_total", "Sharded likelihood evaluations"
    )
    registry.counter(
        "repro_shard_jobs_total", "Shard jobs submitted to the pool"
    )
    registry.counter(
        "repro_shard_retries_total", "Shard attempts retried after a failure"
    )
    registry.counter(
        "repro_shard_speculative_wasted_total",
        "Speculative duplicate shard results discarded (loser copies)",
    )
    registry.counter(
        "repro_shard_stragglers_total",
        "Shard jobs cancelled by straggler deadlines",
    )
    registry.counter(
        "repro_shard_escalations_total",
        "Shards escalated to scaled arithmetic after underflow",
    )
    registry.counter(
        "repro_shard_disagreements_total",
        "Speculative shard copies that returned different bits",
    )
    registry.counter(
        "repro_shard_resumed_total",
        "Shards restored from a checkpoint instead of recomputed",
    )
    registry.counter(
        "repro_shard_checkpoint_writes_total", "Shard checkpoints written"
    )
    registry.counter(
        "repro_serve_served_total", "Server requests completed with a value"
    )
    registry.counter(
        "repro_serve_rejected_total",
        "Server submissions refused by admission control",
    )
    registry.counter(
        "repro_serve_shed_total",
        "Server requests shed (queue-expired or brownout)",
    )
    registry.counter(
        "repro_serve_failed_total",
        "Server requests exhausting their uncoalesced retry",
    )
    registry.counter(
        "repro_serve_retries_total",
        "Server requests re-dispatched uncoalesced after a batch failure",
    )
    registry.counter(
        "repro_serve_late_total",
        "Served values delivered after their request deadline",
    )
    registry.counter(
        "repro_serve_verify_failures_total",
        "Served values that failed the serial bit-identity gate",
    )


def record_backend_info(info, registry: Optional[MetricsRegistry] = None) -> None:
    """Export the active kernel backend as a Prometheus info gauge.

    Sets ``repro_backend_info{name=...,kind=...,parity=...}`` to 1 — the
    info-metric idiom: the value carries nothing, the labels identify
    which :class:`~repro.beagle.backend.BackendInfo` the engine resolved.
    Instances record it at construction, so a metrics export proves which
    backend a run *actually* used (the CI backend-matrix job greps it).
    """
    registry = registry if registry is not None else get_recorder().metrics
    registry.gauge(
        "repro_backend_info",
        "Active kernel backend (1 per selected backend)",
        labels={
            "name": info.name,
            "kind": info.kind,
            "parity": info.parity,
        },
    ).set(1)


def record_pool_stats(stats, registry: Optional[MetricsRegistry] = None) -> None:
    """Export a :class:`~repro.exec.pool.PoolStats` ledger as gauges.

    Every ledger field becomes a ``repro_pool_*`` gauge, and —
    crucially — the number of violated ledger identities is exported as
    ``repro_pool_ledger_imbalances``: an imbalance stops being a silent
    internal invariant and becomes an alertable metric. The identities
    themselves are documented by ``PoolStats.explain()``.
    """
    registry = registry if registry is not None else get_recorder().metrics
    fields = {
        "workers": stats.workers,
        "offered": stats.offered,
        "rejected": stats.rejected,
        "completed": stats.completed,
        "shed": stats.shed,
        "surfaced": stats.surfaced,
        "surfaced_failures": stats.surfaced_failures,
        "failures": stats.failures,
        "rerouted": stats.rerouted,
        "rescued": stats.rescued,
        "probes": stats.probes,
        "probe_failures": stats.probe_failures,
        "probe_errors": stats.probe_errors,
        "evicted_workers": len(stats.evicted),
        "worker_errors": stats.faults.errors,
    }
    for field, value in fields.items():
        registry.gauge(
            f"repro_pool_{field}",
            f"PoolStats.{field} at the last export",
        ).set(value)
    registry.gauge(
        "repro_pool_ledger_imbalances",
        "Violated PoolStats ledger identities (0 = ledger closes)",
    ).set(len(stats.imbalances()))


def record_serve_stats(ledger, registry: Optional[MetricsRegistry] = None) -> None:
    """Export a :class:`~repro.serve.ledger.ServeLedger` as gauges.

    Mirrors :func:`record_pool_stats`: every aggregate bucket becomes a
    ``repro_serve_*`` gauge, rejection reasons and shed causes export as
    labeled gauges, and the violated-identity count lands in
    ``repro_serve_ledger_imbalances`` so a drifting request ledger is an
    alertable signal, not a silent invariant.
    """
    registry = registry if registry is not None else get_recorder().metrics
    fields = {
        "offered": ledger.offered,
        "rejected": ledger.rejected,
        "admitted": ledger.admitted,
        "served": ledger.served,
        "shed": ledger.shed,
        "failed": ledger.failed,
        "queued": ledger.queued,
        "in_flight": ledger.in_flight,
        "retried": ledger.retried,
        "late": ledger.late,
        "coalesced_launches": ledger.coalesced_launches,
        "coalesced_requests": ledger.coalesced_requests,
        "verified": ledger.verified,
        "verify_failures": ledger.verify_failures,
        "tenants": len(ledger.tenants),
    }
    for field, value in fields.items():
        registry.gauge(
            f"repro_serve_{field}",
            f"ServeLedger.{field} at the last export",
        ).set(value)
    for reason, count in sorted(ledger.rejected_by_reason.items()):
        registry.gauge(
            "repro_serve_rejected_by_reason",
            "Server rejections, by typed admission reason",
            labels={"reason": reason},
        ).set(count)
    for cause, count in sorted(ledger.shed_by_cause.items()):
        registry.gauge(
            "repro_serve_shed_by_cause",
            "Server sheds, by typed cause",
            labels={"cause": cause},
        ).set(count)
    registry.gauge(
        "repro_serve_ledger_imbalances",
        "Violated ServeLedger identities (0 = ledger closes)",
    ).set(len(ledger.imbalances()))
