"""Typed metric instruments: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named instruments and exports them two
ways: Prometheus text exposition (``to_prometheus``, with the format's
escaping rules for help strings and label values) and a plain JSON
document (``to_json``) that the CI observability job validates with
:func:`validate_metrics`.

Design points:

* instruments are **typed** — re-requesting a name returns the existing
  instrument, re-requesting it as a different type raises;
* labels are **static per instrument** (frozen at registration), which
  keeps the hot-path increment a plain ``+=`` under the instrument lock;
* histograms use **fixed upper-bound buckets** chosen at registration
  (cumulative counts, Prometheus ``le`` semantics: a value lands in the
  first bucket whose bound is ``>= value``, boundary values inclusive).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "escape_help",
    "escape_label_value",
    "validate_metrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Latency-style bucket bounds, in seconds.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-two bounds for size-like observations (operations per set,
#: sets per plan).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
)

LabelSet = Tuple[Tuple[str, str], ...]


def escape_help(text: str) -> str:
    r"""Escape a ``# HELP`` string: ``\`` -> ``\\``, newline -> ``\n``."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    r"""Escape a label value: ``\`` -> ``\\``, ``"`` -> ``\"``,
    newline -> ``\n`` (the exposition-format quoting rules)."""
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus sample formatting (integers without a trailing .0)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared core: a name, frozen labels, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count (events, operations, retries)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, LabelSet, float]]:
        """Exposition samples: one line for a counter."""
        return [(self.name, self.labels, self.value)]


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, workers alive)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Adjust the gauge down by ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, LabelSet, float]]:
        """Exposition samples: one line for a gauge."""
        return [(self.name, self.labels, self.value)]


class Histogram(_Instrument):
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    ``observe(v)`` increments every bucket whose upper bound is
    ``>= v`` (cumulative counts; the implicit ``+Inf`` bucket counts
    everything), plus the running ``sum`` and ``count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: LabelSet,
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help, labels)
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * len(bounds)
        self._inf = 0
        self._sum = 0.0

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        v = float(value)
        with self._lock:
            self._sum += v
            self._inf += 1
            for i, bound in enumerate(self.bounds):
                if v <= bound:
                    self._counts[i] += 1
                    break

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return self._inf

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            total = 0
            for bound, count in zip(self.bounds, self._counts):
                total += count
                out.append((bound, total))
            out.append((math.inf, self._inf))
            return out

    def samples(self) -> List[Tuple[str, LabelSet, float]]:
        """Exposition samples: ``_bucket`` series plus ``_sum``/``_count``."""
        lines: List[Tuple[str, LabelSet, float]] = []
        for bound, cumulative in self.cumulative_counts():
            le = "+Inf" if bound == math.inf else _format_value(bound)
            lines.append(
                (
                    f"{self.name}_bucket",
                    self.labels + (("le", le),),
                    float(cumulative),
                )
            )
        lines.append((f"{self.name}_sum", self.labels, self.sum))
        lines.append((f"{self.name}_count", self.labels, float(self.count)))
        return lines


class MetricsRegistry:
    """Typed, thread-safe home of every instrument in a run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelSet], _Instrument] = {}
        self._helps: Dict[str, str] = {}
        self._kinds: Dict[str, str] = {}

    # -- registration ---------------------------------------------------
    def _get(
        self,
        cls,
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]],
        **extra: Any,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_set: LabelSet = tuple(sorted((labels or {}).items()))
        for key, _ in label_set:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != cls.kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, requested {cls.kind}"
                )
            instrument = self._instruments.get((name, label_set))
            if instrument is None:
                instrument = cls(name, help, label_set, **extra)
                self._instruments[(name, label_set)] = instrument
                self._kinds[name] = cls.kind
                if help or name not in self._helps:
                    self._helps[name] = help
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` with fixed ``buckets``."""
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- inspection -----------------------------------------------------
    def instruments(self) -> List[_Instrument]:
        """Snapshot of every registered instrument."""
        with self._lock:
            return list(self._instruments.values())

    def names(self) -> List[str]:
        """Sorted distinct metric names."""
        with self._lock:
            return sorted(self._kinds)

    # -- export ---------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            by_name: Dict[str, List[_Instrument]] = {}
            for (name, _), instrument in sorted(self._instruments.items()):
                by_name.setdefault(name, []).append(instrument)
            helps = dict(self._helps)
            kinds = dict(self._kinds)
        lines: List[str] = []
        for name in sorted(by_name):
            if helps.get(name):
                lines.append(f"# HELP {name} {escape_help(helps[name])}")
            lines.append(f"# TYPE {name} {kinds[name]}")
            for instrument in by_name[name]:
                for sample, labels, value in instrument.samples():
                    lines.append(
                        f"{sample}{_label_suffix(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> Dict[str, Any]:
        """JSON document: ``{"metrics": [{name, type, help, labels, ...}]}``."""
        out: List[Dict[str, Any]] = []
        for instrument in self.instruments():
            entry: Dict[str, Any] = {
                "name": instrument.name,
                "type": instrument.kind,
                "help": instrument.help,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = [
                    {"le": "+Inf" if bound == math.inf else bound,
                     "count": cumulative}
                    for bound, cumulative in instrument.cumulative_counts()
                ]
            else:
                entry["value"] = instrument.value  # type: ignore[attr-defined]
            out.append(entry)
        out.sort(key=lambda e: (e["name"], sorted(e["labels"].items())))
        return {"metrics": out}

    def write_json(self, path) -> None:
        """Serialise :meth:`to_json` to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=1)

    def write_prometheus(self, path) -> None:
        """Serialise :meth:`to_prometheus` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_prometheus())


def validate_metrics(document: Any) -> List[str]:
    """Check a loaded metrics-JSON document against the export schema.

    Returns human-readable problems (empty = valid): top level must be
    ``{"metrics": [...]}``; every entry needs a valid name, a known
    type, a labels object, and either a numeric ``value`` or — for
    histograms — ``count``/``sum``/monotone cumulative ``buckets``
    ending at ``+Inf``.
    """
    problems: List[str] = []
    if not isinstance(document, dict) or "metrics" not in document:
        return ["top level must be an object with a 'metrics' array"]
    entries = document["metrics"]
    if not isinstance(entries, list):
        return ["'metrics' must be an array"]
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"metric {i}: not an object")
            continue
        name = entry.get("name")
        label = f"metric {i} ({name!r})"
        if not isinstance(name, str) or not _NAME_RE.match(name):
            problems.append(f"metric {i}: invalid name {name!r}")
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{label}: unknown type {kind!r}")
            continue
        if not isinstance(entry.get("labels"), dict):
            problems.append(f"{label}: 'labels' must be an object")
        if kind == "histogram":
            problems.extend(_validate_histogram(label, entry))
        elif not isinstance(entry.get("value"), (int, float)) or isinstance(
            entry.get("value"), bool
        ):
            problems.append(f"{label}: 'value' must be a number")
    return problems


def _validate_histogram(label: str, entry: Mapping[str, Any]) -> Iterable[str]:
    problems: List[str] = []
    buckets = entry.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        return [f"{label}: histogram needs a non-empty 'buckets' array"]
    previous = -1
    for j, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            problems.append(f"{label}: bucket {j} needs 'le' and 'count'")
            continue
        count = bucket["count"]
        if not isinstance(count, int) or count < previous:
            problems.append(
                f"{label}: bucket counts must be non-decreasing integers"
            )
        else:
            previous = count
    if buckets and isinstance(buckets[-1], dict) and buckets[-1].get("le") != "+Inf":
        problems.append(f"{label}: last bucket must be '+Inf'")
    total = entry.get("count")
    if not isinstance(total, int):
        problems.append(f"{label}: histogram 'count' must be an integer")
    elif (
        isinstance(buckets[-1], dict)
        and isinstance(buckets[-1].get("count"), int)
        and buckets[-1]["count"] != total
    ):
        problems.append(f"{label}: '+Inf' bucket must equal 'count'")
    if not isinstance(entry.get("sum"), (int, float)):
        problems.append(f"{label}: histogram 'sum' must be a number")
    return problems
