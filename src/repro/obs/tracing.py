"""Nestable spans and Chrome/Perfetto ``trace_event`` export.

A :class:`Span` measures one timed region — a kernel batch, a reroot
search, a pool job, an MCMC step — with monotonic timestamps and
structured attributes. Spans nest per thread (a thread-local depth
stack), and a :class:`Tracer` collects finished spans thread-safely so a
multi-worker pool drain produces one coherent timeline.

The export format is the Chrome ``trace_event`` JSON that both
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
directly: each finished span becomes a complete-duration event
(``"ph": "X"``) with microsecond ``ts``/``dur`` relative to the tracer's
epoch, ``tid`` set to the recording thread, and the span attributes
under ``args``. :func:`validate_trace` checks a loaded document against
that schema — the same function the CI observability job runs on the
artefact ``synthetictest --trace`` emits.

The disabled path is :data:`NULL_SPAN` — a shared, stateless no-op
context manager — so instrumentation left in hot code costs one call
and no allocation when tracing is off.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "validate_trace",
]

Clock = Callable[[], float]

#: Synthetic process id used in exported events (one trace = one run).
TRACE_PID = 1


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, ready for export.

    Timestamps are microseconds relative to the owning tracer's epoch
    (monotonic clock), which is what the ``trace_event`` format wants.
    """

    name: str
    category: str
    start_us: float
    duration_us: float
    thread_id: int
    depth: int
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` dictionary for this span."""
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": TRACE_PID,
            "tid": self.thread_id,
            "args": {k: _jsonable(v) for k, v in self.attributes.items()},
        }


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value to something ``json`` can serialise."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class Span:
    """A timed region; use as a context manager or via explicit
    :meth:`start` / :meth:`finish` for non-lexical lifetimes."""

    __slots__ = ("_tracer", "name", "category", "attributes", "_start", "_done")

    def __init__(
        self, tracer: "Tracer", name: str, category: str, attributes: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attributes = attributes
        self._start: Optional[float] = None
        self._done = False

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one structured attribute."""
        self.attributes[key] = value

    def start(self) -> "Span":
        """Begin timing; called automatically by ``with``."""
        if self._start is not None:
            raise RuntimeError(f"span {self.name!r} started twice")
        self._start = self._tracer._enter()
        return self

    def finish(self) -> None:
        """Stop timing and hand the finished record to the tracer."""
        if self._start is None:
            raise RuntimeError(f"span {self.name!r} finished before starting")
        if self._done:
            raise RuntimeError(f"span {self.name!r} finished twice")
        self._done = True
        self._tracer._exit(self)

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.finish()
        return False


class _NullSpan:
    """Shared no-op span: the branch-cheap disabled path."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def start(self) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span every disabled recorder hands out.
NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span collector with a monotonic epoch.

    Every span's timestamps come from one ``clock`` (default
    ``time.perf_counter``) read relative to the tracer's construction,
    so timelines from different threads line up. Finished spans are
    appended under a lock; per-thread nesting depth is tracked with a
    ``threading.local`` stack so the exported records can be validated
    for balance.
    """

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._open = 0

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, category: str = "repro", **attributes: Any) -> Span:
        """Create a (not yet started) span; use it as a context manager."""
        return Span(self, name, category, dict(attributes))

    def _stack(self) -> List[float]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self) -> float:
        now = self._clock()
        self._stack().append(now)
        with self._lock:
            self._open += 1
        return now

    def _exit(self, span: Span) -> None:
        end = self._clock()
        stack = self._stack()
        stack.pop()
        depth = len(stack)
        assert span._start is not None
        record = SpanRecord(
            name=span.name,
            category=span.category,
            start_us=(span._start - self._epoch) * 1e6,
            duration_us=max((end - span._start) * 1e6, 0.0),
            thread_id=threading.get_ident(),
            depth=depth,
            attributes=span.attributes,
        )
        with self._lock:
            self._open -= 1
            self._records.append(record)

    # -- inspection -----------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Spans entered but not yet exited (0 when the trace is balanced)."""
        with self._lock:
            return self._open

    def records(self) -> List[SpanRecord]:
        """Snapshot of the finished spans (collection order)."""
        with self._lock:
            return list(self._records)

    def categories(self) -> List[str]:
        """Distinct span categories seen so far, sorted."""
        with self._lock:
            return sorted({r.category for r in self._records})

    def reset(self) -> None:
        """Drop every collected record (open spans keep their stacks)."""
        with self._lock:
            self._records = []

    # -- export ---------------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """The full trace as a Chrome ``trace_event`` document."""
        with self._lock:
            records = list(self._records)
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for tid in sorted({r.thread_id for r in records}):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": f"thread-{tid}"},
                }
            )
        events.extend(r.to_event() for r in sorted(records, key=lambda r: r.start_us))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: Union[str, "object"]) -> None:
        """Serialise :meth:`export` to ``path`` as JSON."""
        with open(path, "w") as handle:  # type: ignore[arg-type]
            json.dump(self.export(), handle, indent=1)


class NullTracer:
    """Tracer stand-in whose spans are the shared no-op singleton."""

    def span(self, name: str, category: str = "repro", **attributes: Any) -> _NullSpan:
        """Return the shared no-op span (no allocation)."""
        return NULL_SPAN

    @property
    def open_spans(self) -> int:
        """Always 0: nothing is ever recorded."""
        return 0

    def records(self) -> List[SpanRecord]:
        """Always empty."""
        return []

    def categories(self) -> List[str]:
        """Always empty."""
        return []

    def reset(self) -> None:
        """No-op."""

    def export(self) -> Dict[str, Any]:
        """An empty, still-loadable trace document."""
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the empty trace document."""
        with open(path, "w") as handle:
            json.dump(self.export(), handle, indent=1)


# ----------------------------------------------------------------------
# Schema validation (used by the tests and the CI observability job)
# ----------------------------------------------------------------------
def validate_trace(document: Any) -> List[str]:
    """Check a loaded trace document against the ``trace_event`` schema.

    Returns a list of human-readable problems; an empty list means the
    document is a well-formed trace:

    * top level is ``{"traceEvents": [...]}``;
    * every event is a dict with a string ``name`` and ``ph``;
    * complete events (``"ph": "X"``) carry finite, non-negative
      numeric ``ts`` and ``dur``, integer ``pid``/``tid``, and a dict
      ``args``;
    * per ``tid``, events sorted by ``ts`` nest properly: a span either
      fully contains or is disjoint from every other span on its thread
      (the balanced-bracket property of a timeline).
    """
    problems: List[str] = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["top level must be an object with a 'traceEvents' array"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    by_tid: Dict[Any, List[Dict[str, Any]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing string 'name'")
        ph = event.get("ph")
        if not isinstance(ph, str):
            problems.append(f"event {i}: missing string 'ph'")
            continue
        if ph != "X":
            continue  # metadata and instants carry no duration
        ok = True
        for key in ("ts", "dur"):
            value = value_or_none(event, key)
            if value is None or value < 0:
                problems.append(
                    f"event {i} ({event.get('name')!r}): "
                    f"'{key}' must be a non-negative number"
                )
                ok = False
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"event {i}: '{key}' must be an integer")
                ok = False
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"event {i}: 'args' must be an object")
            ok = False
        if ok:
            by_tid.setdefault(event["tid"], []).append(event)
    for tid, spans in by_tid.items():
        problems.extend(_check_nesting(tid, spans))
    return problems


def value_or_none(event: Dict[str, Any], key: str) -> Optional[float]:
    """Numeric value of ``event[key]``, or None when absent/non-finite."""
    value = event.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return float(value)


def _check_nesting(tid: Any, spans: List[Dict[str, Any]]) -> List[str]:
    """Balanced-bracket check: spans on one thread contain or avoid
    each other, never partially overlap."""
    problems: List[str] = []
    ordered = sorted(spans, key=lambda e: (e["ts"], -e["dur"]))
    stack: List[Dict[str, Any]] = []
    for event in ordered:
        start, end = event["ts"], event["ts"] + event["dur"]
        while stack and start >= stack[-1]["ts"] + stack[-1]["dur"]:
            stack.pop()
        if stack:
            parent_end = stack[-1]["ts"] + stack[-1]["dur"]
            if end > parent_end + 1e-6:
                problems.append(
                    f"tid {tid}: span {event['name']!r} "
                    f"[{start}, {end}] overlaps the end of enclosing "
                    f"{stack[-1]['name']!r} [{stack[-1]['ts']}, {parent_end}]"
                )
                continue
        stack.append(event)
    return problems
