"""Lightweight per-phase profiling hooks for the likelihood hot path.

The paper's accounting splits an evaluation into a handful of phases —
eigen-decomposition / transition matrices, partials kernels, rescaling,
root reduction — and argues about where the time goes.
:class:`PhaseProfiler` gives the reproduction the same split: the CPU
engine times phases with a monotonic clock (``phase(...)`` context
manager), while the GPU simulator *feeds modelled seconds* into the same
table (:meth:`PhaseProfiler.add`), so measured and modelled runs render
through one report.

The disabled path (:class:`NullProfiler`) hands out a shared no-op
context manager, keeping dormant hooks branch-cheap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["PhaseStats", "PhaseProfiler", "NullProfiler", "NULL_PHASE"]

Clock = Callable[[], float]

#: Canonical phase names used by the built-in instrumentation.
PHASE_MATRICES = "transition_matrices"
PHASE_PARTIALS = "partials"
PHASE_SCALING = "scaling"
PHASE_ROOT = "root_reduction"
#: Modelled (not measured) device time credited by the GPU simulator —
#: kept distinct from the measured phases so shares stay honest.
PHASE_MODELLED = "gpu_modelled"


@dataclass
class PhaseStats:
    """Accumulated time and call count of one phase."""

    name: str
    seconds: float = 0.0
    calls: int = 0

    @property
    def mean_seconds(self) -> float:
        """Average seconds per call (0 when never called)."""
        return self.seconds / self.calls if self.calls else 0.0


class _PhaseTimer:
    """Context manager measuring one phase entry."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = self._profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = self._profiler._clock() - self._start
        self._profiler.add(self._name, max(elapsed, 0.0))
        return False


class _NullPhase:
    """Shared no-op phase timer."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op timer every disabled profiler hands out.
NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Thread-safe accumulator of per-phase wall-clock (or modelled) time."""

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._phases: Dict[str, PhaseStats] = {}

    def phase(self, name: str) -> _PhaseTimer:
        """Context manager timing one entry of phase ``name``."""
        return _PhaseTimer(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate ``seconds`` into phase ``name`` directly.

        This is the entry point for *modelled* time: the GPU simulator
        credits its analytical launch costs here so simulated runs fill
        the same profile table as measured ones.
        """
        with self._lock:
            stats = self._phases.get(name)
            if stats is None:
                stats = self._phases[name] = PhaseStats(name)
            stats.seconds += seconds
            stats.calls += calls

    def stats(self) -> List[PhaseStats]:
        """Snapshot of every phase, slowest first."""
        with self._lock:
            return sorted(
                (PhaseStats(s.name, s.seconds, s.calls)
                 for s in self._phases.values()),
                key=lambda s: -s.seconds,
            )

    def total_seconds(self) -> float:
        """Sum of all phase times."""
        with self._lock:
            return sum(s.seconds for s in self._phases.values())

    def reset(self) -> None:
        """Forget every accumulated phase."""
        with self._lock:
            self._phases = {}

    def report(self) -> str:
        """Human-readable table: phase, calls, total ms, mean us, share."""
        stats = self.stats()
        if not stats:
            return "profile: no phases recorded"
        total = sum(s.seconds for s in stats) or 1.0
        lines = ["profile: phase                 calls   total ms   mean us  share"]
        for s in stats:
            lines.append(
                f"profile: {s.name:<20} {s.calls:6d} {s.seconds * 1e3:10.3f} "
                f"{s.mean_seconds * 1e6:9.2f} {s.seconds / total:6.1%}"
            )
        return "\n".join(lines)


class NullProfiler:
    """Profiler stand-in whose timers are the shared no-op singleton."""

    def phase(self, name: str) -> _NullPhase:
        """Return the shared no-op timer (no allocation)."""
        return NULL_PHASE

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """No-op."""

    def stats(self) -> List[PhaseStats]:
        """Always empty."""
        return []

    def total_seconds(self) -> float:
        """Always 0."""
        return 0.0

    def reset(self) -> None:
        """No-op."""

    def report(self) -> str:
        """The empty-profile message."""
        return "profile: no phases recorded"
