"""``python -m repro.obs`` — validate emitted observability artefacts.

The CI observability job runs ``synthetictest --trace/--metrics`` on a
small case and then checks the artefacts with this entry point::

    python -m repro.obs --trace out.json --require-categories plan,kernel
    python -m repro.obs --metrics metrics.json
    python -m repro.obs --trace out.json --metrics metrics.json

Exit status is nonzero when a file fails its schema, a required span
category is missing, or the trace holds no complete spans at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, TextIO

from .metrics import validate_metrics
from .tracing import validate_trace

__all__ = ["build_parser", "run", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the validator CLI."""
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Validate trace_event JSON and metrics JSON emitted "
        "by the observability layer.",
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="Chrome trace_event JSON to validate"
    )
    parser.add_argument(
        "--metrics", metavar="FILE", help="metrics JSON to validate"
    )
    parser.add_argument(
        "--require-categories",
        metavar="A,B,...",
        default=None,
        help="comma-separated span categories the trace must contain "
        "(e.g. plan,kernel,pool,reroot)",
    )
    return parser


def _load(path: str, out: TextIO):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {path}: {exc}", file=out)
        return None


def _check_trace(path: str, required: Optional[str], out: TextIO) -> int:
    document = _load(path, out)
    if document is None:
        return 1
    problems = validate_trace(document)
    spans = [
        e
        for e in document.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "X"
    ]
    if not spans:
        problems.append("trace contains no complete ('ph': 'X') spans")
    categories = sorted({e.get("cat") for e in spans if e.get("cat")})
    if required:
        missing = sorted(
            set(filter(None, required.split(","))) - set(categories)
        )
        if missing:
            problems.append(
                f"required span categories missing: {missing} "
                f"(present: {categories})"
            )
    for problem in problems:
        print(f"error: {path}: {problem}", file=out)
    if not problems:
        print(
            f"{path}: valid trace, {len(spans)} spans across "
            f"{len(categories)} categories ({', '.join(categories)})",
            file=out,
        )
    return 1 if problems else 0


def _check_metrics(path: str, out: TextIO) -> int:
    document = _load(path, out)
    if document is None:
        return 1
    problems = validate_metrics(document)
    for problem in problems:
        print(f"error: {path}: {problem}", file=out)
    if not problems:
        print(
            f"{path}: valid metrics export, "
            f"{len(document['metrics'])} series",
            file=out,
        )
    return 1 if problems else 0


def run(argv: Optional[List[str]] = None, out: Optional[TextIO] = None) -> int:
    """Run the validator; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if not args.trace and not args.metrics:
        print("error: nothing to validate (pass --trace and/or --metrics)", file=out)
        return 2
    status = 0
    if args.trace:
        status |= _check_trace(args.trace, args.require_categories, out)
    if args.metrics:
        status |= _check_metrics(args.metrics, out)
    return status


def main() -> None:  # pragma: no cover - console entry point
    """Console entry point."""
    raise SystemExit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
