#!/usr/bin/env python3
"""Quickstart: the paper's idea in thirty lines.

Build a worst-case (pectinate) tree, evaluate its likelihood serially and
concurrently, then reroot it for concurrency and watch the kernel-launch
count drop while the likelihood stays identical.

Run:  python examples/quickstart.py
"""

from repro import (
    HKY85,
    TreeLikelihood,
    pectinate_tree,
    simulated_speedup,
    speedup_pectinate_rerooted,
)
from repro.data import simulate_alignment

N_TAXA = 128
N_SITES = 512


def main() -> None:
    model = HKY85(kappa=2.0, frequencies=[0.3, 0.2, 0.2, 0.3])
    tree = pectinate_tree(N_TAXA, branch_length=0.1)
    alignment = simulate_alignment(tree, model, N_SITES, seed=42)

    serial = TreeLikelihood(tree, model, alignment, mode="serial")
    concurrent = TreeLikelihood(tree, model, alignment, mode="concurrent")
    rerooted = TreeLikelihood(tree, model, alignment, reroot="fast")

    print(f"{N_TAXA}-taxon pectinate tree, {N_SITES} site patterns (HKY85)\n")
    print(f"{'configuration':28s} {'launches':>9s} {'log-likelihood':>16s}")
    for name, ev in [
        ("serial (post-order)", serial),
        ("concurrent (greedy sets)", concurrent),
        ("concurrent + rerooted", rerooted),
    ]:
        print(f"{name:28s} {ev.n_launches:9d} {ev.log_likelihood():16.4f}")

    print()
    print(
        f"theoretical rerooted-pectinate speedup: "
        f"{speedup_pectinate_rerooted(N_TAXA):.2f}x"
    )
    print(
        f"modelled GP100 speedup after rerooting: "
        f"{simulated_speedup(rerooted.tree):.2f}x"
    )


if __name__ == "__main__":
    main()
