#!/usr/bin/env python3
"""Static plan analysis: catch a scheduling bug without executing it.

Build a valid concurrent execution plan, verify it clean, then corrupt
it the way real scheduler bugs do — reorder a dependent pair across a
set boundary, alias two destinations, drop a matrix update, share a
written buffer across streams, stale a cache key, forget half of an
undo — and show the analyzer pinpointing each hazard with buffer-level
diagnostics.

Run:  python examples/lint_plan.py
"""

from repro.analysis import audit_plan, seed_mutations, verify_plan
from repro.analysis.mutate import analyze_mutation
from repro.core import make_plan
from repro.trees import pectinate_tree


def main() -> None:
    tree = pectinate_tree(8, branch_length=0.1)
    plan = make_plan(tree, "concurrent")

    print("=== a valid plan ===")
    print(
        f"{tree.n_tips}-tip pectinate tree: {plan.n_operations} operations "
        f"in {plan.n_launches} sets"
    )
    report = verify_plan(plan)
    print(f"verifier: {report.format()}\n")

    print("=== schedule audit ===")
    print(audit_plan(plan).format())
    print()

    print("=== seeded corruptions ===")
    for mutation in seed_mutations(plan):
        broken = analyze_mutation(mutation)
        print(f"--- {mutation.kind}: {mutation.description}")
        for diagnostic in broken.errors[:2]:  # first two per corruption
            print(f"    {diagnostic.format()}")
        caught = {d.code for d in broken.errors} & mutation.expect_codes
        assert caught, f"analyzer missed {mutation.kind}"
    print("\nevery corruption was flagged before a single kernel launched")


if __name__ == "__main__":
    main()
