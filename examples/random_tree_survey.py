#!/usr/bin/env python3
"""Figures 4 & 5 in miniature: a random-tree rerooting survey.

Generates random 256-OTU trees the way the paper's ``synthetictest``
does, reroots each optimally, and reports the kernel-launch reduction
(Fig. 4) and the modelled GP100 throughput gain (Fig. 5).

Run:  python examples/random_tree_survey.py [n_trees]
"""

import sys

import numpy as np

from repro.bench import format_table
from repro.core import count_operation_sets, optimal_reroot_fast
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.trees import random_attachment_tree

N_TAXA = 256
DIMS = WorkloadDims(patterns=512, states=4)


def main() -> None:
    n_trees = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    device = SimulatedDevice(GP100)
    rows = []
    improvements = []
    for seed in range(1, n_trees + 1):
        tree = random_attachment_tree(N_TAXA, seed)
        rerooted = optimal_reroot_fast(tree).tree
        before = device.time_tree(tree, DIMS)
        after = device.time_tree(rerooted, DIMS)
        improvements.append(after.gflops / before.gflops)
        rows.append(
            {
                "seed": seed,
                "sets before": before.n_launches,
                "sets after": after.n_launches,
                "gflops before": f"{before.gflops:.1f}",
                "gflops after": f"{after.gflops:.1f}",
                "gain": f"{after.gflops / before.gflops:.2f}x",
            }
        )
    print(
        format_table(
            rows,
            title=f"Rerooting survey: {n_trees} random {N_TAXA}-OTU trees, "
            f"{DIMS.patterns} patterns",
        )
    )
    print(
        f"mean throughput improvement: {float(np.mean(improvements)):.2f}x "
        f"(paper, GP100 measured: 1.26x)"
    )


if __name__ == "__main__":
    main()
