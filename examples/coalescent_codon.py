#!/usr/bin/env python3
"""Microevolution scenario: a coalescent genealogy under a codon model.

The paper's §II frames population genetics (gene genealogies of alleles)
as the second domain sharing the likelihood bottleneck. This example
simulates a Kingman-coalescent genealogy of sampled alleles, evolves a
protein-coding locus along it under the Goldman–Yang codon model (61
states — the expensive end of the paper's ``s`` axis), fits branch
lengths by maximum likelihood, and shows how rerooting changes the
launch economics for a 61-state workload.

Run:  python examples/coalescent_codon.py
"""

from repro.core import count_operation_sets, optimal_reroot_fast
from repro.data import simulate_alignment
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.inference import TreeLikelihood, optimize_branch_lengths
from repro.models import GY94, codon_frequencies_f1x4

N_ALLELES = 24
N_CODONS = 80


def main() -> None:
    from repro.trees import coalescent_tree

    genealogy = coalescent_tree(N_ALLELES, 3, theta=0.8)
    model = GY94(
        kappa=2.0,
        omega=0.15,  # purifying selection
        codon_freqs=codon_frequencies_f1x4([0.3, 0.2, 0.2, 0.3]),
    )
    alignment = simulate_alignment(genealogy, model, N_CODONS, seed=4)
    print(
        f"coalescent genealogy: {N_ALLELES} alleles, {N_CODONS} codons "
        f"({model.n_states}-state GY94, omega={model.omega})"
    )

    evaluator = TreeLikelihood(genealogy, model, alignment)
    print(f"log-likelihood at true branch lengths: {evaluator.log_likelihood():.3f}")

    # Perturb branch lengths and re-fit by ML.
    perturbed = genealogy.copy()
    for edge in perturbed.edges():
        edge.length *= 3.0
    fit = optimize_branch_lengths(
        TreeLikelihood(perturbed, model, alignment), max_sweeps=2
    )
    print(
        f"branch-length ML fit: {fit.initial_log_likelihood:.3f} -> "
        f"{fit.log_likelihood:.3f} ({fit.evaluations} evaluations)"
    )

    # Concurrency economics at s = 61: each operation is ~230x the work of
    # a nucleotide operation, so the device saturates at smaller sets.
    rerooted = optimal_reroot_fast(genealogy).tree
    dims = WorkloadDims(patterns=N_CODONS, states=model.n_states)
    device = SimulatedDevice(GP100)
    print(
        f"\noperation sets: {count_operation_sets(genealogy)} "
        f"-> {count_operation_sets(rerooted)} after rerooting"
    )
    print(
        f"modelled speedup vs serial: {device.speedup(genealogy, dims):.2f}x "
        f"original, {device.speedup(rerooted, dims):.2f}x rerooted"
    )


if __name__ == "__main__":
    main()
