#!/usr/bin/env python3
"""Application-level demo: Bayesian phylogenetics with rerooted scheduling.

The macroevolution scenario from the paper's introduction: infer the
phylogeny of a set of species from DNA sequences with MCMC. The same
chain is run with (a) serial likelihood evaluation, (b) concurrent
operation sets, and (c) concurrent sets on a concurrency-rerooted
starting tree, and the kernel-launch economics are compared — the §VIII
argument that kernel-level gains reach whole inferences.

Run:  python examples/bayesian_inference.py
"""

import numpy as np

from repro.data import simulate_alignment
from repro.gpu import GP100
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import HKY85, discrete_gamma
from repro.trees import pectinate_tree, robinson_foulds, yule_tree

N_TAXA = 48
N_SITES = 256
ITERATIONS = 150


def main() -> None:
    # The "true" species tree and simulated sequence data.
    truth = yule_tree(N_TAXA, 7, random_lengths=True)
    model = HKY85(kappa=2.5, frequencies=[0.3, 0.2, 0.2, 0.3])
    rates = discrete_gamma(0.5, 4)
    alignment = simulate_alignment(truth, model, N_SITES, seed=11)

    # Deliberately bad starting topology: a pectinate comb.
    start = pectinate_tree(N_TAXA, names=truth.tip_names(), branch_length=0.1)

    print(f"Bayesian inference: {N_TAXA} taxa, {N_SITES} sites, HKY85+G4")
    print(f"starting tree RF distance from truth: {robinson_foulds(start, truth)}\n")

    results = {}
    for label, mode, reroot in [
        ("serial", "serial", "none"),
        ("concurrent", "concurrent", "none"),
        ("concurrent+reroot", "concurrent", "fast"),
    ]:
        evaluator = TreeLikelihood(
            start, model, alignment, rates=rates, mode=mode, reroot=reroot
        )
        results[label] = run_mcmc(evaluator, ITERATIONS, seed=12, device=GP100)

    base = results["serial"].device_seconds
    print(f"{'configuration':20s} {'launches':>9s} {'device s':>10s} {'speedup':>8s} {'best logL':>12s}")
    for label, result in results.items():
        print(
            f"{label:20s} {result.kernel_launches:9d} "
            f"{result.device_seconds:10.4f} {base / result.device_seconds:8.2f} "
            f"{result.best_log_likelihood:12.2f}"
        )

    best = results["concurrent+reroot"]
    print(
        f"\nchain: {best.acceptance_rate:.0%} acceptance, "
        f"best tree RF from truth: {robinson_foulds(best.best_tree, truth)} "
        f"(start was {robinson_foulds(start, truth)})"
    )


if __name__ == "__main__":
    main()
