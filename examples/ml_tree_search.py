#!/usr/bin/env python3
"""Maximum-likelihood tree search with launch accounting.

The GARLI-style workflow the paper's §II-A profiles (">94% of run time in
likelihood calculations"): greedy NNI hill-climbing from a bad starting
topology, recovering the true tree, while counting the likelihood-kernel
launches that concurrent + rerooted scheduling saves. The run finishes by
writing the result to NEXUS, the MrBayes-ecosystem interchange format.

Run:  python examples/ml_tree_search.py
"""

import tempfile
from pathlib import Path

from repro.data import format_nexus_trees, simulate_alignment
from repro.inference import TreeLikelihood, ml_search
from repro.models import HKY85
from repro.trees import pectinate_tree, robinson_foulds, yule_tree

N_TAXA = 14
N_SITES = 600


def main() -> None:
    truth = yule_tree(N_TAXA, 21, random_lengths=True)
    model = HKY85(kappa=2.0, frequencies=[0.3, 0.2, 0.2, 0.3])
    alignment = simulate_alignment(truth, model, N_SITES, seed=22)
    start = pectinate_tree(N_TAXA, names=truth.tip_names(), branch_length=0.1)

    print(f"ML search: {N_TAXA} taxa, {N_SITES} sites (HKY85)")
    print(f"start: pectinate comb, RF distance from truth = "
          f"{robinson_foulds(start, truth)}\n")

    results = {}
    for label, reroot in [("plain scheduling", "none"), ("rerooted scheduling", "fast")]:
        evaluator = TreeLikelihood(start, model, alignment, reroot=reroot)
        results[label] = ml_search(evaluator, max_rounds=25)

    print(f"{'configuration':22s} {'logL':>12s} {'RF(truth)':>10s} "
          f"{'rounds':>7s} {'evals':>6s} {'launches':>9s}")
    for label, result in results.items():
        print(
            f"{label:22s} {result.log_likelihood:12.2f} "
            f"{robinson_foulds(result.tree, truth):10d} "
            f"{result.rounds:7d} {result.evaluations:6d} "
            f"{result.kernel_launches:9d}"
        )

    best = results["rerooted scheduling"]
    plain = results["plain scheduling"]
    print(
        f"\nsame optimum, {plain.kernel_launches / best.kernel_launches:.2f}x "
        f"fewer launches with rerooted scheduling"
    )

    out = Path(tempfile.gettempdir()) / "ml_search_result.nex"
    out.write_text(format_nexus_trees({"ml_tree": best.tree, "truth": truth}))
    print(f"trees written to {out} (NEXUS)")


if __name__ == "__main__":
    main()
