#!/usr/bin/env python3
"""Resilience demo: faulty device survived, killed chain resumed.

Two failure modes long phylogenetic runs actually hit, and the two
mechanisms in ``repro.exec`` that absorb them:

1. **Transient device faults.** A likelihood evaluation is executed
   through a :class:`FaultInjector` (deterministic, seeded fault stream)
   wrapped in a :class:`ResilientInstance` (retry + degradation +
   rescaling escalation). Despite injected launch failures the final
   log-likelihood equals the fault-free value *exactly*, and the
   ``FaultStats`` ledger accounts for every injected fault.

2. **A killed process.** An MCMC chain checkpointing every few
   iterations is killed mid-run (simulated with an evaluator whose
   device "dies" after a fixed number of kernel calls). Re-running the
   identical command with ``resume=True`` picks the chain up from the
   last checkpoint and finishes **bit-identically** to an uninterrupted
   run — same trace, same best tree, same acceptance counts.

Run:  python examples/fault_tolerant_mcmc.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import create_instance, execute_plan, make_plan
from repro.data import compress, simulate_alignment
from repro.exec import (
    DeviceFault,
    FaultInjector,
    FaultSpec,
    ResilientInstance,
    RetryPolicy,
)
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import JC69
from repro.trees import yule_tree

N_TAXA = 16
N_SITES = 128
ITERATIONS = 60
CHECKPOINT_EVERY = 10
DIE_AFTER = 35  # kernel calls before the simulated crash


def demo_fault_injection(tree, model, alignment) -> None:
    print("=" * 64)
    print("1. Surviving transient device faults")
    print("=" * 64)

    plan = make_plan(tree, "concurrent")
    patterns = compress(alignment)

    clean = execute_plan(create_instance(tree, model, patterns), plan)
    print(f"fault-free log-likelihood : {clean:.10f}")

    # Half of all launch attempts fail; the injection stream is seeded,
    # so the run is exactly reproducible.
    faulty = FaultInjector(
        create_instance(tree, model, patterns),
        FaultSpec(rate=0.5, seed=2018),
    )
    engine = ResilientInstance(faulty, RetryPolicy(max_retries=8))
    recovered = engine.execute(plan)
    print(f"log-likelihood under faults: {recovered:.10f}")
    print(f"bit-identical recovery     : {recovered == clean}")
    print()
    print(engine.fault_stats.format())
    print()


def dying_device(die_after: int):
    """Patch evaluation so the "device" is lost after N kernel calls.

    Stands in for the real-world kill (preempted node, OOM reaper,
    Ctrl-C) that checkpointing exists to survive. Returns a restore
    callable.
    """
    healthy = TreeLikelihood.log_likelihood
    calls = {"n": 0}

    def flaky(self) -> float:
        calls["n"] += 1
        if calls["n"] > die_after:
            raise DeviceFault("device lost (simulated kill)")
        return healthy(self)

    TreeLikelihood.log_likelihood = flaky
    return lambda: setattr(TreeLikelihood, "log_likelihood", healthy)


def demo_checkpoint_resume(tree, model, alignment) -> None:
    print("=" * 64)
    print("2. Kill-and-resume MCMC (bit-identical)")
    print("=" * 64)

    def evaluator():
        return TreeLikelihood(tree, model, alignment)

    # Reference: the same chain, never interrupted.
    full = run_mcmc(evaluator(), ITERATIONS, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chain.ckpt.json"

        # First attempt: the device dies mid-run. The periodic
        # checkpoint (atomic write: tmp file + rename) survives.
        restore = dying_device(DIE_AFTER)
        try:
            run_mcmc(
                evaluator(),
                ITERATIONS,
                seed=7,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_path=path,
            )
        except DeviceFault as fault:
            print(f"run killed mid-chain       : {fault}")
        finally:
            restore()
        print(f"checkpoint survives        : {path.exists()}")

        # Second attempt: identical command + resume=True. The chain
        # restarts from the checkpointed iteration, RNG state and tree.
        resumed = run_mcmc(
            evaluator(),
            ITERATIONS,
            seed=7,
            checkpoint_every=CHECKPOINT_EVERY,
            checkpoint_path=path,
            resume=True,
        )

    print(f"resumed from iteration     : {resumed.resumed_at}")
    print(f"trace identical            : {resumed.log_likelihoods == full.log_likelihoods}")
    print(f"best logL identical        : {resumed.best_log_likelihood == full.best_log_likelihood}")
    print(f"accepted moves identical   : {resumed.accepted == full.accepted}")
    print(
        "final logL                 : "
        f"{resumed.log_likelihoods[-1]:.6f} (full run: {full.log_likelihoods[-1]:.6f})"
    )


def main() -> None:
    tree = yule_tree(N_TAXA, np.random.default_rng(3), random_lengths=True)
    model = JC69()
    alignment = simulate_alignment(tree, model, N_SITES, seed=3)

    demo_fault_injection(tree, model, alignment)
    demo_checkpoint_resume(tree, model, alignment)


if __name__ == "__main__":
    main()
