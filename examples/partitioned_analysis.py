#!/usr/bin/env python3
"""Partitioned analysis: per-codon-position models plus rerooting.

A realistic protein-coding workflow (paper §IV-A): split the alignment by
codon position, give each position its own model (third positions evolve
fastest), and evaluate all partitions on one shared tree. Partition
concurrency and rerooting compose — the launch count drops from
``partitions × (n−1)`` to the rerooted tree's set count.

Run:  python examples/partitioned_analysis.py
"""

from repro.data import simulate_alignment
from repro.gpu import GP100
from repro.models import HKY85, discrete_gamma
from repro.partition import PartitionedLikelihood, partition_by_codon_position
from repro.trees import pectinate_tree

N_TAXA = 48
N_CODONS = 120


def main() -> None:
    tree = pectinate_tree(N_TAXA, branch_length=0.12)
    # Simulate with one model; analyse with per-position models (the
    # usual model-fit improvement workflow).
    alignment = simulate_alignment(tree, HKY85(2.0), N_CODONS * 3, seed=21)
    models = [HKY85(2.0), HKY85(2.0), HKY85(4.0)]
    rates = [discrete_gamma(1.0, 4), discrete_gamma(0.5, 4), discrete_gamma(2.0, 4)]
    dataset = partition_by_codon_position(alignment, models, rates=rates)

    plain = PartitionedLikelihood(tree, dataset)
    rerooted = PartitionedLikelihood(tree, dataset, reroot="fast")

    print(f"{N_TAXA} taxa, {N_CODONS * 3} sites split by codon position (HKY+G4)\n")
    for partition, ll in zip(dataset, rerooted.partition_log_likelihoods()):
        print(
            f"  {partition.name}: {partition.n_patterns:4d} patterns, "
            f"logL = {ll:12.3f}"
        )
    print(f"  joint log-likelihood: {rerooted.log_likelihood():.3f}\n")

    print(f"{'configuration':42s} {'launches':>9s} {'model time':>11s}")
    for label, pl, concurrent in [
        ("sequential partitions, original rooting", plain, False),
        ("concurrent partitions, original rooting", plain, True),
        ("concurrent partitions + rerooted tree", rerooted, True),
    ]:
        timing = pl.device_timing(GP100, concurrent_partitions=concurrent)
        print(f"{label:42s} {timing.n_launches:9d} {timing.seconds * 1e6:9.1f} us")


if __name__ == "__main__":
    main()
