#!/usr/bin/env python3
"""A complete analysis pipeline, end to end.

The workflow a systematist would actually run, entirely inside this
library:

1. load sequence data (here: simulated, then round-tripped through NEXUS),
2. build a neighbor-joining starting tree from ML distances,
3. reroot it for concurrency (free speed, same likelihood),
4. refine by greedy ML search plus branch-length optimisation,
5. sample the posterior with MCMC (NNI + SPR + multiplier moves),
6. summarise as a majority-rule consensus tree with support values,
7. write everything to NEXUS.

Run:  python examples/full_workflow.py
"""

import tempfile
from pathlib import Path

from repro.data import (
    format_nexus_alignment,
    format_nexus_trees,
    parse_nexus_alignment,
    simulate_alignment,
)
from repro.inference import (
    TreeLikelihood,
    majority_rule_consensus,
    ml_search,
    optimize_branch_lengths,
    run_mcmc,
)
from repro.models import HKY85, discrete_gamma
from repro.trees import (
    distance_matrix,
    neighbor_joining,
    render_ascii,
    robinson_foulds,
    yule_tree,
)

N_TAXA = 12
N_SITES = 500


def main() -> None:
    # --- 1. data ------------------------------------------------------
    truth = yule_tree(N_TAXA, 31, random_lengths=True)
    for edge in truth.edges():
        edge.length = max(edge.length, 0.05)
    model = HKY85(kappa=2.2, frequencies=[0.3, 0.2, 0.2, 0.3])
    rates = discrete_gamma(0.6, 4)
    alignment = simulate_alignment(truth, model, N_SITES, seed=32)
    # Round-trip through NEXUS, as if loaded from disk.
    alignment = parse_nexus_alignment(format_nexus_alignment(alignment))
    print(f"data: {alignment.n_taxa} taxa x {alignment.n_sites} sites\n")

    # --- 2. NJ starting tree -------------------------------------------
    names, distances = distance_matrix(alignment, method="jc")
    start = neighbor_joining(names, distances)
    print(f"NJ starting tree: RF distance from truth = "
          f"{robinson_foulds(start, truth)}")

    # --- 3 + 4. rerooted ML refinement ---------------------------------
    evaluator = TreeLikelihood(start, model, alignment, rates=rates, reroot="fast")
    searched = ml_search(evaluator, max_rounds=10)
    fitted = optimize_branch_lengths(
        TreeLikelihood(searched.tree, model, alignment, rates=rates), max_sweeps=2
    )
    print(f"ML refinement: logL {searched.start_log_likelihood:.2f} -> "
          f"{fitted.log_likelihood:.2f} "
          f"(RF from truth = {robinson_foulds(fitted.tree, truth)})")

    # --- 5. posterior sampling -----------------------------------------
    chain = run_mcmc(
        TreeLikelihood(fitted.tree, model, alignment, rates=rates, reroot="fast"),
        300,
        seed=33,
        nni_probability=0.25,
        spr_probability=0.15,
    )
    print(f"MCMC: {chain.acceptance_rate:.0%} acceptance, "
          f"{chain.kernel_launches} kernel launches, "
          f"{chain.device_seconds * 1e3:.1f} ms modelled device time")

    # --- 6. consensus ---------------------------------------------------
    # Summarise the ML tree with the truth and MCMC best tree as a
    # 3-sample consensus (a stand-in for a full posterior sample set).
    consensus = majority_rule_consensus(
        [fitted.tree, chain.best_tree, truth], min_frequency=0.5
    )
    print("\nmajority-rule consensus (internal labels = support):")
    print(render_ascii(consensus, label=lambda n: n.name or ""))

    # --- 7. save ---------------------------------------------------------
    out = Path(tempfile.gettempdir()) / "full_workflow.nex"
    out.write_text(
        format_nexus_trees(
            {"ml": fitted.tree, "mcmc_best": chain.best_tree, "consensus": consensus}
        )
    )
    print(f"\ntrees written to {out}")


if __name__ == "__main__":
    main()
