#!/usr/bin/env python3
"""Observability tour: trace, meter and profile a real inference run.

``repro.obs`` is off by default — the likelihood stack talks to a null
recorder that costs one predicted branch per instrumented site. This
example installs a real :class:`~repro.obs.Recorder` around a short MCMC
run (plus a rerooted plan build and a greedy search round), then shows
the three signals it collected:

1. **Trace** — every kernel launch, plan execution, rerooting search and
   MCMC step as a nestable span, written as Chrome ``trace_event`` JSON
   under the system temp dir. Drop ``traced_run_trace.json`` on
   https://ui.perfetto.dev to see the run as a timeline.
2. **Metrics** — counters/gauges/histograms (operations evaluated, sets
   per plan, MCMC accepts, ...) printed in Prometheus text exposition
   format.
3. **Profile** — per-phase wall-clock shares inside the CPU engine:
   transition matrices vs partials vs scaling vs root reduction.

Run:  python examples/traced_run.py
"""

import tempfile
from pathlib import Path

from repro.data import simulate_alignment
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import HKY85
from repro.obs import recording
from repro.trees import yule_tree

# Written under the system temp dir so running the example never drops
# an artifact into the working tree (CI greps for stray *_trace.json).
TRACE_PATH = Path(tempfile.gettempdir()) / "traced_run_trace.json"


def main() -> None:
    model = HKY85(kappa=2.0, frequencies=[0.3, 0.2, 0.2, 0.3])
    tree = yule_tree(24, 7)
    alignment = simulate_alignment(tree, model, 128, seed=7)

    with recording() as obs:
        evaluator = TreeLikelihood(
            tree, model, alignment, mode="concurrent", reroot="fast"
        )
        result = run_mcmc(evaluator, 40, seed=11, device=None)

    print("=== run ===")
    print(f"best log-likelihood : {result.best_log_likelihood:.4f}")
    print(f"acceptance rate     : {result.acceptance_rate:.2f}")
    print(f"kernel launches     : {result.kernel_launches}")

    obs.tracer.write(TRACE_PATH)
    categories = ", ".join(sorted(obs.tracer.categories()))
    print("\n=== trace ===")
    print(f"{len(obs.tracer.records())} spans ({categories})")
    print(f"written to {TRACE_PATH} — open in https://ui.perfetto.dev")

    print("\n=== metrics (Prometheus text format, excerpt) ===")
    exposition = obs.metrics.to_prometheus()
    shown = 0
    for line in exposition.splitlines():
        if line.startswith("repro_") and not line.startswith("repro_pool"):
            print(line)
            shown += 1
            if shown >= 12:
                break

    print("\n=== per-phase profile ===")
    print(obs.profiler.report())


if __name__ == "__main__":
    main()
