#!/usr/bin/env python3
"""Figure 2/3 walkthrough: traversals, operation sets, and rerooting.

Reproduces the paper's illustrative figures in the terminal: the 8-OTU
balanced tree (Fig. 2) needs only ceil(log2 8) = 3 concurrent operation
sets; the pectinate tree (Fig. 3) needs all 7 — until it is optimally
rerooted, when ceil(8/2) = 4 suffice. Trees are drawn with each internal
node annotated ``[k]`` = the index of the concurrent set (kernel launch)
that computes it.

Run:  python examples/pectinate_rerooting.py
"""

from repro.core import (
    count_operation_sets,
    optimal_reroot_exhaustive,
    optimal_reroot_fast,
    set_index_by_node,
)
from repro.trees import balanced_tree, pectinate_tree, render_schedule

NAMES = list("abcdefgh")


def show(title: str, tree) -> None:
    print(f"--- {title} ---")
    print(f"operations: {tree.n_tips - 1}   concurrent sets: {count_operation_sets(tree)}")
    print(render_schedule(tree, set_index_by_node(tree)))
    print()


def main() -> None:
    balanced = balanced_tree(8, names=NAMES)
    show("Figure 2: balanced tree (8 OTUs)", balanced)

    pectinate = pectinate_tree(8, names=NAMES)
    show("Figure 3 upper: pectinate tree (fully serial)", pectinate)

    result = optimal_reroot_exhaustive(pectinate)
    show("Figure 3 lower: optimally rerooted pectinate tree", result.tree)
    print(
        f"exhaustive search evaluated {result.evaluated_rootings} rootings; "
        f"sets {result.original_operation_sets} -> {result.operation_sets}"
    )

    fast = optimal_reroot_fast(pectinate)
    print(
        f"O(n) DP finds the same optimum: {fast.operation_sets} sets "
        f"(examined every edge in one sweep)"
    )


if __name__ == "__main__":
    main()
