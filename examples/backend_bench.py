#!/usr/bin/env python3
"""Backends & resources: discover, race, and parity-check every backend.

The engine's kernels are pluggable (see ``docs/BACKENDS.md``). This
example walks the whole resource API in one run:

1. enumerate the registered backend resources (what
   ``python -m repro.beagle.resources`` prints),
2. evaluate the *same* plan on every backend and time it,
3. run the parity gate per backend and print the verdict next to the
   measured speedup.

Run:  python examples/backend_bench.py
"""

import time

import numpy as np

from repro.beagle import acquire, list_resources, parity_report
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.models import random_gtr
from repro.trees import balanced_tree

N_TAXA = 128
N_SITES = 512
ROUNDS = 5


def main() -> None:
    print("registered kernel backend resources:")
    infos = list_resources()
    for info in infos:
        bound = "" if info.tolerance == 0 else f" (|dlogL| <= {info.tolerance:g})"
        print(f"  {info.name:<10s} {info.kind}  {info.parity}{bound}")
    print()

    rng = np.random.default_rng(7)
    tree = balanced_tree(N_TAXA, branch_length=0.1)
    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), N_SITES, rng=rng)
    plan = make_plan(tree, "concurrent")
    print(
        f"case: balanced {N_TAXA}-taxon tree, {N_SITES} patterns, "
        f"{plan.n_launches} kernel launches per evaluation\n"
    )

    # Same plan, every backend: warm up, then interleaved best-of rounds.
    instances = {
        info.name: create_instance(
            tree, model, patterns, backend=acquire(info.name)
        )
        for info in infos
    }
    loglik = {
        name: execute_plan(inst, plan) for name, inst in instances.items()
    }
    best = {name: float("inf") for name in instances}
    for _ in range(ROUNDS):
        for name, inst in instances.items():
            start = time.perf_counter()
            execute_plan(inst, plan, update_matrices=False)
            best[name] = min(best[name], time.perf_counter() - start)

    reference = best["reference"]
    header = f"{'backend':<10s} {'logL':>16s} {'ms/eval':>8s} {'speedup':>8s} {'parity':>8s}"
    print(header)
    for info in infos:
        name = info.name
        report = parity_report(name, n_taxa=16, n_patterns=64)
        verdict = "OK" if report.ok else "VIOLATED"
        print(
            f"{name:<10s} {loglik[name]:16.6f} {best[name] * 1e3:8.2f} "
            f"{reference / best[name]:7.2f}x {verdict:>8s}"
        )

    print()
    print(
        "bit-identical backends match the reference to the last bit; "
        "tolerance backends stay inside their declared |dlogL| bound."
    )
    print(
        "select a backend with TreeLikelihood(..., backend='blocked'), "
        "synthetictest --rsrc blocked, or REPRO_BACKEND=blocked."
    )


if __name__ == "__main__":
    main()
