"""Tests for bootstrap support and the branch-score distance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Alignment, simulate_alignment
from repro.inference import (
    bootstrap_alignments,
    bootstrap_consensus,
    bootstrap_support,
    bootstrap_trees,
)
from repro.models import JC69
from repro.trees import (
    branch_score_distance,
    distance_matrix,
    neighbor_joining,
    parse_newick,
    robinson_foulds,
    same_unrooted_topology,
    yule_tree,
)


def nj_builder(alignment: Alignment):
    names, D = distance_matrix(alignment, method="jc")
    return neighbor_joining(names, D)


@pytest.fixture(scope="module")
def strong_signal():
    truth = yule_tree(8, 41, random_lengths=True)
    for edge in truth.edges():
        edge.length = max(edge.length, 0.08)
    aln = simulate_alignment(truth, JC69(), 2000, seed=42)
    return truth, aln


class TestBootstrapAlignments:
    def test_replicates_same_shape(self, strong_signal):
        _, aln = strong_signal
        reps = list(bootstrap_alignments(aln, 3, np.random.default_rng(0)))
        assert len(reps) == 3
        for rep in reps:
            assert rep.n_taxa == aln.n_taxa
            assert rep.n_sites == aln.n_sites

    def test_resampling_changes_columns(self, strong_signal):
        _, aln = strong_signal
        rep = next(bootstrap_alignments(aln, 1, np.random.default_rng(1)))
        # Some column multiset difference is (overwhelmingly) expected.
        assert any(
            rep.column(i) != aln.column(i) for i in range(aln.n_sites)
        )

    def test_validation(self, strong_signal):
        _, aln = strong_signal
        with pytest.raises(ValueError):
            list(bootstrap_alignments(aln, 0, np.random.default_rng(0)))


class TestBootstrapSupport:
    def test_strong_signal_high_support(self, strong_signal):
        truth, aln = strong_signal
        support = bootstrap_support(aln, nj_builder, 20, seed=2)
        # With 2,000 sites every true split should be recovered in
        # (nearly) every replicate.
        assert support
        assert np.mean(list(support.values())) > 0.9

    def test_consensus_matches_truth(self, strong_signal):
        truth, aln = strong_signal
        consensus = bootstrap_consensus(aln, nj_builder, 20, seed=3)
        assert robinson_foulds(consensus, truth) == 0

    def test_trees_count(self, strong_signal):
        _, aln = strong_signal
        trees = bootstrap_trees(aln, nj_builder, 5, seed=4)
        assert len(trees) == 5
        assert all(sorted(t.tip_names()) == sorted(aln.names) for t in trees)

    def test_deterministic_seed(self, strong_signal):
        _, aln = strong_signal
        a = bootstrap_support(aln, nj_builder, 5, seed=5)
        b = bootstrap_support(aln, nj_builder, 5, seed=5)
        assert a == b


class TestBranchScoreDistance:
    def test_zero_for_identical(self):
        t = yule_tree(8, 7, random_lengths=True)
        assert branch_score_distance(t, t.copy()) == pytest.approx(0.0)

    def test_pure_length_difference(self):
        a = parse_newick("((a:1,b:1):1,(c:1,d:1):1);")
        b = parse_newick("((a:1,b:1):2,(c:1,d:1):2);")
        # The internal split's unrooted length goes 2 -> 4.
        assert branch_score_distance(a, b) == pytest.approx(2.0)

    def test_rerooting_invariant(self):
        from repro.trees import reroot_on_edge, unrooted_edges

        t = yule_tree(7, 9, random_lengths=True)
        u, v, _ = unrooted_edges(t)[3]
        r = reroot_on_edge(t, u, v, fraction=0.25)
        assert branch_score_distance(t, r) == pytest.approx(0.0, abs=1e-12)

    def test_topology_difference_counts_full_lengths(self):
        a = parse_newick("((a:1,b:1):0.5,(c:1,d:1):0.5);")
        b = parse_newick("((a:1,c:1):0.5,(b:1,d:1):0.5);")
        # Each tree's internal edge (length 1 unrooted) is unique.
        assert branch_score_distance(a, b) == pytest.approx(np.sqrt(2.0))

    def test_symmetry(self):
        a = yule_tree(8, 11, random_lengths=True)
        b = yule_tree(8, 12, random_lengths=True)
        assert branch_score_distance(a, b) == pytest.approx(
            branch_score_distance(b, a)
        )

    def test_requires_same_tips(self):
        with pytest.raises(ValueError):
            branch_score_distance(
                parse_newick("((a,b),c);"), parse_newick("((a,b),d);")
            )


class TestPoolContextOptIn:
    """Builders receive a JobContext only when they explicitly opt in."""

    @pytest.fixture()
    def pool(self):
        from repro.exec import LikelihoodPool

        return LikelihoodPool(2, executor="inline")

    def test_optional_second_parameter_is_not_a_context(
        self, strong_signal, pool
    ):
        _, aln = strong_signal
        seen = []

        def builder(alignment, n_starts=3):
            seen.append(n_starts)
            return nj_builder(alignment)

        serial = bootstrap_trees(aln, builder, 2, seed=7)
        pooled = bootstrap_trees(aln, builder, 2, seed=7, pool=pool)
        # Arity never implies opt-in: the default must survive pooling.
        assert seen == [3] * 4
        for a, b in zip(serial, pooled):
            assert same_unrooted_topology(a, b)

    def test_ctx_parameter_name_opts_in(self, strong_signal, pool):
        from repro.exec import JobContext

        _, aln = strong_signal
        contexts = []

        def builder(alignment, ctx):
            contexts.append(ctx)
            return nj_builder(alignment)

        trees = bootstrap_trees(aln, builder, 2, seed=7, pool=pool)
        assert len(trees) == 2
        assert len(contexts) == 2
        assert all(isinstance(c, JobContext) for c in contexts)

    def test_keyword_only_ctx_opts_in(self, strong_signal, pool):
        from repro.exec import JobContext

        _, aln = strong_signal
        contexts = []

        def builder(alignment, *, ctx):
            contexts.append(ctx)
            return nj_builder(alignment)

        trees = bootstrap_trees(aln, builder, 2, seed=7, pool=pool)
        assert len(trees) == 2
        assert all(isinstance(c, JobContext) for c in contexts)

    def test_pool_context_marker_opts_in(self, strong_signal, pool):
        from repro.exec import JobContext

        _, aln = strong_signal
        contexts = []

        def builder(alignment, job):
            contexts.append(job)
            return nj_builder(alignment)

        builder.pool_context = True
        trees = bootstrap_trees(aln, builder, 2, seed=7, pool=pool)
        assert len(trees) == 2
        assert all(isinstance(c, JobContext) for c in contexts)

    def test_pass_context_flag_overrides(self, strong_signal, pool):
        from repro.exec import JobContext

        _, aln = strong_signal
        contexts = []

        def builder(alignment, extra):
            contexts.append(extra)
            return nj_builder(alignment)

        trees = bootstrap_trees(
            aln, builder, 2, seed=7, pool=pool, pass_context=True
        )
        assert len(trees) == 2
        assert all(isinstance(c, JobContext) for c in contexts)

    def test_pass_context_false_suppresses_ctx_builder(
        self, strong_signal, pool
    ):
        _, aln = strong_signal

        def builder(alignment, ctx=None):
            assert ctx is None
            return nj_builder(alignment)

        trees = bootstrap_trees(
            aln, builder, 2, seed=7, pool=pool, pass_context=False
        )
        assert len(trees) == 2
