"""Tests for model-parameter estimation and model selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import simulate_alignment
from repro.inference import (
    TreeLikelihood,
    fit_gamma_alpha,
    fit_kappa,
    model_selection,
    optimize_parameter,
)
from repro.models import (
    HKY85,
    JC69,
    K80,
    discrete_gamma,
    draw_site_rates,
)
from repro.trees import balanced_tree


FREQS = [0.3, 0.2, 0.2, 0.3]


@pytest.fixture(scope="module")
def hky_data():
    tree = balanced_tree(8, branch_length=0.25)
    aln = simulate_alignment(tree, HKY85(4.0, FREQS), 3000, seed=71)
    return tree, aln


class TestOptimizeParameter:
    def test_recovers_known_optimum(self, hky_data):
        tree, aln = hky_data
        ev = TreeLikelihood(tree, HKY85(2.0, FREQS), aln)

        def rebuild(kappa):
            return TreeLikelihood(tree, HKY85(kappa, FREQS), aln)

        fit = optimize_parameter(ev, rebuild, (0.1, 20.0))
        assert fit.value == pytest.approx(4.0, abs=0.5)
        assert fit.evaluations > 3
        # The fitted likelihood beats the starting model's.
        assert fit.log_likelihood > ev.log_likelihood()

    def test_bounds_validated(self, hky_data):
        tree, aln = hky_data
        ev = TreeLikelihood(tree, JC69(), aln)
        with pytest.raises(ValueError):
            optimize_parameter(ev, lambda v: ev, (2.0, 1.0))


class TestFitKappa:
    def test_recovery(self, hky_data):
        tree, aln = hky_data
        fit = fit_kappa(TreeLikelihood(tree, HKY85(1.5, FREQS), aln))
        assert fit.value == pytest.approx(4.0, abs=0.5)

    def test_kappa_one_for_jc_data(self):
        tree = balanced_tree(8, branch_length=0.25)
        aln = simulate_alignment(tree, JC69(), 4000, seed=72)
        fit = fit_kappa(TreeLikelihood(tree, HKY85(3.0), aln))
        assert fit.value == pytest.approx(1.0, abs=0.3)


class TestFitGammaAlpha:
    def test_recovery(self):
        tree = balanced_tree(8, branch_length=0.25)
        rates = discrete_gamma(0.4, 4)
        rng = np.random.default_rng(73)
        site_rates = draw_site_rates(rates, 4000, rng)
        aln = simulate_alignment(
            tree, HKY85(4.0, FREQS), 4000, seed=74, site_rates=site_rates
        )
        fit = fit_gamma_alpha(TreeLikelihood(tree, HKY85(4.0, FREQS), aln))
        assert fit.value == pytest.approx(0.4, abs=0.15)

    def test_homogeneous_data_drives_alpha_high(self):
        tree = balanced_tree(6, branch_length=0.2)
        aln = simulate_alignment(tree, JC69(), 2000, seed=75)
        fit = fit_gamma_alpha(TreeLikelihood(tree, JC69(), aln))
        assert fit.value > 2.0  # no heterogeneity -> alpha -> large


class TestModelSelection:
    def test_true_model_wins(self, hky_data):
        tree, aln = hky_data
        fits = model_selection(tree, aln)
        assert fits[0].name == "HKY85"
        assert [f.name for f in fits].index("JC69") == 2

    def test_aic_ordering(self, hky_data):
        tree, aln = hky_data
        fits = model_selection(tree, aln)
        aics = [f.aic for f in fits]
        assert aics == sorted(aics)

    def test_jc_data_prefers_jc(self):
        tree = balanced_tree(8, branch_length=0.2)
        aln = simulate_alignment(tree, JC69(), 2000, seed=76)
        fits = model_selection(tree, aln)
        # AIC penalises the extra parameters of K80/HKY when κ ≈ 1.
        assert fits[0].name == "JC69"

    def test_custom_candidates(self, hky_data):
        tree, aln = hky_data
        fits = model_selection(
            tree,
            aln,
            candidates=[("K2", K80(2.0), 1), ("K4", K80(4.0), 1)],
        )
        assert {f.name for f in fits} == {"K2", "K4"}
        assert fits[0].name == "K4"  # closer to the generating kappa

    def test_bic_reported(self, hky_data):
        tree, aln = hky_data
        fits = model_selection(tree, aln)
        for f in fits:
            assert f.bic >= f.aic  # log(n) > 2 for n > 7 sites
