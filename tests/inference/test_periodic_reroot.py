"""Tests for periodic rerooting during MCMC (paper §VIII future work)."""

from __future__ import annotations

import pytest

from repro.data import simulate_alignment
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import JC69
from repro.trees import pectinate_tree


def make_evaluator():
    model = JC69()
    tree = pectinate_tree(24, branch_length=0.15)
    aln = simulate_alignment(tree, model, 80, seed=95)
    return TreeLikelihood(tree, model, aln)


class TestPeriodicReroot:
    def test_rerootings_counted(self):
        result = run_mcmc(make_evaluator(), 40, seed=96, reroot_every=10)
        assert result.rerootings >= 1

    def test_disabled_by_default(self):
        result = run_mcmc(make_evaluator(), 20, seed=96)
        assert result.rerootings == 0

    def test_reduces_launches_for_pectinate_start(self):
        base = run_mcmc(make_evaluator(), 60, seed=97, reroot_every=0)
        rerooting = run_mcmc(make_evaluator(), 60, seed=97, reroot_every=10)
        assert rerooting.kernel_launches < base.kernel_launches
        assert rerooting.device_seconds < base.device_seconds

    def test_posterior_untouched_statistically(self):
        # Rerooting is deterministic and likelihood-invariant, so the
        # rerooted chain's likelihood trace stays in the same range.
        base = run_mcmc(make_evaluator(), 80, seed=98)
        rerooting = run_mcmc(make_evaluator(), 80, seed=98, reroot_every=20)
        lo = min(base.log_likelihoods) - 30
        hi = max(base.log_likelihoods) + 30
        assert all(lo < v < hi for v in rerooting.log_likelihoods)

    def test_skips_when_already_optimal(self):
        # A chain whose tree stays optimally rooted performs no rerootings.
        from repro.trees import balanced_tree

        model = JC69()
        tree = balanced_tree(16, branch_length=0.15)
        aln = simulate_alignment(tree, model, 60, seed=99)
        ev = TreeLikelihood(tree, model, aln)
        result = run_mcmc(
            ev, 30, seed=99, reroot_every=5, nni_probability=0.0
        )
        assert result.rerootings == 0  # branch moves cannot unbalance it
