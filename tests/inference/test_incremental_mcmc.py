"""Incremental proposal evaluation: bitwise equality with full traversals.

The contract is exact, not approximate: a proposal evaluated through the
dirty-path incremental plan (with snapshot-restore rejection and the
transition-matrix cache) must return the same bits a fresh
rebuild-everything evaluator computes for the mutated tree — float32 and
float64, rooted as given and rerooted for concurrency. The samplers
built on top (``run_mcmc(incremental=True)``,
``ml_search(incremental=True)``) must walk chains and hill-climbs that
are indistinguishable from their full-traversal counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import random_patterns
from repro.inference import (
    TreeLikelihood,
    branch_length_move,
    ml_search,
    multiply_branch,
    nni_move,
    nni_move_at,
    nni_move_count,
    nni_neighbors,
    random_nni,
    run_mcmc,
)
from repro.models import HKY85, discrete_gamma
from repro.trees import balanced_tree, write_newick, yule_tree

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
RATES = discrete_gamma(0.5, 4)


def _evaluator(seed, precision="double", reroot=False, n_taxa=8, **kwargs):
    rng = np.random.default_rng(seed)
    tree = yule_tree(n_taxa, rng, random_lengths=True)
    patterns = random_patterns(tree.tip_names(), 8, seed=seed)
    kwargs.setdefault("matrix_cache", True)
    ev = TreeLikelihood(
        tree,
        MODEL,
        patterns,
        rates=RATES,
        precision=precision,
        **kwargs,
    )
    if reroot:
        ev = ev.rerooted_for_concurrency()
    return ev


def _fresh_ll(ev):
    """The reference value: a brand-new evaluator, full traversal."""
    return TreeLikelihood(
        ev.tree.copy(),
        ev.model,
        ev.patterns,
        rates=ev.rates,
        precision=ev.precision,
    ).log_likelihood()


class TestPropertyBitIdentity:
    """The ISSUE's property test: random proposal sequences, evaluated
    incrementally with accept/reject snapshots, match fresh full
    traversals bit for bit in every precision/rooting combination."""

    @pytest.mark.parametrize("precision", ["double", "single"])
    @pytest.mark.parametrize("reroot", [False, True])
    @given(
        seed=st.integers(0, 2**16),
        steps=st.lists(
            st.tuples(st.sampled_from(["branch", "nni"]), st.booleans()),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_incremental_matches_fresh_traversal(
        self, precision, reroot, seed, steps
    ):
        rng = np.random.default_rng(seed + 1)
        ev = _evaluator(seed, precision=precision, reroot=reroot)
        ev.log_likelihood()  # populate every partial (warm state)
        for kind, accept in steps:
            if kind == "branch":
                move = branch_length_move(ev.tree, rng)
            else:
                move = nni_move(ev.tree, rng)
                if move is None:
                    continue
            assert ev.propose(move) == _fresh_ll(ev)
            if accept:
                ev.accept()
            else:
                ev.reject()
            # The evaluator's state after accept/reject is the tree it
            # claims to hold: a full traversal agrees with a fresh one.
            assert ev.log_likelihood() == _fresh_ll(ev)


class TestMoveAPI:
    def test_branch_length_move_rng_parity(self):
        """In-place and copy-based proposals consume identical draws and
        land on the same tree."""
        tree = _evaluator(3).tree
        proposal = multiply_branch(tree, np.random.default_rng(9))
        move = branch_length_move(tree, np.random.default_rng(9))
        assert write_newick(tree) == write_newick(proposal.tree)
        assert move.log_hastings == proposal.log_hastings
        assert move.changed_edges == move.touched

    def test_nni_move_rng_parity(self):
        tree = _evaluator(4).tree
        proposal = random_nni(tree, np.random.default_rng(5))
        move = nni_move(tree, np.random.default_rng(5))
        assert write_newick(tree) == write_newick(proposal.tree)
        assert move.changed_edges == []  # lengths travel with subtrees

    def test_undo_restores_tree_exactly(self):
        ev = _evaluator(5)
        before = write_newick(ev.tree)
        rng = np.random.default_rng(2)
        for maker in (branch_length_move, nni_move):
            move = maker(ev.tree, rng)
            assert write_newick(ev.tree) != before
            move.undo()
            assert write_newick(ev.tree) == before

    def test_nni_move_at_enumerates_neighbors_in_order(self):
        tree = balanced_tree(8, branch_length=0.1)
        neighbors = nni_neighbors(tree)
        assert nni_move_count(tree) == len(neighbors)
        for index, neighbor in enumerate(neighbors):
            move = nni_move_at(tree, index)
            assert write_newick(tree) == write_newick(neighbor)
            move.undo()
        with pytest.raises(IndexError):
            nni_move_at(tree, len(neighbors))


class TestProposalProtocol:
    def test_pending_guards(self):
        ev = _evaluator(6)
        ev.log_likelihood()
        ev.propose(branch_length_move(ev.tree, np.random.default_rng(0)))
        assert ev.proposal_pending
        with pytest.raises(RuntimeError):
            ev.propose(branch_length_move(ev.tree, np.random.default_rng(1)))
        with pytest.raises(RuntimeError):
            ev.log_likelihood()
        ev.reject()
        with pytest.raises(RuntimeError):
            ev.reject()
        with pytest.raises(RuntimeError):
            ev.accept()

    def test_unsupported_configurations_raise(self):
        rng = np.random.default_rng(7)
        tree = yule_tree(8, rng, random_lengths=True)
        patterns = random_patterns(tree.tip_names(), 8, seed=7)
        move_rng = np.random.default_rng(0)
        scaled = TreeLikelihood(tree.copy(), MODEL, patterns, scaling=True)
        with pytest.raises(ValueError, match="scaling"):
            scaled.propose(branch_length_move(scaled.tree, move_rng))
        resilient = TreeLikelihood(tree.copy(), MODEL, patterns, resilience=True)
        with pytest.raises(ValueError, match="resilience"):
            resilient.propose(branch_length_move(resilient.tree, move_rng))

    def test_cold_proposal_lifecycle(self):
        """A propose() before any full evaluation runs a full traversal,
        reports no incremental plan, and degrades gracefully on reject."""
        ev = _evaluator(8)
        assert not ev.incremental_ready
        move = branch_length_move(ev.tree, np.random.default_rng(1))
        ll = ev.propose(move)
        assert ev.last_incremental_plan is None
        assert ll == _fresh_ll(ev)
        ev.reject()
        assert not ev.incremental_ready  # buffers held the rejected state
        assert ev.log_likelihood() == _fresh_ll(ev)
        # Accepting a cold proposal leaves the evaluator warm.
        ev2 = _evaluator(8)
        ev2.propose(branch_length_move(ev2.tree, np.random.default_rng(2)))
        ev2.accept()
        assert ev2.incremental_ready

    def test_cold_nni_reject_rebuilds_instance(self):
        """Rejecting a cold NNI reverts the topology; the instance built
        for the moved topology must not leak into later evaluations."""
        ev = _evaluator(18)
        reference = _fresh_ll(ev)
        move = nni_move(ev.tree, np.random.default_rng(3))
        assert move is not None
        ev.propose(move)
        ev.reject()
        assert ev.log_likelihood() == reference

    def test_full_traversal_after_accepted_nni(self):
        """log_likelihood() after an accepted in-place NNI must use the
        instance's frozen buffer indices, not a reassigned plan."""
        ev = _evaluator(19)
        ev.log_likelihood()
        move = nni_move(ev.tree, np.random.default_rng(4))
        assert move is not None
        ll = ev.propose(move)
        ev.accept()
        assert ev.log_likelihood() == ll == _fresh_ll(ev)

    def test_warm_proposal_uses_incremental_plan(self):
        ev = _evaluator(9)
        ev.log_likelihood()
        move = branch_length_move(ev.tree, np.random.default_rng(3))
        ev.propose(move)
        plan = ev.last_incremental_plan
        assert plan is not None
        assert plan.incremental
        assert plan.n_operations < ev.plan.n_operations
        ev.reject()
        assert ev.log_likelihood() == _fresh_ll(ev)

    def test_invalidate_clears_proposal_state(self):
        ev = _evaluator(10)
        ev.log_likelihood()
        ev.propose(branch_length_move(ev.tree, np.random.default_rng(4)))
        ev.accept()
        ev.invalidate()
        assert not ev.incremental_ready
        assert ev.last_incremental_plan is None


class TestIncrementalMCMC:
    def _pair(self, seed, iterations=25, **kwargs):
        full_ev = _evaluator(seed, matrix_cache=False)
        inc_ev = _evaluator(seed)
        full = run_mcmc(full_ev, iterations, seed=seed, device=None, **kwargs)
        inc = run_mcmc(
            inc_ev, iterations, seed=seed, device=None, incremental=True, **kwargs
        )
        return full, inc

    def test_chain_is_bit_identical(self):
        full, inc = self._pair(11)
        assert full.log_likelihoods == inc.log_likelihoods
        assert full.accepted == inc.accepted
        assert inc.operations < full.operations

    def test_chain_matches_under_rerooting(self):
        full, inc = self._pair(12, reroot_every=5)
        assert full.log_likelihoods == inc.log_likelihoods
        assert full.rerootings == inc.rerootings

    def test_single_precision_chain_matches(self):
        full_ev = _evaluator(13, precision="single", matrix_cache=False)
        inc_ev = _evaluator(13, precision="single")
        full = run_mcmc(full_ev, 20, seed=13, device=None)
        inc = run_mcmc(inc_ev, 20, seed=13, device=None, incremental=True)
        assert full.log_likelihoods == inc.log_likelihoods

    def test_spr_proposals_are_rejected(self):
        ev = _evaluator(14)
        with pytest.raises(ValueError, match="SPR"):
            run_mcmc(ev, 5, incremental=True, spr_probability=0.1)

    def test_operations_counted_for_full_runs_too(self):
        ev = _evaluator(15, matrix_cache=False)
        result = run_mcmc(ev, 5, seed=15, device=None)
        assert result.operations > 0


class TestIncrementalSearch:
    def test_hill_climb_matches_full_search(self):
        # Start from a deliberately wrong topology: random data on a
        # fresh random tree leaves room for NNI improvement.
        full_ev = _evaluator(16, n_taxa=10, matrix_cache=False)
        inc_ev = _evaluator(16, n_taxa=10)
        full = ml_search(full_ev, max_rounds=4)
        inc = ml_search(inc_ev, max_rounds=4, incremental=True)
        assert inc.log_likelihood == full.log_likelihood
        assert write_newick(inc.tree) == write_newick(full.tree)
        assert inc.rounds == full.rounds

    def test_pool_is_mutually_exclusive(self):
        ev = _evaluator(17)
        with pytest.raises(ValueError, match="pool"):
            ml_search(ev, incremental=True, pool=object())
