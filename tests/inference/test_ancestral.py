"""Tests for marginal ancestral state reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Alignment, compress, simulate_alignment
from repro.inference import (
    ancestral_state_probabilities,
    most_probable_states,
)
from repro.models import HKY85, JC69, discrete_gamma
from repro.trees import balanced_tree, parse_newick, yule_tree


MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


class TestAncestralProbabilities:
    def test_rows_sum_to_one(self):
        tree = balanced_tree(8, branch_length=0.2)
        patterns = compress(simulate_alignment(tree, MODEL, 30, seed=91))
        for node in tree.internals():
            posterior = ancestral_state_probabilities(tree, MODEL, patterns, node)
            assert posterior.shape == (patterns.n_patterns, 4)
            assert np.allclose(posterior.sum(axis=1), 1.0)
            assert np.all(posterior >= 0)

    def test_zero_branches_pin_the_state(self):
        # With zero-length tip branches the parent must equal its tips.
        tree = parse_newick("((a:0,b:0):0.5,(c:0.3,d:0.3):0.5);")
        aln = Alignment({"a": "A", "b": "A", "c": "G", "d": "T"})
        patterns = compress(aln)
        parent = tree.find("a").parent
        posterior = ancestral_state_probabilities(tree, JC69(), patterns, parent)
        assert posterior[0, 0] == pytest.approx(1.0)  # state A certain

    def test_long_branches_revert_to_prior(self):
        tree = parse_newick("((a:50,b:50):50,(c:50,d:50):50);")
        aln = Alignment({"a": "A", "b": "A", "c": "A", "d": "A"})
        patterns = compress(aln)
        node = tree.find("a").parent
        posterior = ancestral_state_probabilities(tree, MODEL, patterns, node)
        assert np.allclose(posterior[0], MODEL.frequencies, atol=1e-3)

    def test_tip_rejected(self):
        tree = balanced_tree(4, branch_length=0.1)
        patterns = compress(simulate_alignment(tree, JC69(), 5, seed=92))
        with pytest.raises(ValueError):
            ancestral_state_probabilities(tree, JC69(), patterns, tree.tips()[0])

    def test_root_node_direct_path(self):
        tree = balanced_tree(6, branch_length=0.2)
        patterns = compress(simulate_alignment(tree, MODEL, 20, seed=93))
        posterior = ancestral_state_probabilities(tree, MODEL, patterns, tree.root)
        assert posterior.shape == (patterns.n_patterns, 4)
        assert np.allclose(posterior.sum(axis=1), 1.0)

    def test_reconstruction_recovers_simulated_root(self):
        # Simulate with known root states; reconstruction should beat
        # chance substantially on short branches.
        from repro.data import simulate_states

        tree = balanced_tree(16, branch_length=0.05)
        n = 300
        rng_states = simulate_states(tree, JC69(), n, seed=94)
        aln = Alignment(
            {k: "".join("ACGT"[i] for i in v) for k, v in rng_states.items()}
        )
        patterns = compress(aln)
        symbols, confidence = most_probable_states(
            tree, JC69(), patterns, tree.root
        )
        assert np.mean(confidence) > 0.8

    def test_gamma_rates_supported(self):
        tree = yule_tree(6, 95, random_lengths=True)
        rates = discrete_gamma(0.5, 3)
        patterns = compress(simulate_alignment(tree, MODEL, 15, seed=96))
        node = tree.internals()[0]
        posterior = ancestral_state_probabilities(
            tree, MODEL, patterns, node, rates=rates
        )
        assert np.allclose(posterior.sum(axis=1), 1.0)


class TestMostProbableStates:
    def test_symbols_and_probabilities(self):
        tree = balanced_tree(4, branch_length=0.1)
        patterns = compress(simulate_alignment(tree, JC69(), 12, seed=97))
        symbols, probs = most_probable_states(tree, JC69(), patterns, tree.root)
        assert len(symbols) == patterns.n_patterns
        assert all(s in "ACGT" for s in symbols)
        assert np.all((probs >= 0.25 - 1e-12) & (probs <= 1.0))

    def test_consistency_with_probability_matrix(self):
        tree = balanced_tree(6, branch_length=0.2)
        patterns = compress(simulate_alignment(tree, MODEL, 10, seed=98))
        node = tree.internals()[1]
        posterior = ancestral_state_probabilities(tree, MODEL, patterns, node)
        symbols, probs = most_probable_states(tree, MODEL, patterns, node)
        for p in range(patterns.n_patterns):
            assert probs[p] == pytest.approx(posterior[p].max())
            assert symbols[p] == "ACGT"[posterior[p].argmax()]
