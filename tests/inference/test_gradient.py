"""Tests for the one-sweep all-branch gradient engine.

The contract under test: :func:`repro.inference.all_branch_derivatives`
computes every canonical branch's ``(logL, d/dt, d²/dt²)`` in one
post-order + pre-order sweep, bit-consistent with
:func:`repro.inference.edge_log_likelihood_derivatives` run per edge
through a rerooted evaluation — at both dtypes, on as-given and
rerooted trees, and for every registered bit-identical backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_gradient_plan
from repro.core.planner import create_instance
from repro.data import compress, simulate_alignment
from repro.inference import (
    DerivativeSession,
    TreeLikelihood,
    all_branch_derivatives,
    canonical_edges,
    edge_log_likelihood_derivatives,
    merged_edge_length,
)
from repro.models import HKY85, JC69, discrete_gamma
from repro.trees import balanced_tree, pectinate_tree, yule_tree
from repro.trees.reroot import reroot_above
from tests.strategies import tree_strategy

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


def make_patterns(tree, n_sites=40, seed=7, model=None):
    return compress(
        simulate_alignment(tree, model or MODEL, n_sites, seed=seed)
    )


def oracle_triples(tree, model, patterns, rates=None, *, dtype=np.float64,
                   backend=None):
    """Per-edge rerooted derivatives for every canonical branch."""
    session = DerivativeSession(
        model, patterns, rates, dtype=dtype, backend=backend
    )
    return [
        edge_log_likelihood_derivatives(
            tree, model, patterns, edge, rates=rates, session=session
        )
        for edge in canonical_edges(tree)
    ], session


class TestAllBranchDerivatives:
    @settings(max_examples=10, deadline=None)
    @given(tree=tree_strategy(min_tips=4, max_tips=10), seed=st.integers(0, 5))
    def test_matches_per_edge_oracle_exactly(self, tree, seed):
        # f64 parity is exact: the one-sweep upper bank holds the same
        # bits as the rerooted oracle's far-side half-tree partials, and
        # both paths share _recombine.
        for edge in tree.root.traverse_postorder():
            if edge.parent is not None:
                edge.length = max(float(edge.length), 0.05)
        tree.invalidate_indices()
        patterns = make_patterns(tree, n_sites=30, seed=seed)
        bg = all_branch_derivatives(tree, MODEL, patterns)
        expected, _ = oracle_triples(tree, MODEL, patterns)
        assert len(bg.derivatives) == 2 * tree.n_tips - 3
        for got, want in zip(bg.derivatives, expected):
            assert got.log_likelihood == want.log_likelihood
            assert got.first == want.first
            assert got.second == want.second

    def test_exact_on_rerooted_trees(self):
        tree = yule_tree(10, np.random.default_rng(3))
        patterns = make_patterns(tree)
        for edge in canonical_edges(tree)[::3]:
            rerooted = reroot_above(tree, edge, fraction=0.0)
            bg = all_branch_derivatives(rerooted, MODEL, patterns)
            expected, _ = oracle_triples(rerooted, MODEL, patterns)
            for got, want in zip(bg.derivatives, expected):
                assert (got.log_likelihood, got.first, got.second) == (
                    want.log_likelihood,
                    want.first,
                    want.second,
                )

    def test_float32_stays_close_to_float64(self):
        tree = balanced_tree(8, branch_length=0.15)
        patterns = make_patterns(tree)
        f64 = all_branch_derivatives(tree, MODEL, patterns)
        f32 = all_branch_derivatives(tree, MODEL, patterns, dtype=np.float32)
        # f32 parity class: exact against the f32 oracle, close to f64.
        expected32, _ = oracle_triples(tree, MODEL, patterns, dtype=np.float32)
        for got, want in zip(f32.derivatives, expected32):
            assert got.log_likelihood == want.log_likelihood
            assert got.first == want.first
        assert np.allclose(f32.gradient(), f64.gradient(), rtol=1e-3, atol=1e-2)

    def test_matches_central_finite_differences(self):
        from tests.inference.test_derivatives import finite_difference

        tree = yule_tree(8, np.random.default_rng(11))
        patterns = make_patterns(tree)
        bg = all_branch_derivatives(tree, MODEL, patterns)
        for edge, d in zip(bg.edges, bg.derivatives):
            if edge.parent is tree.root:
                continue  # unrooted length is the pulley sum; not FD-probeable
            ll, fd1, fd2 = finite_difference(tree, MODEL, patterns, edge)
            assert d.log_likelihood == pytest.approx(ll, abs=1e-9)
            assert d.first == pytest.approx(fd1, rel=1e-4, abs=1e-4)
            assert d.second == pytest.approx(fd2, rel=1e-3, abs=1e-2)

    def test_gamma_rates(self):
        tree = balanced_tree(8, branch_length=0.2)
        rates = discrete_gamma(0.5, 4)
        patterns = make_patterns(tree)
        bg = all_branch_derivatives(tree, MODEL, patterns, rates=rates)
        expected, _ = oracle_triples(tree, MODEL, patterns, rates)
        for got, want in zip(bg.derivatives, expected):
            assert (got.log_likelihood, got.first, got.second) == (
                want.log_likelihood,
                want.first,
                want.second,
            )

    def test_serial_mode_bit_identical_to_concurrent(self):
        tree = pectinate_tree(9, branch_length=0.1)
        patterns = make_patterns(tree)
        a = all_branch_derivatives(tree, MODEL, patterns, mode="concurrent")
        b = all_branch_derivatives(tree, MODEL, patterns, mode="serial")
        for x, y in zip(a.derivatives, b.derivatives):
            assert (x.log_likelihood, x.first, x.second) == (
                y.log_likelihood,
                y.first,
                y.second,
            )

    @pytest.mark.parametrize("backend", ["blocked", "pattern-blocked"])
    def test_bit_identical_backends_match_reference(self, backend):
        tree = yule_tree(9, np.random.default_rng(5))
        patterns = make_patterns(tree)
        ref = all_branch_derivatives(tree, MODEL, patterns)
        alt = all_branch_derivatives(tree, MODEL, patterns, backend=backend)
        for x, y in zip(ref.derivatives, alt.derivatives):
            assert (x.log_likelihood, x.first, x.second) == (
                y.log_likelihood,
                y.first,
                y.second,
            )

    def test_log_likelihood_matches_evaluator(self):
        tree = balanced_tree(8, branch_length=0.1)
        patterns = make_patterns(tree)
        bg = all_branch_derivatives(tree, MODEL, patterns)
        ll = TreeLikelihood(tree, MODEL, patterns).log_likelihood()
        assert bg.log_likelihood == pytest.approx(ll, abs=1e-9)
        # Every per-branch recombination reproduces the same logL too.
        for d in bg.derivatives:
            assert d.log_likelihood == pytest.approx(bg.log_likelihood, abs=1e-8)

    def test_verify_flag_and_instance_reuse(self):
        tree = balanced_tree(8, branch_length=0.1)
        patterns = make_patterns(tree)
        instance = create_instance(tree, MODEL, patterns)
        a = all_branch_derivatives(tree, MODEL, patterns, verify=True)
        b = all_branch_derivatives(
            tree, MODEL, patterns, instance=instance, verify=True
        )
        assert a.log_likelihood == b.log_likelihood
        assert a.gradient().tolist() == b.gradient().tolist()

    def test_validation(self):
        from repro.trees import parse_newick

        with pytest.raises(ValueError, match="at least three tips"):
            all_branch_derivatives(
                parse_newick("(a:0.1,b:0.1);"),
                JC69(),
                make_patterns(balanced_tree(4), model=JC69()),
            )
        tree = balanced_tree(4)
        with pytest.raises(ValueError, match="unknown mode"):
            all_branch_derivatives(
                tree, JC69(), make_patterns(tree, model=JC69()), mode="warp"
            )


class TestBranchGradientAccessors:
    def test_shapes_and_edge_order(self):
        tree = yule_tree(7, np.random.default_rng(1))
        patterns = make_patterns(tree)
        bg = all_branch_derivatives(tree, MODEL, patterns)
        k = 2 * tree.n_tips - 3
        assert bg.gradient().shape == (k,)
        assert bg.second_derivatives().shape == (k,)
        assert list(bg.edges) == canonical_edges(tree)
        assert bg.branch_lengths().tolist() == [
            merged_edge_length(tree, e) for e in bg.edges
        ]

    def test_for_edge_aliases_the_pulley(self):
        tree = balanced_tree(8, branch_length=0.1)
        patterns = make_patterns(tree)
        bg = all_branch_derivatives(tree, MODEL, patterns)
        first, second = tree.root.children
        # The second root child shares the merged pulley edge with the
        # first — for_edge resolves both to the same derivatives.
        assert bg.for_edge(second) is bg.for_edge(first)
        with pytest.raises(KeyError):
            bg.for_edge(tree.root)

    def test_canonical_edges_skip_second_root_child(self):
        tree = pectinate_tree(8, branch_length=0.1)
        edges = canonical_edges(tree)
        assert len(edges) == 2 * tree.n_tips - 3
        assert tree.root.children[1] not in edges
        assert tree.root not in edges

    def test_merged_edge_length_sums_the_pulley(self):
        tree = balanced_tree(4, branch_length=0.25)
        a, b = tree.root.children
        assert merged_edge_length(tree, a) == pytest.approx(
            float(a.length) + float(b.length)
        )
        grandchild = a.children[0]
        assert merged_edge_length(tree, grandchild) == float(grandchild.length)


class TestDerivativeSessionReuse:
    def test_one_instance_across_all_edges(self):
        tree = yule_tree(10, np.random.default_rng(9))
        patterns = make_patterns(tree)
        _, session = oracle_triples(tree, MODEL, patterns)
        assert session.instances_created == 1
        assert session.evaluations == 2 * tree.n_tips - 3

    def test_session_parity_with_fresh_instances(self):
        tree = yule_tree(7, np.random.default_rng(2))
        patterns = make_patterns(tree)
        edge = canonical_edges(tree)[1]
        fresh = edge_log_likelihood_derivatives(tree, MODEL, patterns, edge)
        session = DerivativeSession(MODEL, patterns)
        reused = edge_log_likelihood_derivatives(
            tree, MODEL, patterns, edge, session=session
        )
        assert (fresh.log_likelihood, fresh.first, fresh.second) == (
            reused.log_likelihood,
            reused.first,
            reused.second,
        )


class TestGradientPlanShape:
    @pytest.mark.parametrize("n", [3, 4, 8, 16])
    def test_operation_counts(self, n):
        tree = balanced_tree(n, branch_length=0.1)
        gplan = make_gradient_plan(tree)
        assert gplan.post.n_operations == n - 1
        assert gplan.n_operations == 3 * n - 5
        assert sum(gplan.upper_set_sizes) == 2 * n - 4
        assert len(gplan.seeds) == 2

    def test_serial_mode_one_op_per_launch(self):
        tree = balanced_tree(8, branch_length=0.1)
        gplan = make_gradient_plan(tree, "serial")
        assert all(s == 1 for s in gplan.upper_set_sizes)
        assert gplan.n_launches == gplan.n_operations

    def test_concurrent_batches_fewer_launches(self):
        tree = balanced_tree(16, branch_length=0.1)
        serial = make_gradient_plan(tree, "serial")
        batched = make_gradient_plan(tree)
        assert batched.n_launches < serial.n_launches
        assert batched.n_operations == serial.n_operations

    def test_validation(self):
        from repro.trees import parse_newick

        with pytest.raises(ValueError, match="unknown mode"):
            make_gradient_plan(balanced_tree(4), "sideways")
        with pytest.raises(ValueError, match="at least three tips"):
            make_gradient_plan(parse_newick("(a:0.1,b:0.1);"))
