"""Unit tests for the TreeLikelihood facade."""

from __future__ import annotations

import pytest

from repro.beagle import pruning_log_likelihood
from repro.core import count_operation_sets
from repro.data import compress, simulate_alignment
from repro.inference import TreeLikelihood
from repro.models import HKY85, JC69, discrete_gamma
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree


@pytest.fixture
def setup():
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    tree = random_attachment_tree(10, 7, random_lengths=True)
    aln = simulate_alignment(tree, model, 40, seed=31)
    return tree, model, aln


class TestBasics:
    def test_accepts_alignment_or_patterns(self, setup):
        tree, model, aln = setup
        a = TreeLikelihood(tree, model, aln)
        b = TreeLikelihood(tree, model, compress(aln))
        assert a.log_likelihood() == pytest.approx(b.log_likelihood())

    def test_matches_reference(self, setup):
        tree, model, aln = setup
        ev = TreeLikelihood(tree, model, aln)
        assert ev.log_likelihood() == pytest.approx(
            pruning_log_likelihood(tree, model, compress(aln)), abs=1e-8
        )

    def test_gamma_rates(self, setup):
        tree, model, aln = setup
        rates = discrete_gamma(0.6, 4)
        ev = TreeLikelihood(tree, model, aln, rates=rates)
        assert ev.log_likelihood() == pytest.approx(
            pruning_log_likelihood(tree, model, compress(aln), rates), abs=1e-8
        )

    def test_n_launches(self, setup):
        tree, model, aln = setup
        assert TreeLikelihood(tree, model, aln, mode="serial").n_launches == 9
        assert TreeLikelihood(tree, model, aln).n_launches == count_operation_sets(tree)

    def test_operation_sets(self, setup):
        tree, model, aln = setup
        ev = TreeLikelihood(tree, model, aln)
        assert ev.operation_sets() == count_operation_sets(tree)


class TestRerooting:
    def test_reroot_options(self, setup):
        tree, model, aln = setup
        base = TreeLikelihood(tree, model, aln)
        fast = TreeLikelihood(tree, model, aln, reroot="fast")
        exhaustive = TreeLikelihood(tree, model, aln, reroot="exhaustive")
        assert fast.log_likelihood() == pytest.approx(base.log_likelihood(), abs=1e-8)
        assert exhaustive.log_likelihood() == pytest.approx(
            base.log_likelihood(), abs=1e-8
        )
        assert fast.n_launches <= base.n_launches
        assert fast.n_launches == exhaustive.n_launches

    def test_bad_reroot_option(self, setup):
        tree, model, aln = setup
        with pytest.raises(ValueError):
            TreeLikelihood(tree, model, aln, reroot="maybe")

    def test_rerooted_for_concurrency(self, setup):
        tree, model, aln = setup
        base = TreeLikelihood(tree, model, aln)
        rr = base.rerooted_for_concurrency()
        assert rr.log_likelihood() == pytest.approx(base.log_likelihood(), abs=1e-8)
        assert rr.n_launches <= base.n_launches
        with pytest.raises(ValueError):
            base.rerooted_for_concurrency("nope")

    def test_pectinate_headline(self):
        """Pectinate 64-tip tree: 63 serial launches become 32."""
        model = JC69()
        tree = pectinate_tree(64, branch_length=0.1)
        aln = simulate_alignment(tree, model, 16, seed=32)
        serial = TreeLikelihood(tree, model, aln, mode="serial")
        rerooted = TreeLikelihood(tree, model, aln, reroot="fast")
        assert serial.n_launches == 63
        assert rerooted.n_launches == 32
        assert serial.log_likelihood() == pytest.approx(
            rerooted.log_likelihood(), abs=1e-8
        )


class TestMutation:
    def test_with_tree(self, setup):
        tree, model, aln = setup
        ev = TreeLikelihood(tree, model, aln)
        other = balanced_tree(10, names=tree.tip_names())
        ev2 = ev.with_tree(other)
        assert ev2.log_likelihood() != pytest.approx(ev.log_likelihood())
        assert ev2.patterns is ev.patterns  # data shared, not copied

    def test_invalidate_after_in_place_edit(self, setup):
        tree, model, aln = setup
        ev = TreeLikelihood(tree, model, aln)
        before = ev.log_likelihood()
        tree.edges()[0].length *= 3.0
        ev.invalidate()
        after = ev.log_likelihood()
        assert after != pytest.approx(before)

    def test_scaling_mode(self, setup):
        tree, model, aln = setup
        plain = TreeLikelihood(tree, model, aln)
        scaled = TreeLikelihood(tree, model, aln, scaling=True)
        assert scaled.log_likelihood() == pytest.approx(
            plain.log_likelihood(), abs=1e-9
        )
