"""Unit tests for branch-length optimisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import simulate_alignment
from repro.inference import TreeLikelihood, optimize_branch_lengths
from repro.models import HKY85, JC69
from repro.trees import balanced_tree, parse_newick


class TestOptimizeBranchLengths:
    def test_improves_likelihood(self):
        model = HKY85(2.0)
        truth = balanced_tree(6, branch_length=0.3)
        aln = simulate_alignment(truth, model, 400, seed=41)
        start = truth.copy()
        for edge in start.edges():
            edge.length = 0.02  # far from the truth
        result = optimize_branch_lengths(
            TreeLikelihood(start, model, aln), max_sweeps=2
        )
        assert result.improvement > 0
        assert result.log_likelihood > result.initial_log_likelihood

    def test_recovers_known_two_tip_distance(self):
        # For two sequences the ML JC distance has a closed form:
        # t = -3/4 ln(1 - 4/3 p) with p the mismatch fraction.
        model = JC69()
        tree = parse_newick("(a:0.05,b:0.05);")
        aln = simulate_alignment(tree, model, 3000, seed=42)
        a = aln.sequence("a")
        b = aln.sequence("b")
        p = np.mean([x != y for x, y in zip(a, b)])
        expected_total = -0.75 * np.log(1 - 4 * p / 3)
        start = parse_newick("(a:0.4,b:0.4);")
        result = optimize_branch_lengths(
            TreeLikelihood(start, model, aln), max_sweeps=3
        )
        fitted_total = result.tree.total_branch_length()
        assert fitted_total == pytest.approx(expected_total, abs=0.01)

    def test_input_tree_untouched(self):
        model = JC69()
        tree = balanced_tree(4, branch_length=0.3)
        aln = simulate_alignment(tree, model, 60, seed=43)
        lengths_before = [e.length for e in tree.edges()]
        optimize_branch_lengths(TreeLikelihood(tree, model, aln), max_sweeps=1)
        assert [e.length for e in tree.edges()] == lengths_before

    def test_already_optimal_stops_early(self):
        model = JC69()
        truth = balanced_tree(4, branch_length=0.2)
        aln = simulate_alignment(truth, model, 500, seed=44)
        first = optimize_branch_lengths(TreeLikelihood(truth, model, aln), max_sweeps=4)
        again = optimize_branch_lengths(
            TreeLikelihood(first.tree, model, aln), max_sweeps=4
        )
        # Re-optimising an optimum converges in one sweep.
        assert again.sweeps == 1
        assert again.improvement < 0.05

    def test_counts_evaluations(self):
        model = JC69()
        tree = balanced_tree(4, branch_length=0.2)
        aln = simulate_alignment(tree, model, 30, seed=45)
        result = optimize_branch_lengths(TreeLikelihood(tree, model, aln), max_sweeps=1)
        # Brent spends many evaluations per branch: at least one per edge.
        assert result.evaluations > len(tree.edges())


class TestGradientOptimizer:
    """Full-gradient Newton / L-BFGS over every branch at once."""

    def setup_case(self, seed=21, n=8, noise=0.5):
        import numpy as np

        from repro.data import compress
        from repro.trees import yule_tree

        rng = np.random.default_rng(seed)
        tree = yule_tree(n, rng)
        aln = compress(simulate_alignment(tree, HKY85(2.0, [0.3, 0.2, 0.2, 0.3]), 120, seed=seed))
        # Mild multiplicative noise keeps every optimiser in one basin.
        for edge in tree.root.traverse_postorder():
            if edge.parent is not None:
                edge.length = float(edge.length) * rng.lognormal(0.0, noise) + 1e-4
        tree.invalidate_indices()
        return TreeLikelihood(tree, HKY85(2.0, [0.3, 0.2, 0.2, 0.3]), aln)

    @pytest.mark.parametrize("method", ["newton", "lbfgs"])
    def test_improves_and_converges(self, method):
        from repro.inference import gradient_optimize_branch_lengths

        evaluator = self.setup_case()
        result = gradient_optimize_branch_lengths(evaluator, method=method)
        assert result.method == method
        assert result.improvement > 0
        assert result.converged
        assert result.gradient_sweeps >= result.iterations
        assert result.log_likelihood == pytest.approx(
            TreeLikelihood(
                result.tree, evaluator.model, evaluator.patterns
            ).log_likelihood()
        )

    def test_gradient_is_flat_at_solution(self):
        from repro.inference import (
            all_branch_derivatives,
            gradient_optimize_branch_lengths,
        )

        evaluator = self.setup_case(seed=5)
        result = gradient_optimize_branch_lengths(
            evaluator, method="newton", gradient_tolerance=1e-4
        )
        bg = all_branch_derivatives(
            result.tree, evaluator.model, evaluator.patterns
        )
        import numpy as np

        assert float(np.max(np.abs(bg.gradient()))) < 1e-4

    def test_matches_per_branch_newton(self):
        from repro.inference import (
            gradient_optimize_branch_lengths,
            newton_optimize_branch_lengths,
        )

        evaluator = self.setup_case(seed=9, noise=0.3)
        per_branch = newton_optimize_branch_lengths(evaluator, max_sweeps=6)
        full = gradient_optimize_branch_lengths(
            evaluator, method="newton", gradient_tolerance=1e-4
        )
        assert full.log_likelihood >= per_branch.log_likelihood - 0.05

    def test_input_untouched(self):
        from repro.inference import gradient_optimize_branch_lengths

        evaluator = self.setup_case()
        before = [e.length for e in evaluator.tree.edges()]
        gradient_optimize_branch_lengths(evaluator, max_iterations=2)
        assert [e.length for e in evaluator.tree.edges()] == before

    def test_unknown_method_rejected(self):
        from repro.inference import gradient_optimize_branch_lengths

        with pytest.raises(ValueError, match="unknown method"):
            gradient_optimize_branch_lengths(self.setup_case(), method="adam")
