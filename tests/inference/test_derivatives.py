"""Tests for analytic edge derivatives and Newton branch optimisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import compress, simulate_alignment
from repro.inference import (
    TreeLikelihood,
    edge_log_likelihood_derivatives,
    newton_optimize_branch_lengths,
    optimize_branch_lengths,
)
from repro.models import HKY85, JC69, discrete_gamma
from repro.models.eigen import transition_derivatives, transition_matrices
from repro.trees import balanced_tree, yule_tree
from tests.strategies import tree_strategy


MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


class TestTransitionDerivatives:
    def test_first_equals_qp(self):
        eigen = MODEL.eigen
        for t in (0.01, 0.3, 2.0):
            dP = transition_derivatives(eigen, [t])[0]
            P = transition_matrices(eigen, [t])[0]
            assert np.allclose(dP, MODEL.rate_matrix @ P, atol=1e-12)

    def test_second_equals_qqp(self):
        eigen = MODEL.eigen
        Q = MODEL.rate_matrix
        t = 0.4
        d2P = transition_derivatives(eigen, [t], order=2)[0]
        P = transition_matrices(eigen, [t])[0]
        assert np.allclose(d2P, Q @ Q @ P, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            transition_derivatives(MODEL.eigen, [0.1], order=0)
        with pytest.raises(ValueError):
            transition_derivatives(MODEL.eigen, [-0.1])


def finite_difference(tree, model, patterns, edge, rates=None, h=1e-5):
    def ll_at(t):
        old = edge.length
        edge.length = t
        tree.invalidate_indices()
        value = TreeLikelihood(tree, model, patterns, rates=rates).log_likelihood()
        edge.length = old
        tree.invalidate_indices()
        return value

    t0 = edge.length
    d1 = (ll_at(t0 + h) - ll_at(t0 - h)) / (2 * h)
    d2 = (ll_at(t0 + h) - 2 * ll_at(t0) + ll_at(t0 - h)) / h**2
    return ll_at(t0), d1, d2


class TestEdgeDerivatives:
    @given(tree_strategy(min_tips=4, max_tips=12), st.integers(0, 10**6))
    @settings(max_examples=15)
    def test_matches_finite_difference(self, tree, pick):
        for edge in tree.edges():
            edge.length = max(edge.length, 0.05)
        tree.invalidate_indices()
        patterns = compress(simulate_alignment(tree, MODEL, 20, seed=81))
        # Avoid root children in this property (their unrooted length is
        # the pulley sum, which the naive finite difference cannot probe
        # by perturbing one child length alone in an equivalent way).
        candidates = [
            e for e in tree.edges() if e.parent is not tree.root
        ] or tree.edges()
        edge = candidates[pick % len(candidates)]
        d = edge_log_likelihood_derivatives(tree, MODEL, patterns, edge)
        ll, fd1, fd2 = finite_difference(tree, MODEL, patterns, edge)
        assert d.log_likelihood == pytest.approx(ll, abs=1e-8)
        assert d.first == pytest.approx(fd1, rel=1e-4, abs=1e-5)
        assert d.second == pytest.approx(fd2, rel=1e-3, abs=1e-2)

    def test_root_child_uses_merged_length(self):
        tree = balanced_tree(6, branch_length=0.2)
        patterns = compress(simulate_alignment(tree, MODEL, 30, seed=82))
        child = tree.root.children[0]
        sibling = tree.root.children[1]
        d_default = edge_log_likelihood_derivatives(tree, MODEL, patterns, child)
        d_explicit = edge_log_likelihood_derivatives(
            tree, MODEL, patterns, child,
            at_length=child.length + sibling.length,
        )
        assert d_default.first == pytest.approx(d_explicit.first)

    def test_gamma_rates(self):
        tree = balanced_tree(6, branch_length=0.3)
        rates = discrete_gamma(0.5, 3)
        patterns = compress(simulate_alignment(tree, MODEL, 25, seed=83))
        edge = [e for e in tree.edges() if e.parent is not tree.root][0]
        d = edge_log_likelihood_derivatives(
            tree, MODEL, patterns, edge, rates=rates
        )
        ll, fd1, fd2 = finite_difference(tree, MODEL, patterns, edge, rates)
        assert d.log_likelihood == pytest.approx(ll, abs=1e-8)
        assert d.first == pytest.approx(fd1, rel=1e-4, abs=1e-5)

    def test_zero_gradient_near_optimum(self):
        # At the ML branch length the first derivative vanishes.
        tree = balanced_tree(4, branch_length=0.2)
        patterns = compress(simulate_alignment(tree, JC69(), 500, seed=84))
        fitted = optimize_branch_lengths(
            TreeLikelihood(tree, JC69(), patterns), max_sweeps=3
        )
        edge = [e for e in fitted.tree.edges() if e.parent is not fitted.tree.root][0]
        d = edge_log_likelihood_derivatives(fitted.tree, JC69(), patterns, edge)
        assert abs(d.first) < 0.5
        assert d.second < 0  # concave at the optimum

    def test_validation(self):
        tree = balanced_tree(4)
        patterns = compress(simulate_alignment(tree, JC69(), 5, seed=85))
        with pytest.raises(ValueError):
            edge_log_likelihood_derivatives(tree, JC69(), patterns, tree.root)
        with pytest.raises(ValueError):
            edge_log_likelihood_derivatives(
                tree, JC69(), patterns, tree.edges()[0], at_length=-1.0
            )


class TestNewtonOptimizer:
    def test_matches_brent_optimum(self):
        truth = yule_tree(6, 17, random_lengths=True)
        for edge in truth.edges():
            edge.length = max(edge.length, 0.05)
        patterns = compress(simulate_alignment(truth, MODEL, 400, seed=86))
        start = truth.copy()
        for edge in start.edges():
            edge.length = 0.3
        brent = optimize_branch_lengths(
            TreeLikelihood(start, MODEL, patterns), max_sweeps=3
        )
        newton = newton_optimize_branch_lengths(
            TreeLikelihood(start, MODEL, patterns), max_sweeps=3
        )
        assert newton.log_likelihood == pytest.approx(
            brent.log_likelihood, abs=0.05
        )

    def test_improves_from_bad_start(self):
        truth = balanced_tree(6, branch_length=0.2)
        patterns = compress(simulate_alignment(truth, JC69(), 300, seed=87))
        start = truth.copy()
        for edge in start.edges():
            edge.length = 1.0
        result = newton_optimize_branch_lengths(
            TreeLikelihood(start, JC69(), patterns), max_sweeps=3
        )
        assert result.improvement > 10

    def test_input_untouched(self):
        tree = balanced_tree(4, branch_length=0.3)
        patterns = compress(simulate_alignment(tree, JC69(), 50, seed=88))
        lengths = [e.length for e in tree.edges()]
        newton_optimize_branch_lengths(
            TreeLikelihood(tree, JC69(), patterns), max_sweeps=1
        )
        assert [e.length for e in tree.edges()] == lengths
