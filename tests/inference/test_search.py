"""Tests for SPR proposals, ML search, and consensus trees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import simulate_alignment
from repro.inference import (
    TreeLikelihood,
    majority_rule_consensus,
    ml_search,
    nni_neighbors,
    random_spr,
    split_frequencies,
)
from repro.models import JC69
from repro.trees import (
    balanced_tree,
    parse_newick,
    pectinate_tree,
    random_attachment_tree,
    robinson_foulds,
    same_unrooted_topology,
    yule_tree,
)
from tests.strategies import tree_strategy


class TestRandomSPR:
    @given(tree_strategy(min_tips=4, max_tips=25), st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_valid_tree(self, tree, seed):
        rng = np.random.default_rng(seed)
        proposal = random_spr(tree, rng)
        if proposal is None:  # degenerate root-child prune; allowed
            return
        assert proposal.kind == "spr"
        assert proposal.tree.is_bifurcating()
        assert sorted(proposal.tree.tip_names()) == sorted(tree.tip_names())
        assert np.isfinite(proposal.log_hastings)

    def test_tiny_trees_return_none(self):
        rng = np.random.default_rng(0)
        assert random_spr(parse_newick("((a,b),c);"), rng) is None

    def test_changes_topology_often(self):
        rng = np.random.default_rng(1)
        tree = random_attachment_tree(12, 2, random_lengths=True)
        changed = 0
        total = 0
        for _ in range(40):
            proposal = random_spr(tree, rng)
            if proposal is None:
                continue
            total += 1
            if robinson_foulds(tree, proposal.tree) > 0:
                changed += 1
        assert total > 20
        assert changed / total > 0.5

    def test_input_untouched(self):
        rng = np.random.default_rng(2)
        tree = balanced_tree(8, branch_length=0.3)
        key = tree.topology_key()
        tbl = tree.total_branch_length()
        random_spr(tree, rng)
        assert tree.topology_key() == key
        assert tree.total_branch_length() == pytest.approx(tbl)

    def test_spr_reaches_beyond_nni(self):
        # SPR moves can change RF distance by more than 2 in one step.
        rng = np.random.default_rng(3)
        tree = pectinate_tree(16, branch_length=0.2)
        distances = set()
        for _ in range(100):
            proposal = random_spr(tree, rng)
            if proposal is not None:
                distances.add(robinson_foulds(tree, proposal.tree))
        assert max(distances) > 2


class TestNNINeighbors:
    @given(tree_strategy(min_tips=4, max_tips=20))
    @settings(max_examples=20)
    def test_count(self, tree):
        assert len(nni_neighbors(tree)) == 2 * (tree.n_tips - 3)

    def test_all_valid_and_distinct_from_origin(self):
        tree = balanced_tree(8, branch_length=0.2)
        for neighbor in nni_neighbors(tree):
            assert neighbor.is_bifurcating()
            assert sorted(neighbor.tip_names()) == sorted(tree.tip_names())
            assert robinson_foulds(tree, neighbor) > 0

    def test_rf_distance_exactly_two(self):
        # An NNI changes exactly one split.
        tree = yule_tree(10, 4, random_lengths=True)
        for neighbor in nni_neighbors(tree):
            assert robinson_foulds(tree, neighbor) == 2


class TestMLSearch:
    def test_recovers_truth_from_pectinate_start(self):
        truth = yule_tree(10, 3, random_lengths=True)
        aln = simulate_alignment(truth, JC69(), 400, seed=1)
        start = pectinate_tree(10, names=truth.tip_names(), branch_length=0.1)
        result = ml_search(TreeLikelihood(start, JC69(), aln), max_rounds=15)
        assert robinson_foulds(result.tree, truth) == 0
        assert result.improvement > 50

    def test_stops_at_local_optimum(self):
        truth = yule_tree(8, 5, random_lengths=True)
        aln = simulate_alignment(truth, JC69(), 300, seed=2)
        first = ml_search(TreeLikelihood(truth, JC69(), aln), max_rounds=10)
        again = ml_search(TreeLikelihood(first.tree, JC69(), aln), max_rounds=10)
        assert again.rounds == 1  # immediately no improving neighbor
        assert again.improvement == pytest.approx(0.0, abs=1e-9)

    def test_accounting(self):
        truth = yule_tree(6, 7, random_lengths=True)
        aln = simulate_alignment(truth, JC69(), 100, seed=3)
        start = pectinate_tree(6, names=truth.tip_names(), branch_length=0.1)
        result = ml_search(TreeLikelihood(start, JC69(), aln), max_rounds=5)
        assert result.evaluations > result.rounds
        assert result.kernel_launches > 0
        assert result.start_log_likelihood <= result.log_likelihood

    def test_optimize_lengths_path(self):
        truth = yule_tree(6, 9, random_lengths=True)
        aln = simulate_alignment(truth, JC69(), 150, seed=4)
        start = pectinate_tree(6, names=truth.tip_names(), branch_length=0.4)
        plain = ml_search(TreeLikelihood(start, JC69(), aln), max_rounds=4)
        fitted = ml_search(
            TreeLikelihood(start, JC69(), aln), max_rounds=4, optimize_lengths=True
        )
        assert fitted.log_likelihood >= plain.log_likelihood - 1e-6


class TestConsensus:
    def test_identical_trees(self):
        tree = random_attachment_tree(8, 1)
        cons = majority_rule_consensus([tree.copy() for _ in range(4)])
        assert same_unrooted_topology(tree, cons)

    def test_supports_annotated(self):
        tree = random_attachment_tree(8, 1)
        cons = majority_rule_consensus([tree.copy() for _ in range(4)])
        labels = [n.name for n in cons.internals() if n.name]
        assert labels and all(label == "1.00" for label in labels)

    def test_majority_wins(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        cons = majority_rule_consensus([a.copy(), a.copy(), b])
        assert same_unrooted_topology(cons, a)

    def test_conflict_collapses_to_multifurcation(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        cons = majority_rule_consensus([a, b])
        # 50/50 conflict: no split passes >0.5, star tree results.
        assert len(cons.root.children) == 4

    def test_split_frequencies(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        freqs = split_frequencies([a, a.copy(), b])
        ab = frozenset({"c", "d"})  # canonical side excludes reference 'a'
        assert freqs[ab] == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_rule_consensus([], 0.5)
        with pytest.raises(ValueError):
            majority_rule_consensus(
                [parse_newick("((a,b),(c,d));")], min_frequency=0.3
            )
        with pytest.raises(ValueError):
            split_frequencies(
                [parse_newick("((a,b),(c,d));"), parse_newick("((a,b),(c,e));")]
            )

    def test_mcmc_integration(self):
        # Consensus of trees sampled around a sharp posterior matches
        # the true topology.
        from repro.inference import run_mcmc

        truth = yule_tree(6, 11, random_lengths=True)
        aln = simulate_alignment(truth, JC69(), 400, seed=5)
        ev = TreeLikelihood(truth, JC69(), aln)
        result = run_mcmc(ev, 60, seed=6)
        # Sample trees by rerunning best tree... use best tree directly:
        cons = majority_rule_consensus([result.best_tree, truth.copy(), truth.copy()])
        assert same_unrooted_topology(cons, truth) or robinson_foulds(cons, truth) <= 4
