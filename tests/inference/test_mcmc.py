"""Unit tests for proposals and the Metropolis sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import simulate_alignment
from repro.inference import (
    TreeLikelihood,
    internal_edges,
    multiply_branch,
    random_nni,
    run_mcmc,
)
from repro.models import JC69
from repro.trees import (
    balanced_tree,
    parse_newick,
    random_attachment_tree,
    robinson_foulds,
)


@pytest.fixture
def rng():
    return np.random.default_rng(51)


class TestProposals:
    def test_nni_candidate_count_is_unrooted_internal_edges(self):
        # A bifurcating tree of n tips has n − 3 internal unrooted edges.
        from repro.inference import nni_candidates

        for n in (4, 8, 16):
            t = balanced_tree(n)
            regular, pulley = nni_candidates(t)
            assert len(regular) + (1 if pulley else 0) == n - 3

    def test_nni_changes_topology(self, rng):
        t = balanced_tree(8, branch_length=0.2)
        for _ in range(10):  # every NNI, including the pulley case
            proposal = random_nni(t, rng)
            assert proposal is not None
            assert proposal.kind == "nni"
            assert proposal.log_hastings == 0.0
            assert proposal.tree.n_tips == 8
            assert proposal.tree.is_bifurcating()
            assert robinson_foulds(t, proposal.tree) > 0

    def test_nni_preserves_tip_set(self, rng):
        t = random_attachment_tree(12, 3)
        proposal = random_nni(t, rng)
        assert sorted(proposal.tree.tip_names()) == sorted(t.tip_names())

    def test_nni_none_for_tiny_trees(self, rng):
        assert random_nni(parse_newick("(a:1,b:1);"), rng) is None

    def test_nni_input_untouched(self, rng):
        t = balanced_tree(8)
        key = t.topology_key()
        random_nni(t, rng)
        assert t.topology_key() == key

    def test_multiplier_changes_one_branch(self, rng):
        t = balanced_tree(4, branch_length=0.5)
        proposal = multiply_branch(t, rng)
        assert proposal.kind == "branch"
        original = sorted(e.length for e in t.edges())
        changed = sorted(e.length for e in proposal.tree.edges())
        differences = sum(
            1 for a, b in zip(original, changed) if abs(a - b) > 1e-12
        )
        assert differences == 1

    def test_multiplier_hastings(self, rng):
        t = balanced_tree(4, branch_length=0.5)
        proposal = multiply_branch(t, rng)
        before = t.total_branch_length()
        after = proposal.tree.total_branch_length()
        m = np.exp(proposal.log_hastings)
        # Exactly one branch scaled by m.
        assert after - before == pytest.approx(0.5 * (m - 1.0), rel=1e-9)


class TestRunMCMC:
    def make_evaluator(self, mode="concurrent"):
        model = JC69()
        tree = balanced_tree(8, branch_length=0.2)
        aln = simulate_alignment(tree, model, 60, seed=52)
        return TreeLikelihood(tree, model, aln, mode=mode)

    def test_trace_length_and_accounting(self):
        result = run_mcmc(self.make_evaluator(), 30, seed=53)
        assert len(result.log_likelihoods) == 30
        assert result.proposed == 30
        assert 0 <= result.accepted <= 30
        assert 0.0 <= result.acceptance_rate <= 1.0
        assert result.kernel_launches > 30  # at least one launch per proposal

    def test_deterministic_seed(self):
        a = run_mcmc(self.make_evaluator(), 20, seed=54)
        b = run_mcmc(self.make_evaluator(), 20, seed=54)
        assert a.log_likelihoods == b.log_likelihoods

    def test_best_at_least_start(self):
        ev = self.make_evaluator()
        start_ll = ev.log_likelihood()
        result = run_mcmc(ev, 30, seed=55)
        assert result.best_log_likelihood >= start_ll - 1e-9

    def test_chain_climbs_from_bad_start(self):
        model = JC69()
        truth = balanced_tree(6, branch_length=0.15)
        aln = simulate_alignment(truth, model, 300, seed=56)
        bad = truth.copy()
        for edge in bad.edges():
            edge.length = 1.5
        ev = TreeLikelihood(bad, model, aln)
        result = run_mcmc(ev, 200, seed=57, nni_probability=0.0)
        assert result.best_log_likelihood > ev.log_likelihood() + 10

    def test_serial_mode_issues_more_launches(self):
        """The application-level effect (paper §VIII): same chain, same
        answers, far more kernel launches without concurrency."""
        serial = run_mcmc(self.make_evaluator("serial"), 25, seed=58)
        concurrent = run_mcmc(self.make_evaluator("concurrent"), 25, seed=58)
        assert serial.log_likelihoods == pytest.approx(concurrent.log_likelihoods)
        assert serial.kernel_launches > concurrent.kernel_launches
        assert serial.device_seconds > concurrent.device_seconds

    def test_device_none_skips_timing(self):
        result = run_mcmc(self.make_evaluator(), 10, seed=59, device=None)
        assert result.device_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_mcmc(self.make_evaluator(), 0)


class TestSPRMoves:
    def make_evaluator(self):
        model = JC69()
        tree = balanced_tree(10, branch_length=0.2)
        aln = simulate_alignment(tree, model, 60, seed=152)
        return TreeLikelihood(tree, model, aln)

    def test_spr_mix_runs(self):
        result = run_mcmc(
            self.make_evaluator(), 40, seed=153, nni_probability=0.2,
            spr_probability=0.3,
        )
        assert result.proposed == 40
        assert all(np.isfinite(v) for v in result.log_likelihoods)

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            run_mcmc(
                self.make_evaluator(), 5, seed=154, nni_probability=0.7,
                spr_probability=0.6,
            )

    def test_spr_explores_further(self):
        # Pure-SPR chains reach topologies pure-NNI chains need many
        # steps for; check the chain simply moves (accepts) sensibly.
        result = run_mcmc(
            self.make_evaluator(), 60, seed=155, nni_probability=0.0,
            spr_probability=0.6,
        )
        assert 0 < result.accepted <= 60


class TestLeapfrog:
    """Integrator invariants that HMC correctness rests on."""

    def quadratic_grad(self):
        # U(q) = ½ qᵀq → ∇U = q: an exactly solvable test oscillator.
        return lambda q: q

    def test_reversible(self, rng):
        from repro.inference import leapfrog

        q0 = rng.standard_normal(5)
        p0 = rng.standard_normal(5)
        q1, p1 = leapfrog(q0, p0, self.quadratic_grad(), 0.1, 25)
        # Negate momentum, integrate back, negate again: the round trip
        # recovers the start to floating-point round-off.
        q2, p2 = leapfrog(q1, -p1, self.quadratic_grad(), 0.1, 25)
        assert np.allclose(q2, q0, atol=1e-10)
        assert np.allclose(-p2, p0, atol=1e-10)

    def test_energy_conservation_scales_with_step(self):
        from repro.inference import leapfrog

        rng = np.random.default_rng(3)
        q0 = rng.standard_normal(4)
        p0 = rng.standard_normal(4)

        def energy(q, p):
            return 0.5 * float(q @ q) + 0.5 * float(p @ p)

        h0 = energy(q0, p0)
        errors = []
        for step in (0.2, 0.02):
            n = int(round(2.0 / step))  # same trajectory length
            q1, p1 = leapfrog(q0, p0, self.quadratic_grad(), step, n)
            errors.append(abs(energy(q1, p1) - h0))
        assert errors[1] < errors[0]
        assert errors[1] < 1e-3  # second-order integrator at small step

    def test_inputs_not_mutated(self, rng):
        from repro.inference import leapfrog

        q0 = rng.standard_normal(3)
        p0 = rng.standard_normal(3)
        q_copy, p_copy = q0.copy(), p0.copy()
        leapfrog(q0, p0, self.quadratic_grad(), 0.1, 5)
        assert np.array_equal(q0, q_copy) and np.array_equal(p0, p_copy)

    def test_validation(self):
        from repro.inference import leapfrog

        with pytest.raises(ValueError, match="at least one leapfrog step"):
            leapfrog(np.zeros(2), np.zeros(2), lambda q: q, 0.1, 0)


class TestRunHMC:
    def setup_evaluator(self, n=6, sites=60, seed=33):
        from repro.data import compress
        from repro.trees import yule_tree

        tree = yule_tree(n, np.random.default_rng(seed))
        aln = compress(simulate_alignment(tree, JC69(), sites, seed=seed))
        return TreeLikelihood(tree, JC69(), aln)

    def test_trace_shapes_and_accounting(self):
        from repro.inference import run_hmc

        evaluator = self.setup_evaluator()
        n_edges = 2 * evaluator.tree.n_tips - 3
        result = run_hmc(
            evaluator, 5, seed=1, step_size=0.02, n_leapfrog=4
        )
        assert len(result.log_likelihoods) == 5
        assert len(result.samples) == 5
        assert all(s.shape == (n_edges,) for s in result.samples)
        assert all((s > 0).all() for s in result.samples)
        assert result.proposed == 5
        assert 0 <= result.accepted <= 5
        assert len(result.energy_errors) == 5
        # 1 initial + per trajectory: n_leapfrog+1 kicks + 1 endpoint.
        assert result.gradient_sweeps == 1 + 5 * (4 + 2)
        # Best is the max over every visited state, initial included.
        assert result.best_log_likelihood >= max(result.log_likelihoods)

    def test_energy_errors_small_at_small_step(self):
        from repro.inference import run_hmc

        evaluator = self.setup_evaluator()
        result = run_hmc(
            evaluator, 4, seed=2, step_size=0.005, n_leapfrog=5
        )
        assert max(result.energy_errors) < 0.5
        assert result.acceptance_rate > 0.5

    def test_deterministic_seed(self):
        from repro.inference import run_hmc

        evaluator = self.setup_evaluator()
        a = run_hmc(evaluator, 4, seed=7, step_size=0.01, n_leapfrog=3)
        b = run_hmc(evaluator, 4, seed=7, step_size=0.01, n_leapfrog=3)
        assert a.log_likelihoods == b.log_likelihoods
        assert a.accepted == b.accepted

    def test_input_tree_untouched(self):
        from repro.inference import run_hmc

        evaluator = self.setup_evaluator()
        before = [e.length for e in evaluator.tree.edges()]
        run_hmc(evaluator, 3, seed=4, step_size=0.01, n_leapfrog=3)
        assert [e.length for e in evaluator.tree.edges()] == before

    def test_climbs_from_bad_start(self):
        from repro.inference import run_hmc

        evaluator = self.setup_evaluator(n=6, sites=120, seed=8)
        bad = evaluator.tree.copy()
        for edge in bad.edges():
            edge.length = 1.5
        bad.invalidate_indices()
        start = TreeLikelihood(bad, evaluator.model, evaluator.patterns)
        initial = start.log_likelihood()
        result = run_hmc(
            start, 15, seed=5, step_size=0.05, n_leapfrog=8
        )
        assert result.best_log_likelihood > initial
        assert result.accepted > 0

    def test_validation(self):
        from repro.inference import run_hmc
        from repro.trees import parse_newick

        evaluator = self.setup_evaluator()
        with pytest.raises(ValueError, match="at least one iteration"):
            run_hmc(evaluator, 0)
        tiny = TreeLikelihood(
            parse_newick("(a:0.1,b:0.1);"),
            JC69(),
            simulate_alignment(parse_newick("(a:0.1,b:0.1);"), JC69(), 10, seed=1),
        )
        with pytest.raises(ValueError, match="at least three tips"):
            run_hmc(tiny, 1)
