"""Unit tests for proposals and the Metropolis sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import simulate_alignment
from repro.inference import (
    TreeLikelihood,
    internal_edges,
    multiply_branch,
    random_nni,
    run_mcmc,
)
from repro.models import JC69
from repro.trees import (
    balanced_tree,
    parse_newick,
    random_attachment_tree,
    robinson_foulds,
)


@pytest.fixture
def rng():
    return np.random.default_rng(51)


class TestProposals:
    def test_nni_candidate_count_is_unrooted_internal_edges(self):
        # A bifurcating tree of n tips has n − 3 internal unrooted edges.
        from repro.inference import nni_candidates

        for n in (4, 8, 16):
            t = balanced_tree(n)
            regular, pulley = nni_candidates(t)
            assert len(regular) + (1 if pulley else 0) == n - 3

    def test_nni_changes_topology(self, rng):
        t = balanced_tree(8, branch_length=0.2)
        for _ in range(10):  # every NNI, including the pulley case
            proposal = random_nni(t, rng)
            assert proposal is not None
            assert proposal.kind == "nni"
            assert proposal.log_hastings == 0.0
            assert proposal.tree.n_tips == 8
            assert proposal.tree.is_bifurcating()
            assert robinson_foulds(t, proposal.tree) > 0

    def test_nni_preserves_tip_set(self, rng):
        t = random_attachment_tree(12, 3)
        proposal = random_nni(t, rng)
        assert sorted(proposal.tree.tip_names()) == sorted(t.tip_names())

    def test_nni_none_for_tiny_trees(self, rng):
        assert random_nni(parse_newick("(a:1,b:1);"), rng) is None

    def test_nni_input_untouched(self, rng):
        t = balanced_tree(8)
        key = t.topology_key()
        random_nni(t, rng)
        assert t.topology_key() == key

    def test_multiplier_changes_one_branch(self, rng):
        t = balanced_tree(4, branch_length=0.5)
        proposal = multiply_branch(t, rng)
        assert proposal.kind == "branch"
        original = sorted(e.length for e in t.edges())
        changed = sorted(e.length for e in proposal.tree.edges())
        differences = sum(
            1 for a, b in zip(original, changed) if abs(a - b) > 1e-12
        )
        assert differences == 1

    def test_multiplier_hastings(self, rng):
        t = balanced_tree(4, branch_length=0.5)
        proposal = multiply_branch(t, rng)
        before = t.total_branch_length()
        after = proposal.tree.total_branch_length()
        m = np.exp(proposal.log_hastings)
        # Exactly one branch scaled by m.
        assert after - before == pytest.approx(0.5 * (m - 1.0), rel=1e-9)


class TestRunMCMC:
    def make_evaluator(self, mode="concurrent"):
        model = JC69()
        tree = balanced_tree(8, branch_length=0.2)
        aln = simulate_alignment(tree, model, 60, seed=52)
        return TreeLikelihood(tree, model, aln, mode=mode)

    def test_trace_length_and_accounting(self):
        result = run_mcmc(self.make_evaluator(), 30, seed=53)
        assert len(result.log_likelihoods) == 30
        assert result.proposed == 30
        assert 0 <= result.accepted <= 30
        assert 0.0 <= result.acceptance_rate <= 1.0
        assert result.kernel_launches > 30  # at least one launch per proposal

    def test_deterministic_seed(self):
        a = run_mcmc(self.make_evaluator(), 20, seed=54)
        b = run_mcmc(self.make_evaluator(), 20, seed=54)
        assert a.log_likelihoods == b.log_likelihoods

    def test_best_at_least_start(self):
        ev = self.make_evaluator()
        start_ll = ev.log_likelihood()
        result = run_mcmc(ev, 30, seed=55)
        assert result.best_log_likelihood >= start_ll - 1e-9

    def test_chain_climbs_from_bad_start(self):
        model = JC69()
        truth = balanced_tree(6, branch_length=0.15)
        aln = simulate_alignment(truth, model, 300, seed=56)
        bad = truth.copy()
        for edge in bad.edges():
            edge.length = 1.5
        ev = TreeLikelihood(bad, model, aln)
        result = run_mcmc(ev, 200, seed=57, nni_probability=0.0)
        assert result.best_log_likelihood > ev.log_likelihood() + 10

    def test_serial_mode_issues_more_launches(self):
        """The application-level effect (paper §VIII): same chain, same
        answers, far more kernel launches without concurrency."""
        serial = run_mcmc(self.make_evaluator("serial"), 25, seed=58)
        concurrent = run_mcmc(self.make_evaluator("concurrent"), 25, seed=58)
        assert serial.log_likelihoods == pytest.approx(concurrent.log_likelihoods)
        assert serial.kernel_launches > concurrent.kernel_launches
        assert serial.device_seconds > concurrent.device_seconds

    def test_device_none_skips_timing(self):
        result = run_mcmc(self.make_evaluator(), 10, seed=59, device=None)
        assert result.device_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_mcmc(self.make_evaluator(), 0)


class TestSPRMoves:
    def make_evaluator(self):
        model = JC69()
        tree = balanced_tree(10, branch_length=0.2)
        aln = simulate_alignment(tree, model, 60, seed=152)
        return TreeLikelihood(tree, model, aln)

    def test_spr_mix_runs(self):
        result = run_mcmc(
            self.make_evaluator(), 40, seed=153, nni_probability=0.2,
            spr_probability=0.3,
        )
        assert result.proposed == 40
        assert all(np.isfinite(v) for v in result.log_likelihoods)

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            run_mcmc(
                self.make_evaluator(), 5, seed=154, nni_probability=0.7,
                spr_probability=0.6,
            )

    def test_spr_explores_further(self):
        # Pure-SPR chains reach topologies pure-NNI chains need many
        # steps for; check the chain simply moves (accepts) sensibly.
        result = run_mcmc(
            self.make_evaluator(), 60, seed=155, nni_probability=0.0,
            spr_probability=0.6,
        )
        assert 0 < result.accepted <= 60
