"""Schedule auditor: launch counts versus the paper's lower bounds."""

from __future__ import annotations

import pytest

from repro.analysis import ScheduleAudit, audit_plan, audit_tree
from repro.core import make_plan, optimal_reroot_fast
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree


class TestBalanced:
    def test_concurrent_plan_is_globally_optimal(self):
        plan = make_plan(balanced_tree(8, branch_length=0.1), "concurrent")
        audit = audit_plan(plan)
        assert audit.n_operations == 7
        assert audit.n_sets == 3
        assert audit.rooting_bound == 3
        assert audit.reroot_bound == 3
        assert audit.optimal_for_rooting and audit.globally_optimal
        assert audit.concurrency_speedup == pytest.approx(7 / 3)
        assert "globally optimal" in audit.format()

    def test_serial_plan_shows_grouping_gap(self):
        plan = make_plan(balanced_tree(8, branch_length=0.1), "serial")
        audit = audit_plan(plan)
        assert audit.n_sets == 7 == audit.serial_sets
        assert audit.gap_vs_rooting == 4
        assert not audit.optimal_for_rooting
        assert "suboptimal grouping" in audit.format()


class TestPectinate:
    """The paper's motivating case: optimal for the rooting, far from
    the reroot bound."""

    def test_rerooting_gap(self):
        plan = make_plan(pectinate_tree(8, branch_length=0.1), "concurrent")
        audit = audit_plan(plan)
        assert audit.n_sets == 7
        assert audit.rooting_bound == 7  # caterpillar height
        assert audit.reroot_bound == 4  # ceil(n/2) after rerooting
        assert audit.optimal_for_rooting
        assert not audit.globally_optimal
        assert audit.gap_vs_reroot == 3
        assert "rerooting would save 3 launch(es)" in audit.format()

    def test_rerooting_closes_the_gap(self):
        tree = pectinate_tree(8, branch_length=0.1)
        before = audit_plan(make_plan(tree, "concurrent"))
        rerooted = optimal_reroot_fast(tree).tree
        after = audit_plan(make_plan(rerooted, "concurrent"))
        assert after.n_sets == before.reroot_bound
        assert after.globally_optimal
        # The bound is a property of the unrooted topology: unchanged.
        assert after.reroot_bound == before.reroot_bound


class TestAuditTree:
    def test_matches_audit_plan(self):
        tree = random_attachment_tree(12, 3, random_lengths=True)
        plan = make_plan(tree, "level")
        assert audit_tree(tree, plan.n_launches, plan.n_operations) == \
            audit_plan(plan)

    def test_reroot_bound_never_exceeds_rooting_bound(self):
        for seed in range(5):
            tree = random_attachment_tree(15, seed, random_lengths=True)
            audit = audit_plan(make_plan(tree, "level"))
            assert audit.reroot_bound <= audit.rooting_bound
            assert audit.rooting_bound <= audit.n_sets


class TestScheduleAudit:
    def test_zero_sets_speedup_degenerate(self):
        audit = ScheduleAudit(
            n_operations=0, n_sets=0, rooting_bound=0, reroot_bound=0
        )
        assert audit.concurrency_speedup == 1.0

    def test_format_optimal_for_rooting_verdict(self):
        audit = ScheduleAudit(
            n_operations=7, n_sets=7, rooting_bound=7, reroot_bound=4
        )
        assert "optimal for this rooting" in audit.format()
