"""Static verification of one-sweep gradient plans, clean and corrupted."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import PlanVerificationError, verify_gradient_plan
from repro.core import make_gradient_plan
from repro.trees import (
    balanced_tree,
    parse_newick,
    pectinate_tree,
    random_attachment_tree,
)


def trees():
    return [
        balanced_tree(8, branch_length=0.1),
        pectinate_tree(9, branch_length=0.1),
        random_attachment_tree(13, 5, random_lengths=True),
        parse_newick("((A:0.1,B:0.2):0.3,(C:0.1,D:0.4):0.2);"),
    ]


class TestCleanPlans:
    @pytest.mark.parametrize("mode", ["serial", "concurrent"])
    def test_every_topology_verifies_clean(self, mode):
        for tree in trees():
            report = verify_gradient_plan(make_gradient_plan(tree, mode))
            assert report.clean, report.format()

    def test_verify_flag_raises_nothing_on_good_plans(self):
        for tree in trees():
            make_gradient_plan(tree, verify=True)  # must not raise


class TestSeededCorruptions:
    """Each structural invariant must be independently enforceable."""

    def plan(self):
        return make_gradient_plan(balanced_tree(8, branch_length=0.1))

    def test_dropped_upper_operation(self):
        gplan = self.plan()
        sets = [list(s) for s in gplan.upper_operation_sets]
        sets[0] = sets[0][1:]
        bad = replace(gplan, upper_operation_sets=sets)
        assert "upper-operation-count" in verify_gradient_plan(bad).codes()

    def test_missing_seeds(self):
        bad = replace(self.plan(), seeds=[])
        report = verify_gradient_plan(bad)
        assert "bad-upper-seeds" in report.codes()
        assert not report.ok

    def test_destination_in_lower_bank(self):
        gplan = self.plan()
        sets = [list(s) for s in gplan.upper_operation_sets]
        op = sets[0][0]
        sets[0][0] = replace(op, destination=gplan.tree.n_tips)
        bad = replace(gplan, upper_operation_sets=sets)
        assert "upper-destination-in-lower-bank" in verify_gradient_plan(
            bad
        ).codes()

    def test_child1_from_upper_bank(self):
        gplan = self.plan()
        sets = [list(s) for s in gplan.upper_operation_sets]
        op = sets[0][0]
        sets[0][0] = replace(op, child1=op.child2)
        bad = replace(gplan, upper_operation_sets=sets)
        assert "upper-child1-not-lower" in verify_gradient_plan(bad).codes()

    def test_child2_from_lower_bank(self):
        gplan = self.plan()
        sets = [list(s) for s in gplan.upper_operation_sets]
        op = sets[0][0]
        sets[0][0] = replace(op, child2=op.child1)
        bad = replace(gplan, upper_operation_sets=sets)
        assert "upper-child2-not-upper" in verify_gradient_plan(bad).codes()

    def test_rewritten_upper_buffer(self):
        gplan = self.plan()
        sets = [list(s) for s in gplan.upper_operation_sets]
        sets.append([sets[0][0]])
        bad = replace(gplan, upper_operation_sets=sets)
        codes = verify_gradient_plan(bad).codes()
        assert "upper-buffer-rewritten" in codes
        assert "upper-operation-count" in codes  # the duplicate also miscounts

    def test_wrong_pulley_matrix(self):
        bad = replace(self.plan(), pulley_matrix=0)
        assert "bad-pulley-matrix" in verify_gradient_plan(bad).codes()

    def test_negative_pulley_length(self):
        bad = replace(self.plan(), pulley_length=-0.5)
        report = verify_gradient_plan(bad)
        assert "invalid-branch-length" in report.codes()
        assert not report.ok

    def test_stale_pulley_length_is_a_warning(self):
        # A drifted-but-valid length is stale, not structurally unsound:
        # the sweep still runs, but the pulley gradient is evaluated at
        # the wrong point.
        bad = replace(self.plan(), pulley_length=self.plan().pulley_length + 1)
        report = verify_gradient_plan(bad)
        assert "stale-pulley-length" in report.codes()
        assert report.ok and not report.clean
        assert len(report.warnings) == 1

    def test_verify_flag_raises_on_corruption(self):
        gplan = self.plan()
        bad = replace(gplan, seeds=[])
        with pytest.raises(PlanVerificationError):
            verify_gradient_plan(bad).raise_if_errors()
