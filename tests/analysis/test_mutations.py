"""Mutation-testing the analyzer: every corruption class must be caught."""

from __future__ import annotations

import pytest

from repro.analysis import (
    MUTATION_KINDS,
    analyze_mutation,
    mutate_plan,
    seed_mutations,
    verify_plan,
)
from repro.core import make_plan
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree


def plans():
    out = []
    for tree in (
        balanced_tree(8, branch_length=0.1),
        pectinate_tree(8, branch_length=0.1),
        random_attachment_tree(11, 4, random_lengths=True),
    ):
        for mode in ("serial", "concurrent", "level"):
            for scaling in (False, True):
                out.append(make_plan(tree, mode, scaling=scaling))
    return out


@pytest.mark.parametrize(
    "plan", plans(), ids=lambda p: f"{p.tree.n_tips}t-{p.mode}-"
    f"{'scale' if p.scaling else 'noscale'}"
)
def test_every_seeded_mutation_is_flagged(plan):
    assert verify_plan(plan).clean
    mutations = seed_mutations(plan)
    assert mutations  # the seeder always finds applicable corruptions
    for mutation in mutations:
        report = analyze_mutation(mutation)
        flagged = {d.code for d in report.errors} & mutation.expect_codes
        assert flagged, (
            f"mutation {mutation.kind!r} ({mutation.description}) "
            f"survived verification: {report.format()}"
        )


class TestSeeder:
    def test_original_plan_is_untouched(self):
        plan = make_plan(balanced_tree(8, branch_length=0.1), "concurrent")
        before = [list(s) for s in plan.operation_sets]
        seed_mutations(plan)
        assert [list(s) for s in plan.operation_sets] == before
        assert verify_plan(plan).clean

    def test_scale_mutations_need_scaling(self):
        plan = make_plan(balanced_tree(8, branch_length=0.1), "concurrent")
        kinds = {m.kind for m in seed_mutations(plan)}
        assert "cumulative-scale-write" not in kinds
        assert "alias-scale" not in kinds
        scaled = make_plan(
            balanced_tree(8, branch_length=0.1), "concurrent", scaling=True
        )
        scaled_kinds = {m.kind for m in seed_mutations(scaled)}
        assert {"cumulative-scale-write", "alias-scale"} <= scaled_kinds

    def test_all_kinds_applicable_on_scaled_plan(self):
        # Balanced: its concurrent schedule has multi-operation sets, so
        # even the intra-set corruption classes apply.
        plan = make_plan(
            balanced_tree(8, branch_length=0.1), "concurrent", scaling=True
        )
        assert {m.kind for m in seed_mutations(plan)} == set(MUTATION_KINDS)

    def test_intra_set_alias_needs_a_multi_op_set(self):
        # Pectinate serial/concurrent schedules are one-op-per-set, so
        # the intra-set WAW corruption cannot apply there.
        plan = make_plan(pectinate_tree(8, branch_length=0.1), "concurrent")
        assert mutate_plan(plan, "intra-set-alias") is None
        wide = make_plan(balanced_tree(8, branch_length=0.1), "concurrent")
        mutation = mutate_plan(wide, "intra-set-alias")
        assert mutation is not None
        report = analyze_mutation(mutation)
        assert report.has_code("race-waw")
        assert report.has_code("write-write-hazard")


class TestMutatePlan:
    def test_single_kind(self):
        plan = make_plan(balanced_tree(8, branch_length=0.1), "concurrent")
        mutation = mutate_plan(plan, "tip-overwrite")
        assert mutation is not None and mutation.kind == "tip-overwrite"
        assert verify_plan(mutation.plan).has_code("tip-overwrite")

    def test_unknown_kind(self):
        plan = make_plan(balanced_tree(4, branch_length=0.1), "serial")
        with pytest.raises(ValueError, match="unknown mutation kind"):
            mutate_plan(plan, "frobnicate")

    def test_inapplicable_kind_returns_none(self):
        plan = make_plan(balanced_tree(4, branch_length=0.1), "serial")
        assert mutate_plan(plan, "alias-scale") is None

    def test_swap_across_sets_targets_a_real_dependency(self):
        plan = make_plan(pectinate_tree(8, branch_length=0.1), "concurrent")
        mutation = mutate_plan(plan, "swap-across-sets")
        assert mutation is not None
        report = verify_plan(mutation.plan)
        assert not report.ok
        assert {d.code for d in report.errors} & mutation.expect_codes
