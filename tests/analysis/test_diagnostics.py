"""Unit tests for the diagnostics model."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    PlanVerificationError,
    Severity,
)


def diag(code="read-before-write", severity=Severity.ERROR, **kw):
    return Diagnostic(code=code, severity=severity, message="msg", **kw)


class TestDiagnostic:
    def test_format_has_code_and_severity(self):
        d = diag(set_index=2, op_index=5, hint="do the thing")
        text = d.format()
        assert "error[read-before-write]" in text
        assert "set 2" in text and "op 5" in text
        assert "do the thing" in text

    def test_format_without_coordinates(self):
        assert diag().format().startswith("error[read-before-write]: msg")

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_frozen(self):
        with pytest.raises(Exception):
            diag().code = "other"


class TestAnalysisReport:
    def test_empty_is_clean_and_ok(self):
        report = AnalysisReport()
        assert report.clean and report.ok
        assert report.format() == "no diagnostics"
        assert report.raise_if_errors() is report

    def test_warnings_do_not_fail(self):
        report = AnalysisReport([diag(severity=Severity.WARNING)])
        assert report.ok and not report.clean
        assert len(report.warnings) == 1
        report.raise_if_errors()  # no raise

    def test_errors_fail(self):
        report = AnalysisReport([diag(), diag(severity=Severity.WARNING)])
        assert not report.ok
        assert len(report.errors) == 1
        with pytest.raises(PlanVerificationError):
            report.raise_if_errors()

    def test_error_is_value_error(self):
        # Pre-analyzer call sites catch ValueError; the contract holds.
        with pytest.raises(ValueError):
            AnalysisReport([diag()]).raise_if_errors()

    def test_codes_histogram(self):
        report = AnalysisReport([diag(), diag(), diag(code="dead-write")])
        assert report.codes() == {"read-before-write": 2, "dead-write": 1}
        assert report.has_code("dead-write")
        assert len(report.by_code("read-before-write")) == 2

    def test_error_carries_diagnostics(self):
        try:
            AnalysisReport([diag(op_index=3)]).raise_if_errors()
        except PlanVerificationError as exc:
            assert exc.diagnostics[0].op_index == 3
        else:  # pragma: no cover
            pytest.fail("expected PlanVerificationError")
