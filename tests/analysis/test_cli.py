"""Exit codes and output of ``python -m repro.analysis``."""

from __future__ import annotations

import io

from repro.analysis.cli import build_parser, run


def invoke(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


class TestLint:
    def test_clean_plan_exits_zero(self):
        code, text = invoke(["--taxa", "8"])
        assert code == 0
        assert "8 tips" in text
        assert "plan verifies clean" in text

    def test_quiet_and_no_audit(self):
        code, text = invoke(["--taxa", "8", "-q", "--no-audit"])
        assert code == 0
        assert "lower bound" not in text

    def test_audit_reports_bounds(self):
        code, text = invoke(["--taxa", "8", "--pectinate"])
        assert code == 0
        assert "rooting lower bound:   7" in text
        assert "reroot lower bound:    4" in text

    def test_reroot_closes_the_gap(self):
        code, text = invoke(["--taxa", "8", "--pectinate", "--reroot"])
        assert code == 0
        assert "globally optimal" in text

    def test_all_modes_and_scaling(self):
        for mode in ("serial", "concurrent", "level"):
            code, _ = invoke(["--taxa", "6", "--mode", mode, "--manualscale"])
            assert code == 0

    def test_randomtree(self):
        code, _ = invoke(["--taxa", "10", "--randomtree", "--seed", "7"])
        assert code == 0


class TestNewickSource:
    def test_newick_file(self, tmp_path):
        path = tmp_path / "tree.nwk"
        path.write_text("((A:0.1,B:0.2):0.3,(C:0.1,D:0.4):0.2);")
        code, text = invoke(["--newick", str(path)])
        assert code == 0
        assert "4 tips" in text

    def test_multifurcating_newick_is_resolved(self, tmp_path):
        path = tmp_path / "star.nwk"
        path.write_text("(A:0.1,B:0.2,C:0.3,D:0.4);")
        code, _ = invoke(["--newick", str(path)])
        assert code == 0

    def test_missing_file_is_usage_error(self):
        code, text = invoke(["--newick", "/nonexistent/tree.nwk"])
        assert code == 2
        assert "error:" in text

    def test_garbage_newick_is_usage_error(self, tmp_path):
        path = tmp_path / "bad.nwk"
        path.write_text("this is not a tree")
        code, text = invoke(["--newick", str(path)])
        assert code == 2
        assert "error:" in text


class TestUsageErrors:
    def test_exclusive_topology_flags(self):
        code, text = invoke(["--pectinate", "--randomtree"])
        assert code == 2
        assert "exclusive" in text

    def test_taxa_too_small(self):
        code, _ = invoke(["--taxa", "1"])
        assert code == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.mode == "concurrent"
        assert args.taxa == 16
        assert not args.self_check


class TestSelfCheck:
    def test_passes_on_small_trio(self):
        code, text = invoke(["--self-check", "--taxa", "8"])
        assert code == 0
        assert "18 plans verified" in text
        assert "self-check passed" in text
