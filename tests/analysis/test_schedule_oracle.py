"""The static race verdict against an execution oracle.

The prover (:func:`repro.analysis.races.check_set_races`) claims that a
race-free operation set may execute its operations in *any* order with
bit-identical results, and that an intra-set WAW hazard makes the result
order-dependent. Both directions are checked here by actually executing
random schedules (drawn by ``operation_schedule_strategy``) operation by
operation: clean schedules are run in submission order and in a random
per-set permutation and must agree to the last bit; aliased (racy)
schedules are run forward and reversed and the doubly-written buffer
must come out different.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_set_races
from repro.analysis.diagnostics import Severity
from repro.core import create_instance
from repro.data import random_patterns
from repro.models import JC69
from tests.strategies import operation_schedule_strategy


def _run_ordered(plan, orders, n_sets=None):
    """Execute the plan one operation at a time, per-set order given."""
    tree = plan.tree
    patterns = random_patterns(tree.tip_names(), 16, seed=7)
    instance = create_instance(tree, JC69(), patterns)
    instance.invalidate_partials()
    instance.update_transition_matrices(
        0, plan.matrix_indices, plan.branch_lengths
    )
    sets = plan.operation_sets if n_sets is None else plan.operation_sets[:n_sets]
    for op_set, order in zip(sets, orders):
        for j in order:
            instance.update_partials_serial([op_set[j]])
    return instance


def _identity_orders(plan):
    return [list(range(len(s))) for s in plan.operation_sets]


def _aliased_destination(plan):
    """``(set_index, destination)`` written twice in one set, or None.

    Returned so the racy oracle can stop executing after the corrupted
    set — the alias leaves the victim's original destination unwritten,
    so later sets reading it would trip the engine's read-before-write
    guard instead of exercising the race.
    """
    for s, op_set in enumerate(plan.operation_sets):
        destinations = [op.destination for op in op_set]
        for d in destinations:
            if destinations.count(d) > 1:
                return s, d
    return None


@settings(max_examples=20, deadline=None)
@given(operation_schedule_strategy(max_tips=12), st.integers(0, 2**31 - 1))
def test_race_verdict_agrees_with_execution_oracle(schedule, perm_seed):
    plan, racy = schedule
    diagnostics = check_set_races(plan.operation_sets)
    clean = not [d for d in diagnostics if d.severity is Severity.ERROR]
    if not racy:
        # Verdict must be clean, and the claim it encodes must hold:
        # any within-set execution order is bit-identical.
        assert clean, [d.format() for d in diagnostics]
        rng = np.random.default_rng(perm_seed)
        shuffled = [
            list(rng.permutation(len(s))) for s in plan.operation_sets
        ]
        sequential = _run_ordered(plan, _identity_orders(plan))
        permuted = _run_ordered(plan, shuffled)
        ref = sequential.calculate_root_log_likelihood(plan.root_buffer)
        got = permuted.calculate_root_log_likelihood(plan.root_buffer)
        assert ref == got
        for op_set in plan.operation_sets:
            for op in op_set:
                np.testing.assert_array_equal(
                    sequential.get_partials(op.destination),
                    permuted.get_partials(op.destination),
                )
    else:
        # The prover must flag the WAW hazard...
        assert not clean
        assert any(d.code == "race-waw" for d in diagnostics)
        # ...and the hazard must be real: the doubly-written buffer's
        # contents depend on which write lands last. Execute only
        # through the corrupted set — the race is decided there.
        found = _aliased_destination(plan)
        assert found is not None
        set_index, aliased = found
        prefix = plan.operation_sets[: set_index + 1]
        forward = _run_ordered(
            plan, [list(range(len(s))) for s in prefix], n_sets=len(prefix)
        )
        backward = _run_ordered(
            plan,
            [list(reversed(range(len(s)))) for s in prefix],
            n_sets=len(prefix),
        )
        assert not np.array_equal(
            forward.get_partials(aliased), backward.get_partials(aliased)
        )


@settings(max_examples=20, deadline=None)
@given(operation_schedule_strategy(allow_racy=False, max_tips=16))
def test_planner_schedules_always_prove_race_free(schedule):
    plan, racy = schedule
    assert not racy
    assert check_set_races(plan.operation_sets) == []
