"""The ast-based docstring-coverage checker and its allowlist gate."""

from __future__ import annotations

import io

from repro.analysis.cli import run
from repro.analysis.docstrings import (
    check_package,
    load_allowlist,
    scan_package,
    scan_source,
)

SOURCE = '''"""Module docstring."""

def documented():
    """Has one."""

def missing():
    pass

def _private():
    pass

class Widget:
    """Documented class."""

    def method(self):
        pass

    def good(self):
        """Fine."""

    def _hidden(self):
        pass

class Bare:
    pass

def outer():
    """Documented."""
    def inner():  # nested in a function body: not part of the API
        pass
'''


def test_scan_source_finds_public_gaps_only():
    findings, total, documented = scan_source(SOURCE, "pkg/mod.py")
    keys = {f.key for f in findings}
    assert keys == {
        "pkg/mod.py:missing",
        "pkg/mod.py:Widget.method",
        "pkg/mod.py:Bare",
    }
    assert total == 7  # documented, missing, Widget(+2 methods), Bare, outer
    assert documented == 4
    kinds = {f.qualname: f.kind for f in findings}
    assert kinds["Bare"] == "class"
    assert kinds["Widget.method"] == "method"


def test_scan_source_reports_line_numbers():
    findings, _, _ = scan_source("def f():\n    pass\n", "m.py")
    (finding,) = findings
    assert finding.lineno == 1
    assert "m.py:1" in finding.format()


def test_scan_package_walks_subpackages(tmp_path):
    package = tmp_path / "pkg"
    (package / "sub").mkdir(parents=True)
    (package / "mod.py").write_text('"""Doc."""\n\ndef f():\n    pass\n')
    (package / "sub" / "deep.py").write_text("def g():\n    pass\n")
    report = scan_package(package)
    assert {f.key for f in report.missing} == {"mod.py:f", "sub/deep.py:g"}
    assert report.total_public == 2


def test_allowlist_suppresses_and_stale_entries_fail(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text("def f():\n    pass\n")

    allowlist = tmp_path / "allow.txt"
    allowlist.write_text("# comment\n\nmod.py:f\n")
    report = check_package(package, allowlist_path=allowlist)
    assert report.ok
    assert [f.key for f in report.suppressed] == ["mod.py:f"]
    assert report.missing == []

    # Fixing the gap without pruning the allowlist turns into a failure.
    (package / "mod.py").write_text('def f():\n    """Doc."""\n')
    report = check_package(package, allowlist_path=allowlist)
    assert not report.ok
    assert report.stale_entries == ["mod.py:f"]


def test_load_allowlist_skips_blanks_and_comments(tmp_path):
    path = tmp_path / "allow.txt"
    path.write_text("# header\n\na.py:f\n  b.py:G.m  \n")
    assert load_allowlist(path) == {"a.py:f", "b.py:G.m"}


def test_finding_format_is_path_line_qualname():
    findings, total, documented = scan_source(SOURCE, "m.py")
    text_findings = [f.format() for f in findings]
    assert all(":" in line for line in text_findings)
    assert 0.0 < documented / total < 1.0


def test_repo_gate_passes_via_cli():
    out = io.StringIO()
    code = run(["--docstrings"], out=out)
    text = out.getvalue()
    assert code == 0, text
    assert "docstring coverage gate passed" in text


def test_cli_fails_on_undocumented_package(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text("def f():\n    pass\n")
    out = io.StringIO()
    code = run(["--docstrings", "--docstrings-root", str(package)], out=out)
    assert code == 1
    assert "mod.py:1" in out.getvalue()
