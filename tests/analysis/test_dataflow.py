"""Dataflow engine tests on handcrafted operation streams.

Every diagnostic code gets at least one stream that triggers it and a
nearby stream that does not; the fixture layout is a 4-tip balanced
tree: tips 0-3, internals 4-6 (root), matrices 0-6, scale bank of 4
slots with slot 3 reserved for the cumulative accumulator.
"""

from __future__ import annotations

import pytest

from repro.analysis import BufferConfig, PlanVerificationError
from repro.analysis.dataflow import analyze_operation_sets, analyze_stream
from repro.beagle.operations import Operation, validate_operation_order

CONFIG = BufferConfig(
    tip_count=4, partials_buffer_count=3, matrix_count=7, scale_buffer_count=4
)

OP_A = Operation(destination=4, child1=0, child1_matrix=0, child2=1, child2_matrix=1)
OP_B = Operation(destination=5, child1=2, child1_matrix=2, child2=3, child2_matrix=3)
OP_C = Operation(destination=6, child1=4, child1_matrix=4, child2=5, child2_matrix=5)

VALID_SETS = [[OP_A, OP_B], [OP_C]]
ALL_MATRICES = [0, 1, 2, 3, 4, 5]


def codes(diagnostics):
    return {d.code for d in diagnostics}


def check(operation_sets, **kw):
    kw.setdefault("root_buffer", 6)
    return analyze_operation_sets(operation_sets, CONFIG, **kw)


class TestCleanStreams:
    def test_valid_plan_is_clean(self):
        assert check(VALID_SETS, matrix_updates=ALL_MATRICES) == []

    def test_serial_order_is_clean(self):
        assert analyze_stream([OP_A, OP_B, OP_C], CONFIG, root_buffer=6) == []

    def test_assume_valid_suppresses_read_before_write(self):
        # Incremental plan: only the root is recomputed; 4 and 5 are live
        # from the previous evaluation.
        assert check([[OP_C]], assume_valid={4, 5}) == []
        assert "read-before-write" in codes(check([[OP_C]]))


class TestOrderingHazards:
    def test_cross_set_dependency(self):
        diags = check([[OP_C], [OP_A, OP_B]], check_dead_writes=False)
        assert "cross-set-dependency" in codes(diags)
        hit = next(d for d in diags if d.code == "cross-set-dependency")
        assert hit.set_index == 0 and set(hit.buffers) <= {4, 5}

    def test_intra_set_dependency(self):
        diags = check([[OP_A, OP_B, OP_C]])
        assert "intra-set-dependency" in codes(diags)

    def test_reads_own_destination(self):
        loop = Operation(
            destination=4, child1=4, child1_matrix=0, child2=1, child2_matrix=1
        )
        assert "intra-set-dependency" in codes(check([[loop]], root_buffer=4))

    def test_read_before_write(self):
        diags = check([[OP_C]])
        assert codes(diags) == {"read-before-write"}
        assert len(diags) == 2  # both children uninitialized

    def test_write_write_hazard(self):
        clash = Operation(
            destination=4, child1=2, child1_matrix=2, child2=3, child2_matrix=3
        )
        diags = check([[OP_A, clash], [OP_C]])
        assert "write-write-hazard" in codes(diags)

    def test_buffer_rewritten_is_warning(self):
        rewrite = Operation(
            destination=4, child1=2, child1_matrix=2, child2=3, child2_matrix=3
        )
        diags = check([[OP_A], [rewrite], [OP_B], [OP_C]])
        rewrites = [d for d in diags if d.code == "buffer-rewritten"]
        assert len(rewrites) == 1
        assert rewrites[0].severity.label == "warning"


class TestRangeChecks:
    def test_tip_overwrite(self):
        bad = Operation(
            destination=1, child1=0, child1_matrix=0, child2=2, child2_matrix=2
        )
        assert "tip-overwrite" in codes(check([[bad]], root_buffer=1))

    def test_destination_out_of_range(self):
        bad = Operation(
            destination=99, child1=0, child1_matrix=0, child2=1, child2_matrix=1
        )
        assert "index-out-of-range" in codes(check([[bad]], root_buffer=99))

    def test_read_out_of_range(self):
        bad = Operation(
            destination=4, child1=77, child1_matrix=0, child2=1, child2_matrix=1
        )
        diags = check([[bad]], root_buffer=4)
        assert "index-out-of-range" in codes(diags)
        # An invalid read must not also be misreported as uninitialized.
        assert "read-before-write" not in codes(diags)

    def test_matrix_out_of_range(self):
        bad = Operation(
            destination=4, child1=0, child1_matrix=42, child2=1, child2_matrix=1
        )
        assert "index-out-of-range" in codes(check([[bad]], root_buffer=4))


class TestMatrixUpdates:
    def test_matrix_not_updated(self):
        diags = check(VALID_SETS, matrix_updates=[0, 1, 2, 3, 4])  # 5 missing
        assert "matrix-not-updated" in codes(diags)
        hit = next(d for d in diags if d.code == "matrix-not-updated")
        assert hit.buffers == (5,)

    def test_duplicate_update_is_warning(self):
        diags = check(VALID_SETS, matrix_updates=ALL_MATRICES + [0])
        dupes = [d for d in diags if d.code == "duplicate-matrix-update"]
        assert len(dupes) == 1 and dupes[0].severity.label == "warning"

    def test_update_entry_out_of_range(self):
        diags = check(VALID_SETS, matrix_updates=ALL_MATRICES + [99])
        assert "index-out-of-range" in codes(diags)

    def test_no_table_no_matrix_checks(self):
        assert check(VALID_SETS) == []


class TestDeadWrites:
    def test_unread_non_root_write(self):
        diags = check([[OP_A, OP_B], [OP_C]], root_buffer=4)
        # OP_C's destination 6 is neither read nor the root.
        dead = [d for d in diags if d.code == "dead-write"]
        assert len(dead) == 1 and dead[0].buffers == (6,)

    def test_root_write_is_live(self):
        assert check(VALID_SETS) == []

    def test_check_can_be_disabled(self):
        assert check([[OP_A, OP_B], [OP_C]], root_buffer=4,
                     check_dead_writes=False) == []


class TestScaleDiscipline:
    def scaled(self, op, slot):
        return Operation(
            destination=op.destination,
            child1=op.child1,
            child1_matrix=op.child1_matrix,
            child2=op.child2,
            child2_matrix=op.child2_matrix,
            destination_scale=slot,
        )

    def test_clean_scaled_plan(self):
        sets = [[self.scaled(OP_A, 0), self.scaled(OP_B, 1)],
                [self.scaled(OP_C, 2)]]
        assert check(sets) == []

    def test_scale_without_buffers(self):
        noscale = BufferConfig(tip_count=4, partials_buffer_count=3, matrix_count=7)
        diags = analyze_operation_sets(
            [[self.scaled(OP_A, 0)]], noscale, root_buffer=4
        )
        assert "scale-without-buffers" in codes(diags)

    def test_cumulative_slot_is_reserved(self):
        diags = check([[self.scaled(OP_A, 3)]], root_buffer=4)
        assert "cumulative-scale-write" in codes(diags)

    def test_scale_slot_out_of_range(self):
        diags = check([[self.scaled(OP_A, 9)]], root_buffer=4)
        assert "index-out-of-range" in codes(diags)

    def test_scale_aliasing(self):
        sets = [[self.scaled(OP_A, 0), self.scaled(OP_B, 0)],
                [self.scaled(OP_C, 1)]]
        assert "scale-aliasing" in codes(check(sets))


class TestValidateOperationOrder:
    """Satellite: the beagle-layer validator now reports specifics."""

    def test_valid_order_passes(self):
        validate_operation_order([OP_A, OP_B, OP_C])

    def test_violation_names_the_buffers(self):
        with pytest.raises(PlanVerificationError) as exc_info:
            validate_operation_order([OP_C, OP_A, OP_B])
        diags = exc_info.value.diagnostics
        assert len(diags) == 2  # both of OP_C's reads are too early
        assert all(d.code == "cross-set-dependency" for d in diags)
        assert {d.buffers[0] for d in diags} == {4, 5}
        assert all(d.op_index == 0 for d in diags)
        assert "before operation" in diags[0].message

    def test_still_a_value_error(self):
        with pytest.raises(ValueError):
            validate_operation_order([OP_C, OP_A, OP_B])
