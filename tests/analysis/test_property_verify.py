"""Hypothesis properties: planners never emit a plan the verifier
rejects, and the verifier never passes a seeded corruption."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    MUTATION_KINDS,
    BufferConfig,
    analyze_mutation,
    audit_plan,
    mutate_plan,
    seed_mutations,
    verify_operation_sets,
    verify_plan,
)
from repro.core import incremental_operation_sets, make_plan
from tests.strategies import tree_strategy

MODES = ("serial", "concurrent", "level")


@given(
    tree_strategy(min_tips=3, max_tips=24),
    st.sampled_from(MODES),
    st.booleans(),
)
def test_planner_output_always_verifies_clean(tree, mode, scaling):
    plan = make_plan(tree, mode, scaling=scaling)
    report = verify_plan(plan)
    assert report.clean, report.format()


@given(tree_strategy(min_tips=3, max_tips=24), st.sampled_from(MODES))
def test_launch_count_respects_the_bounds(tree, mode):
    audit = audit_plan(make_plan(tree, mode))
    assert audit.reroot_bound <= audit.rooting_bound <= audit.n_sets
    assert audit.n_sets <= audit.serial_sets
    if mode == "level":
        # Height grouping achieves the per-rooting lower bound exactly.
        assert audit.optimal_for_rooting


@settings(max_examples=25)
@given(
    tree_strategy(min_tips=4, max_tips=20),
    st.sampled_from(MODES),
    st.sampled_from(MUTATION_KINDS),
    st.booleans(),
)
def test_no_seeded_mutation_survives(tree, mode, kind, scaling):
    plan = make_plan(tree, mode, scaling=scaling)
    mutation = mutate_plan(plan, kind)
    if mutation is None:  # corruption class not applicable to this plan
        return
    report = analyze_mutation(mutation)
    flagged = {d.code for d in report.errors} & mutation.expect_codes
    assert flagged, (
        f"{mutation.kind}: {mutation.description} survived; "
        f"analyzer said: {report.format()}"
    )


@settings(max_examples=25)
@given(tree_strategy(min_tips=4, max_tips=20))
def test_seeder_covers_core_kinds(tree):
    plan = make_plan(tree, "concurrent", scaling=True)
    kinds = {m.kind for m in seed_mutations(plan)}
    # Classes applicable to every scaled multi-operation plan.
    assert {
        "alias-destination",
        "drop-operation",
        "drop-matrix-update",
        "tip-overwrite",
        "out-of-range",
        "cumulative-scale-write",
    } <= kinds


@settings(max_examples=25)
@given(tree_strategy(min_tips=3, max_tips=24), st.integers(0, 10**6))
def test_incremental_dirty_paths_verify(tree, pick):
    edges = tree.edges()
    changed = [edges[pick % len(edges)]]
    sets = incremental_operation_sets(tree, changed, verify=True)
    # verify=True raised on any hazard; re-check the contract manually.
    config = BufferConfig.for_tree(tree)
    recomputed = {op.destination for s in sets for op in s}
    clean = set(range(tree.n_tips, config.n_buffers)) - recomputed
    report = verify_operation_sets(
        sets,
        config,
        assume_valid=clean,
        root_buffer=tree.index_of(tree.root),
    )
    assert report.clean, report.format()
