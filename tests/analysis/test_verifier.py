"""Whole-plan verification across every planner in the library."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import (
    BufferConfig,
    PlanVerificationError,
    verify_instance_compat,
    verify_operation_sets,
    verify_plan,
)
from repro.core import incremental_operation_sets, make_plan
from repro.core.planner import create_instance
from repro.data import compress, simulate_alignment
from repro.models import JC69
from repro.partition import PartitionedLikelihood, partition_by_ranges
from repro.trees import (
    balanced_tree,
    parse_newick,
    pectinate_tree,
    random_attachment_tree,
)

MODES = ("serial", "concurrent", "level")


def trees():
    return [
        balanced_tree(8, branch_length=0.1),
        pectinate_tree(9, branch_length=0.1),
        random_attachment_tree(13, 5, random_lengths=True),
        parse_newick("((A:0.1,B:0.2):0.3,(C:0.1,D:0.4):0.2);"),
    ]


class TestPlannerPlansVerifyClean:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("scaling", [False, True])
    def test_all_modes_and_topologies(self, mode, scaling):
        for tree in trees():
            plan = make_plan(tree, mode, scaling=scaling)
            report = verify_plan(plan)
            assert report.clean, report.format()

    def test_instance_layout_matches(self):
        tree = balanced_tree(8, branch_length=0.1)
        plan = make_plan(tree, "concurrent")
        aln = simulate_alignment(tree, JC69(), 40, seed=3)
        instance = create_instance(tree, JC69(), compress(aln))
        assert verify_instance_compat(plan, instance).clean

    def test_config_and_instance_are_exclusive(self):
        tree = balanced_tree(4, branch_length=0.1)
        plan = make_plan(tree, "serial")
        aln = simulate_alignment(tree, JC69(), 20, seed=3)
        instance = create_instance(tree, JC69(), compress(aln))
        with pytest.raises(ValueError):
            verify_plan(
                plan,
                config=BufferConfig.for_tree(tree),
                instance=instance,
            )

    def test_undersized_instance_is_flagged(self):
        # A plan for a 9-tip tree checked against an 8-tip layout must
        # produce out-of-range reads, not pass silently.
        plan = make_plan(pectinate_tree(9, branch_length=0.1), "concurrent")
        small = BufferConfig.for_tree(balanced_tree(8, branch_length=0.1))
        report = verify_plan(plan, config=small)
        assert report.has_code("index-out-of-range")


class TestVerifyFlag:
    def test_make_plan_verify_true_passes(self):
        plan = make_plan(
            balanced_tree(8, branch_length=0.1), "concurrent", verify=True
        )
        assert plan.n_launches == 3

    def test_partitioned_likelihood_verifies(self):
        tree = random_attachment_tree(10, 7, random_lengths=True)
        aln = simulate_alignment(tree, JC69(), 60, seed=11)
        dataset = partition_by_ranges(
            aln, [(0, 30), (30, 60)], [JC69(), JC69()]
        )
        pl = PartitionedLikelihood(tree, dataset, verify=True)
        assert pl.verify
        rerooted = pl.with_tree(pl.tree)
        assert rerooted.verify


class TestPlanStructure:
    def test_negative_branch_length(self):
        plan = make_plan(balanced_tree(4, branch_length=0.1), "serial")
        broken = replace(
            plan, branch_lengths=[-1.0] + list(plan.branch_lengths)[1:]
        )
        report = verify_plan(broken)
        assert report.has_code("invalid-branch-length")

    def test_matrix_update_shape(self):
        plan = make_plan(balanced_tree(4, branch_length=0.1), "serial")
        broken = replace(plan, branch_lengths=list(plan.branch_lengths)[:-1])
        assert verify_plan(broken).has_code("matrix-update-shape")

    def test_empty_plan_reports_structure(self):
        plan = make_plan(balanced_tree(4, branch_length=0.1), "serial")
        broken = replace(plan, operation_sets=[])
        report = verify_plan(broken)
        assert report.has_code("root-not-written")
        assert report.has_code("operation-count")

    def test_missing_scale_write_is_warning(self):
        plan = make_plan(
            balanced_tree(4, branch_length=0.1), "serial", scaling=True
        )
        stripped = [
            [replace(op, destination_scale=-1) for op in op_set]
            for op_set in plan.operation_sets
        ]
        report = verify_plan(replace(plan, operation_sets=stripped))
        assert report.ok  # warning only
        assert report.has_code("missing-scale-write")


class TestIncrementalVerification:
    def test_dirty_path_sets_verify(self):
        tree = pectinate_tree(10, branch_length=0.1)
        edge = tree.edges()[4]
        sets = incremental_operation_sets(tree, [edge], verify=True)
        assert sets  # a real dirty path exists

    def test_manual_equivalent_of_incremental_contract(self):
        tree = balanced_tree(8, branch_length=0.1)
        tip = tree.tips()[0]
        sets = incremental_operation_sets(tree, [tip])
        config = BufferConfig.for_tree(tree)
        recomputed = {op.destination for s in sets for op in s}
        clean = set(range(tree.n_tips, config.n_buffers)) - recomputed
        report = verify_operation_sets(
            sets,
            config,
            assume_valid=clean,
            root_buffer=tree.index_of(tree.root),
        )
        assert report.clean, report.format()
        # Without the liveness assumption the same schedule is rejected:
        # it reads partials it never computes.
        bare = verify_operation_sets(
            sets, config, root_buffer=tree.index_of(tree.root)
        )
        assert bare.has_code("read-before-write")

    def test_verify_raises_on_corrupted_dirty_path(self):
        tree = pectinate_tree(8, branch_length=0.1)
        tip = tree.tips()[0]
        sets = incremental_operation_sets(tree, [tip])
        config = BufferConfig.for_tree(tree)
        recomputed = {op.destination for s in sets for op in s}
        clean = set(range(tree.n_tips, config.n_buffers)) - recomputed
        reordered = list(reversed(sets))
        report = verify_operation_sets(
            reordered,
            config,
            assume_valid=clean,
            root_buffer=tree.index_of(tree.root),
        )
        if len(sets) > 1:
            assert not report.ok
            with pytest.raises(PlanVerificationError):
                report.raise_if_errors()
