"""Unit and property tests for optimal rerooting (the paper's §V, §VI-E)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.core import (
    count_operation_sets,
    edge_rooting_heights,
    min_operation_sets,
    optimal_reroot_exhaustive,
    optimal_reroot_fast,
    rerooted_pectinate_sets,
)
from repro.trees import (
    balanced_tree,
    pectinate_tree,
    random_attachment_tree,
    reroot_on_edge,
    root_tip_split,
    same_unrooted_topology,
    unrooted_edges,
)
from tests.strategies import tree_strategy


class TestExhaustive:
    def test_figure3_pectinate_8(self):
        """Paper Fig. 3: rerooting the 8-OTU pectinate tree gives 4 sets."""
        result = optimal_reroot_exhaustive(pectinate_tree(8))
        assert result.original_operation_sets == 7
        assert result.operation_sets == 4
        assert result.improvement == 3

    @pytest.mark.parametrize("n", [4, 7, 12, 33, 64])
    def test_pectinate_ceil_half(self, n):
        """§V-A: optimally rerooted pectinate trees need ceil(n/2) sets."""
        result = optimal_reroot_exhaustive(pectinate_tree(n))
        assert result.operation_sets == rerooted_pectinate_sets(n)

    def test_balanced_already_optimal(self):
        t = balanced_tree(16)
        result = optimal_reroot_exhaustive(t)
        assert result.improvement == 0
        assert result.operation_sets == 4

    def test_evaluates_all_rootings(self):
        n = 10
        result = optimal_reroot_exhaustive(random_attachment_tree(n, 1))
        assert result.evaluated_rootings == 2 * n - 3 + 1

    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_never_worse_and_topology_preserved(self, tree):
        result = optimal_reroot_exhaustive(tree)
        assert result.operation_sets <= result.original_operation_sets
        assert same_unrooted_topology(tree, result.tree)

    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_rerooted_at_most_ceil_half(self, tree):
        """§V-B: any optimally rerooted tree needs ≤ ceil(n/2) sets."""
        result = optimal_reroot_exhaustive(tree)
        assert result.operation_sets <= math.ceil(tree.n_tips / 2)

    @given(tree_strategy(min_tips=3, max_tips=25))
    def test_result_is_global_minimum(self, tree):
        result = optimal_reroot_exhaustive(tree)
        for u, v, _ in unrooted_edges(tree):
            candidate = reroot_on_edge(tree, u, v)
            assert count_operation_sets(candidate) >= result.operation_sets

    def test_input_untouched(self):
        tree = pectinate_tree(10)
        key = tree.topology_key()
        optimal_reroot_exhaustive(tree)
        assert tree.topology_key() == key

    def test_tiny_trees(self):
        result = optimal_reroot_exhaustive(pectinate_tree(2))
        assert result.operation_sets == 1

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            optimal_reroot_exhaustive(balanced_tree(4), objective="nope")


class TestEdgeRootingHeights:
    @given(tree_strategy(min_tips=3, max_tips=25))
    def test_matches_direct_recomputation(self, tree):
        """The O(n) DP height of every edge equals the height measured by
        actually rerooting there — the DP's defining property."""
        for u, v, height in edge_rooting_heights(tree):
            rerooted = reroot_on_edge(tree, u, v)
            assert min_operation_sets(rerooted) == height

    def test_edge_count(self):
        t = random_attachment_tree(15, 3)
        assert len(edge_rooting_heights(t)) == 2 * 15 - 3

    def test_two_tips(self):
        t = pectinate_tree(2)
        heights = edge_rooting_heights(t)
        assert len(heights) == 1
        assert heights[0][2] == 1


class TestFast:
    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_matches_exhaustive_height_objective(self, tree):
        fast = optimal_reroot_fast(tree)
        exhaustive = optimal_reroot_exhaustive(tree, objective="height")
        assert min_operation_sets(fast.tree) == min_operation_sets(exhaustive.tree)

    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_matches_exhaustive_greedy_sets(self, tree):
        """Empirical claim from DESIGN.md: the height-optimal rooting also
        achieves the exhaustive-minimum greedy set count."""
        fast = optimal_reroot_fast(tree)
        exhaustive = optimal_reroot_exhaustive(tree, objective="sets")
        assert fast.operation_sets == exhaustive.operation_sets

    @pytest.mark.parametrize("n", [4, 9, 16, 50])
    def test_pectinate(self, n):
        result = optimal_reroot_fast(pectinate_tree(n))
        assert result.operation_sets == rerooted_pectinate_sets(n)

    def test_keeps_optimal_input_rooting(self):
        t = balanced_tree(32)
        result = optimal_reroot_fast(t)
        assert result.improvement == 0
        assert result.tree.topology_key() == t.topology_key()

    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_topology_preserved(self, tree):
        result = optimal_reroot_fast(tree)
        assert same_unrooted_topology(tree, result.tree)

    def test_large_tree_fast(self):
        # O(n) must comfortably handle a 4,000-tip pectinate tree (the
        # largest size in the paper's Figure 6).
        t = pectinate_tree(4000)
        result = optimal_reroot_fast(t)
        assert result.operation_sets == rerooted_pectinate_sets(4000)


class TestBalanceProperty:
    @given(tree_strategy(min_tips=4, max_tips=30, kinds=("pectinate", "random")))
    @settings(max_examples=25)
    def test_rerooted_split_is_balanced_for_pectinate(self, tree):
        # §V: an optimally rerooted tree has floor(n/2) tips on one side
        # — exactly true for pectinate trees; for arbitrary trees the
        # optimum is constrained by the available splits, so we assert
        # the weaker but universal ceil(n/2) set bound instead.
        result = optimal_reroot_exhaustive(tree)
        assert result.operation_sets <= math.ceil(tree.n_tips / 2)

    @pytest.mark.parametrize("n", [6, 8, 9, 15])
    def test_pectinate_split_exact(self, n):
        result = optimal_reroot_exhaustive(pectinate_tree(n))
        small, large = root_tip_split(result.tree)
        assert small == n // 2 and large == n - n // 2
