"""Unit tests for tree-to-operation scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.beagle import validate_operation_order
from repro.core import (
    matrix_updates,
    operation_for_node,
    postorder_operations,
    reverse_levelorder_operations,
)
from repro.trees import balanced_tree, parse_newick, pectinate_tree
from tests.strategies import tree_strategy


class TestOperationForNode:
    def test_indices(self):
        t = parse_newick("((a:0.1,b:0.2):0.3,c:0.4);")
        t.assign_indices()
        inner = t.find("a").parent
        op = operation_for_node(t, inner)
        assert op.destination == t.index_of(inner)
        assert {op.child1, op.child2} == {t.index_of(t.find("a")), t.index_of(t.find("b"))}
        assert op.child1_matrix == op.child1
        assert op.destination_scale == -1

    def test_scaling_index(self):
        t = balanced_tree(4)
        t.assign_indices()
        node = t.internals()[0]
        op = operation_for_node(t, node, scaling=True)
        assert op.destination_scale == op.destination - t.n_tips

    def test_rejects_tips_and_multifurcations(self):
        t = parse_newick("((a,b),c);")
        t.assign_indices()
        with pytest.raises(ValueError):
            operation_for_node(t, t.find("a"))
        m = parse_newick("(a,b,c);")
        m.assign_indices()
        with pytest.raises(ValueError):
            operation_for_node(m, m.root)


class TestSchedules:
    @given(tree_strategy(min_tips=2, max_tips=30))
    def test_counts(self, tree):
        assert len(postorder_operations(tree)) == tree.n_tips - 1
        assert len(reverse_levelorder_operations(tree)) == tree.n_tips - 1

    @given(tree_strategy(min_tips=2, max_tips=30))
    def test_both_orders_executable(self, tree):
        validate_operation_order(postorder_operations(tree))
        validate_operation_order(reverse_levelorder_operations(tree))

    @given(tree_strategy(min_tips=2, max_tips=30))
    def test_same_operation_multiset(self, tree):
        post = {op.destination: op for op in postorder_operations(tree)}
        rlo = {op.destination: op for op in reverse_levelorder_operations(tree)}
        assert post == rlo

    def test_postorder_root_last(self):
        t = balanced_tree(8)
        ops = postorder_operations(t)
        assert ops[-1].destination == t.index_of(t.root)

    def test_reverse_levelorder_deepest_first(self):
        t = pectinate_tree(6)
        ops = reverse_levelorder_operations(t)
        # The deepest cherry comes first, the root last.
        assert ops[-1].destination == t.index_of(t.root)


class TestMatrixUpdates:
    @given(tree_strategy(min_tips=2, max_tips=25))
    def test_one_entry_per_edge(self, tree):
        indices, lengths = matrix_updates(tree)
        assert len(indices) == 2 * tree.n_tips - 2
        assert len(indices) == len(set(indices))  # no duplicates

    def test_lengths_match_nodes(self):
        t = parse_newick("((a:0.1,b:0.2):0.3,c:0.4);")
        t.assign_indices()
        indices, lengths = matrix_updates(t)
        by_index = dict(zip(indices, lengths))
        assert by_index[t.index_of(t.find("a"))] == pytest.approx(0.1)
        assert by_index[t.index_of(t.find("c"))] == pytest.approx(0.4)
