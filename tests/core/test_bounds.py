"""Unit tests for the theoretical speedup bounds (paper §V, Table III)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    balanced_sets,
    count_operation_sets,
    optimal_reroot_exhaustive,
    pectinate_sets,
    rerooted_pectinate_sets,
    rerooted_speedup_interval,
    speedup_balanced,
    speedup_pectinate_rerooted,
    theoretical_speedup,
    tree_theoretical_speedup,
)
from repro.trees import balanced_tree, pectinate_tree
from tests.strategies import tree_strategy


class TestSetFormulas:
    def test_balanced(self):
        assert balanced_sets(8) == 3
        assert balanced_sets(64) == 6
        assert balanced_sets(100) == 7  # non-power-of-two rounds up

    def test_pectinate(self):
        assert pectinate_sets(8) == 7

    def test_rerooted_pectinate(self):
        assert rerooted_pectinate_sets(8) == 4
        assert rerooted_pectinate_sets(9) == 5

    def test_degenerate(self):
        assert balanced_sets(1) == 0
        assert pectinate_sets(1) == 0

    @given(st.integers(2, 4096))
    def test_formulas_match_generators(self, n):
        # The closed forms must equal the measured counts (on sizes small
        # enough to construct quickly).
        if n <= 512:
            assert count_operation_sets(balanced_tree(n)) == balanced_sets(n)
            assert count_operation_sets(pectinate_tree(n)) == pectinate_sets(n)


class TestSpeedups:
    def test_table3_values_for_64_otus(self):
        """Table III's theoretical column for n = 64."""
        assert speedup_balanced(64) == pytest.approx(10.5)
        assert speedup_pectinate_rerooted(64) == pytest.approx(63 / 32)  # 1.97
        assert theoretical_speedup(64, 63) == pytest.approx(1.0)  # pectinate

    def test_pectinate_rerooted_approaches_two(self):
        """§V-A: (n−1)/ceil(n/2) → 2 from below."""
        values = [speedup_pectinate_rerooted(n) for n in (4, 16, 64, 406, 4096)]
        assert all(v < 2.0 for v in values)
        assert values == sorted(values)
        assert values[-1] > 1.999

    def test_interval_ordering(self):
        for n in (8, 64, 500):
            lo, hi = rerooted_speedup_interval(n)
            assert lo <= hi
            assert lo == speedup_pectinate_rerooted(n)
            assert hi == speedup_balanced(n)

    def test_degenerate_speedup(self):
        assert theoretical_speedup(1, 0) == 1.0
        assert theoretical_speedup(2, 1) == 1.0


class TestTreeSpecific:
    @given(tree_strategy(min_tips=3, max_tips=40))
    def test_within_global_bounds(self, tree):
        n = tree.n_tips
        s = tree_theoretical_speedup(tree)
        assert 1.0 <= s <= speedup_balanced(n) + 1e-12

    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_rerooting_raises_tree_speedup_into_interval(self, tree):
        """§V-B: after optimal rerooting the tree-specific speedup is at
        least the pectinate-rerooted lower bound."""
        result = optimal_reroot_exhaustive(tree)
        lo, hi = rerooted_speedup_interval(tree.n_tips)
        s = tree_theoretical_speedup(result.tree)
        assert s >= lo - 1e-12
        assert s <= hi + 1e-12

    def test_balanced_hits_upper(self):
        t = balanced_tree(64)
        assert tree_theoretical_speedup(t) == pytest.approx(speedup_balanced(64))

    def test_pectinate_hits_lower(self):
        t = pectinate_tree(64)
        assert tree_theoretical_speedup(t) == pytest.approx(1.0)
