"""Unit and property tests for operation-set construction.

These tests pin down the combinatorial claims of the paper:
Fig. 2 (balanced 8-OTU tree → 3 sets), Fig. 3 (pectinate → n−1 sets,
optimally rerooted → ceil(n/2) sets), and the §V bounds
``ceil(log2 n) ≤ sets ≤ n−1``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given

from repro.beagle import operations_independent
from repro.core import (
    build_operation_sets,
    count_operation_sets,
    level_schedule,
    min_operation_sets,
    reverse_levelorder_operations,
    set_index_by_node,
)
from repro.trees import balanced_tree, parse_newick, pectinate_tree
from tests.strategies import tree_strategy


class TestGreedyBuilder:
    def test_figure2_balanced_8(self):
        """Paper Fig. 2: the 8-OTU balanced tree needs exactly 3 sets."""
        t = balanced_tree(8)
        sets = build_operation_sets(reverse_levelorder_operations(t))
        assert [len(s) for s in sets] == [4, 2, 1]

    def test_figure3_pectinate_8(self):
        """Paper Fig. 3 upper: the 8-OTU pectinate tree is fully serial."""
        t = pectinate_tree(8)
        sets = build_operation_sets(reverse_levelorder_operations(t))
        assert len(sets) == 7
        assert all(len(s) == 1 for s in sets)

    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_sets_partition_operations(self, tree):
        ops = reverse_levelorder_operations(tree)
        sets = build_operation_sets(ops)
        flattened = [op for group in sets for op in group]
        assert flattened == ops  # order preserved, nothing lost

    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_every_set_independent(self, tree):
        sets = build_operation_sets(reverse_levelorder_operations(tree))
        assert all(operations_independent(group) for group in sets)

    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_greedy_is_maximal(self, tree):
        # The first op of each set (after the first) must depend on some
        # member of the previous set — otherwise greedy would not have cut.
        sets = build_operation_sets(reverse_levelorder_operations(tree))
        for prev, cur in zip(sets, sets[1:]):
            prev_dests = {op.destination for op in prev}
            first = cur[0]
            assert any(r in prev_dests for r in first.reads())

    def test_empty(self):
        assert build_operation_sets([]) == []


class TestCounts:
    @pytest.mark.parametrize("n,expected", [(2, 1), (4, 2), (8, 3), (16, 4), (64, 6), (256, 8)])
    def test_balanced_log2(self, n, expected):
        assert count_operation_sets(balanced_tree(n)) == expected

    @pytest.mark.parametrize("n", [2, 3, 8, 20, 100])
    def test_pectinate_serial(self, n):
        assert count_operation_sets(pectinate_tree(n)) == n - 1

    @given(tree_strategy(min_tips=2, max_tips=60))
    def test_paper_bounds(self, tree):
        """§V: ceil(log2 n) ≤ sets ≤ n − 1 for any rooting."""
        n = tree.n_tips
        sets = count_operation_sets(tree)
        assert math.ceil(math.log2(n)) <= sets <= n - 1

    @given(tree_strategy(min_tips=2, max_tips=60))
    def test_greedy_at_least_height(self, tree):
        assert count_operation_sets(tree) >= min_operation_sets(tree)

    def test_single_tip(self):
        assert count_operation_sets(parse_newick("a;")) == 0


class TestLevelSchedule:
    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_set_count_is_root_height(self, tree):
        assert len(level_schedule(tree)) == min_operation_sets(tree)

    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_levels_independent_and_complete(self, tree):
        sets = level_schedule(tree)
        assert all(operations_independent(group) for group in sets)
        assert sum(len(s) for s in sets) == tree.n_tips - 1

    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_level_never_worse_than_greedy(self, tree):
        assert len(level_schedule(tree)) <= count_operation_sets(tree)

    @given(tree_strategy(min_tips=2, max_tips=40))
    def test_level_schedule_executable_in_order(self, tree):
        # Every read of a later set must be satisfied by tips or earlier sets.
        sets = level_schedule(tree)
        available = set(range(tree.n_tips))
        for group in sets:
            for op in group:
                assert set(op.reads()) <= available
            available |= {op.destination for op in group}


class TestSetIndexByNode:
    def test_balanced_assignment(self):
        t = balanced_tree(8)
        mapping = set_index_by_node(t)
        assert len(mapping) == 7
        # Cherries in set 0, mid-level in set 1, root in set 2.
        assert mapping[id(t.root)] == 2
        for node in t.internals():
            if all(c.is_tip for c in node.children):
                assert mapping[id(node)] == 0

    def test_pectinate_distinct_sets(self):
        t = pectinate_tree(5)
        mapping = set_index_by_node(t)
        assert sorted(mapping.values()) == [0, 1, 2, 3]
