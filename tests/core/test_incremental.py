"""Unit and property tests for incremental (dirty-path) updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IncrementalLikelihood,
    count_operation_sets,
    dirty_nodes,
    incremental_operation_sets,
    optimal_reroot_fast,
)
from repro.beagle import operations_independent
from repro.data import compress, simulate_alignment
from repro.models import HKY85, JC69, discrete_gamma
from repro.trees import balanced_tree, node_depths, pectinate_tree
from tests.strategies import tree_strategy


class TestDirtyNodes:
    def test_path_to_root(self):
        t = pectinate_tree(6)
        deepest_tip = max(t.tips(), key=lambda n: node_depths(t)[id(n)])
        path = dirty_nodes(t, [deepest_tip])
        # Every internal node is an ancestor of the deepest tip.
        assert len(path) == 5

    def test_balanced_path_is_logarithmic(self):
        t = balanced_tree(64)
        tip = t.tips()[0]
        assert len(dirty_nodes(t, [tip])) == 6  # log2(64)

    def test_union_of_paths(self):
        t = balanced_tree(8)
        tips = t.tips()
        # Two tips in the same cherry share all ancestors.
        same_cherry = dirty_nodes(t, [tips[0], tips[1]])
        assert len(same_cherry) == 3
        # Tips from opposite halves share only the root.
        opposite = dirty_nodes(t, [tips[0], tips[7]])
        assert len(opposite) == 5

    def test_root_child(self):
        t = balanced_tree(4)
        child = t.root.children[0]
        assert dirty_nodes(t, [child]) == [t.root]

    @given(tree_strategy(min_tips=3, max_tips=30), st.integers(0, 10**6))
    def test_order_deepest_first(self, tree, pick):
        edges = tree.edges()
        node = edges[pick % len(edges)]
        path = dirty_nodes(tree, [node])
        depths = node_depths(tree)
        values = [depths[id(n)] for n in path]
        assert values == sorted(values, reverse=True)
        assert path[-1] is tree.root


class TestIncrementalOperationSets:
    @given(tree_strategy(min_tips=3, max_tips=30), st.integers(0, 10**6))
    def test_sets_independent_and_cover_path(self, tree, pick):
        tree.assign_indices()
        edges = tree.edges()
        node = edges[pick % len(edges)]
        sets = incremental_operation_sets(tree, [node])
        assert all(operations_independent(s) for s in sets)
        n_ops = sum(len(s) for s in sets)
        assert n_ops == len(dirty_nodes(tree, [node]))

    def test_single_path_is_serial(self):
        # A lone path has strictly chained dependencies: one op per set.
        t = pectinate_tree(8)
        t.assign_indices()
        deepest = max(t.tips(), key=lambda n: node_depths(t)[id(n)])
        sets = incremental_operation_sets(t, [deepest])
        assert all(len(s) == 1 for s in sets)

    def test_disjoint_paths_batch(self):
        # Changes in opposite halves of a balanced tree produce paths
        # whose same-depth nodes share launches.
        t = balanced_tree(16)
        t.assign_indices()
        tips = t.tips()
        sets = incremental_operation_sets(t, [tips[0], tips[15]])
        n_ops = sum(len(s) for s in sets)
        assert n_ops == 7  # 4 + 4 ancestors sharing the root
        assert len(sets) == 4  # but only tree-height launches


class TestIncrementalLikelihood:
    MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])

    def make(self, tree, patterns=None, sites=30):
        if patterns is None:
            aln = simulate_alignment(tree, self.MODEL, sites, seed=61)
            patterns = compress(aln)
        return IncrementalLikelihood(tree, self.MODEL, patterns), patterns

    def test_matches_full_recompute(self):
        tree = balanced_tree(12, branch_length=0.2)
        inc, patterns = self.make(tree)
        inc.full_log_likelihood()
        edge = tree.edges()[3]
        updated = inc.set_branch_length(edge, 0.7)
        # Independent full evaluation on the mutated tree, same data:
        fresh, _ = self.make(tree, patterns)
        assert updated == pytest.approx(fresh.full_log_likelihood(), abs=1e-8)

    def test_sequence_of_updates(self):
        tree = balanced_tree(8, branch_length=0.1)
        inc, patterns = self.make(tree)
        inc.full_log_likelihood()
        rng = np.random.default_rng(62)
        for _ in range(5):
            edge = tree.edges()[int(rng.integers(len(tree.edges())))]
            value = inc.set_branch_length(edge, float(rng.uniform(0.01, 1.0)))
        fresh, _ = self.make(tree, patterns)
        assert value == pytest.approx(fresh.full_log_likelihood(), abs=1e-8)

    def test_auto_initial_evaluation(self):
        tree = balanced_tree(8, branch_length=0.1)
        inc, patterns = self.make(tree)
        # set_branch_length before any full evaluation must still work.
        edge = tree.edges()[0]
        value = inc.set_branch_length(edge, 0.4)
        fresh, _ = self.make(tree, patterns)
        assert value == pytest.approx(fresh.full_log_likelihood(), abs=1e-8)

    def test_update_is_cheaper_than_full(self):
        tree = balanced_tree(64, branch_length=0.1)
        inc, _ = self.make(tree)
        inc.full_log_likelihood()
        inc.instance.stats.reset()
        inc.set_branch_length(tree.tips()[0], 0.5)
        # Only log2(64) = 6 operations, not 63.
        assert inc.instance.stats.operations == 6

    def test_update_cost_and_launches(self):
        tree = pectinate_tree(16)
        inc, _ = self.make(tree)
        deepest = max(tree.tips(), key=lambda n: node_depths(tree)[id(n)])
        assert inc.update_cost(deepest) == 15
        assert inc.update_launches(deepest) == 15
        shallow = tree.root.children[-1]
        assert inc.update_cost(shallow) == 1

    def test_gamma_rates(self):
        tree = balanced_tree(8, branch_length=0.2)
        model = JC69()
        aln = simulate_alignment(tree, model, 20, seed=63)
        inc = IncrementalLikelihood(
            tree, model, compress(aln), rates=discrete_gamma(0.5, 4)
        )
        inc.full_log_likelihood()
        edge = tree.edges()[2]
        value = inc.set_branch_length(edge, 0.9)
        fresh = IncrementalLikelihood(
            tree, model, compress(aln), rates=discrete_gamma(0.5, 4)
        )
        assert value == pytest.approx(fresh.full_log_likelihood(), abs=1e-8)

    def test_validation(self):
        tree = balanced_tree(4, branch_length=0.1)
        inc, _ = self.make(tree)
        with pytest.raises(ValueError):
            inc.set_branch_length(tree.root, 0.5)
        with pytest.raises(ValueError):
            inc.set_branch_length(tree.edges()[0], -1.0)
        with pytest.raises(ValueError):
            inc.update_cost(tree.root)
        with pytest.raises(NotImplementedError):
            model = JC69()
            aln = simulate_alignment(tree, model, 10, seed=64)
            IncrementalLikelihood(tree, model, compress(aln), scaling=True)


class TestRerootingShrinksUpdates:
    """The §VIII connection: rerooting shortens dirty paths too."""

    def test_pectinate_mean_update_cost_halves(self):
        tree = pectinate_tree(64)
        rerooted = optimal_reroot_fast(tree).tree
        def mean_cost(t):
            return np.mean([len(dirty_nodes(t, [e])) for e in t.edges()])
        assert mean_cost(rerooted) < 0.6 * mean_cost(tree)

    @given(tree_strategy(min_tips=8, max_tips=40, kinds=("pectinate", "random")))
    @settings(max_examples=15)
    def test_worst_case_never_longer(self, tree):
        # Rerooting minimises topological height = the worst-case dirty
        # path, a theorem. (The *mean* path can tick up slightly on some
        # shapes, so only a loose bound holds for it.)
        rerooted = optimal_reroot_fast(tree).tree

        def costs(t):
            return [len(dirty_nodes(t, [e])) for e in t.edges()]

        before, after = costs(tree), costs(rerooted)
        assert max(after) <= max(before)
        assert np.mean(after) <= np.mean(before) * 1.2


class TestIncrementalPlan:
    """`incremental_plan` as a first-class ExecutionPlan producer."""

    def _warm(self, tree, sites=24):
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        patterns = compress(simulate_alignment(tree, model, sites, seed=3))
        from repro.core import create_instance, execute_plan, make_plan

        inst = create_instance(tree, model, patterns)
        full = make_plan(tree)
        baseline = execute_plan(inst, full)
        return inst, full, baseline, model, patterns

    def test_plan_is_marked_incremental_and_smaller(self):
        from repro.core import incremental_plan

        tree = balanced_tree(16)
        inst, full, _, _, _ = self._warm(tree)
        tip = tree.tips()[0]
        plan = incremental_plan(tree, [tip])
        assert plan.incremental
        assert not full.incremental
        assert plan.n_operations < full.n_operations
        assert plan.matrix_indices == [tree.index_of(tip)]

    def test_execution_matches_fresh_full_traversal(self):
        from repro.core import create_instance, execute_plan, incremental_plan, make_plan

        tree = balanced_tree(16)
        inst, full, baseline, model, patterns = self._warm(tree)
        edge = tree.tips()[3]
        edge.length = 0.37
        value = execute_plan(inst, incremental_plan(tree, [edge]))
        fresh = create_instance(tree, model, patterns)
        assert value == execute_plan(fresh, make_plan(tree))
        assert value != baseline

    def test_matrices_for_root_raises(self):
        from repro.core import incremental_plan

        tree = balanced_tree(8)
        tree.assign_indices()
        with pytest.raises(ValueError, match="root"):
            incremental_plan(tree, [tree.tips()[0]], matrices_for=[tree.root])

    def test_verifier_accepts_dirty_path_schedules(self):
        from repro.core import incremental_plan

        tree = optimal_reroot_fast(pectinate_tree(16)).tree
        tree.assign_indices()
        for tip in tree.tips():
            plan = incremental_plan(tree, [tip], verify=True)
            assert plan.n_operations >= 1
