"""Unit and integration tests for execution planning and the engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.beagle import pruning_log_likelihood
from repro.core import (
    count_operation_sets,
    create_instance,
    execute_plan,
    make_plan,
)
from repro.data import compress, random_patterns, simulate_alignment
from repro.models import HKY85, JC69, discrete_gamma
from repro.trees import balanced_tree, parse_newick, pectinate_tree
from tests.strategies import tree_strategy


@pytest.fixture
def model():
    return HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


class TestMakePlan:
    def test_serial_one_op_per_launch(self):
        t = balanced_tree(8)
        plan = make_plan(t, "serial")
        assert plan.n_launches == 7
        assert plan.set_sizes == [1] * 7

    def test_concurrent_matches_count(self):
        t = balanced_tree(8)
        plan = make_plan(t, "concurrent")
        assert plan.n_launches == count_operation_sets(t)
        assert plan.set_sizes == [4, 2, 1]

    def test_level_mode(self):
        t = pectinate_tree(8)
        plan = make_plan(t, "level")
        assert plan.n_launches == 7  # pectinate: level == serial depth

    def test_operations_preserved_across_modes(self):
        t = balanced_tree(16)
        serial = make_plan(t, "serial")
        conc = make_plan(t, "concurrent")
        assert serial.n_operations == conc.n_operations == 15

    def test_rejects_multifurcation(self):
        with pytest.raises(ValueError):
            make_plan(parse_newick("(a,b,c);"))

    def test_rejects_single_tip(self):
        with pytest.raises(ValueError):
            make_plan(parse_newick("a;"))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_plan(balanced_tree(4), "warp")

    def test_root_buffer(self):
        t = balanced_tree(4)
        plan = make_plan(t)
        assert plan.root_buffer == t.index_of(t.root)


class TestCreateInstance:
    def test_requires_matching_taxa(self, model):
        t = balanced_tree(4)
        patterns = random_patterns(["x", "y", "z", "w"], 8)
        with pytest.raises(ValueError):
            create_instance(t, model, patterns)

    def test_dimensions(self, model):
        t = balanced_tree(6)
        patterns = random_patterns(t.tip_names(), 32)
        inst = create_instance(t, model, patterns, rates=discrete_gamma(0.5, 4))
        assert inst.tip_count == 6
        assert inst.pattern_count == 32
        assert inst.category_count == 4

    def test_scaling_buffers(self, model):
        t = balanced_tree(4)
        patterns = random_patterns(t.tip_names(), 8)
        inst = create_instance(t, model, patterns, scaling=True)
        assert inst.scale.count == 4


class TestEngineCorrectness:
    """The engine must agree with the independent pruning reference."""

    @given(tree_strategy(min_tips=2, max_tips=20))
    @settings(max_examples=20)
    def test_matches_pruning_reference(self, tree):
        model = JC69()
        aln = simulate_alignment(tree, model, 20, seed=11)
        patterns = compress(aln)
        inst = create_instance(tree, model, patterns)
        ll = execute_plan(inst, make_plan(tree, "concurrent"))
        assert ll == pytest.approx(
            pruning_log_likelihood(tree, model, patterns), abs=1e-8
        )

    @given(tree_strategy(min_tips=2, max_tips=15))
    @settings(max_examples=15)
    def test_all_modes_agree(self, tree):
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        aln = simulate_alignment(tree, model, 15, seed=12)
        patterns = compress(aln)
        values = []
        for mode in ("serial", "concurrent", "level"):
            inst = create_instance(tree, model, patterns)
            values.append(execute_plan(inst, make_plan(tree, mode)))
        assert values[0] == pytest.approx(values[1], abs=1e-10)
        assert values[0] == pytest.approx(values[2], abs=1e-10)

    def test_gamma_rates_match_reference(self, model):
        tree = balanced_tree(6, branch_length=0.3)
        aln = simulate_alignment(tree, model, 25, seed=13)
        patterns = compress(aln)
        rates = discrete_gamma(0.4, 4)
        inst = create_instance(tree, model, patterns, rates=rates)
        ll = execute_plan(inst, make_plan(tree))
        assert ll == pytest.approx(
            pruning_log_likelihood(tree, model, patterns, rates), abs=1e-8
        )

    def test_scaling_does_not_change_loglik(self, model):
        tree = pectinate_tree(12, branch_length=0.2)
        aln = simulate_alignment(tree, model, 16, seed=14)
        patterns = compress(aln)
        plain = execute_plan(
            create_instance(tree, model, patterns), make_plan(tree)
        )
        scaled = execute_plan(
            create_instance(tree, model, patterns, scaling=True),
            make_plan(tree, scaling=True),
        )
        assert scaled == pytest.approx(plain, abs=1e-9)

    def test_scaling_rescues_underflow(self, model):
        # Deep pectinate tree with many patterns: unscaled partials
        # underflow double precision; scaled evaluation must stay finite
        # and match the log-space reference.
        tree = pectinate_tree(600, branch_length=0.5)
        patterns = random_patterns(tree.tip_names(), 4, seed=5)
        scaled = execute_plan(
            create_instance(tree, model, patterns, scaling=True),
            make_plan(tree, scaling=True),
        )
        assert np.isfinite(scaled)
        unscaled = execute_plan(
            create_instance(tree, model, patterns), make_plan(tree)
        )
        assert unscaled == -np.inf  # demonstrates the underflow scaling fixes

    def test_stats_launch_counts(self, model):
        tree = pectinate_tree(10)
        patterns = random_patterns(tree.tip_names(), 8, seed=6)
        inst = create_instance(tree, model, patterns)
        execute_plan(inst, make_plan(tree, "serial"))
        assert inst.stats.kernel_launches == 9
        inst.stats.reset()
        execute_plan(inst, make_plan(tree, "concurrent"))
        assert inst.stats.kernel_launches == count_operation_sets(tree)

    def test_repeated_execution_consistent(self, model):
        tree = balanced_tree(8)
        patterns = random_patterns(tree.tip_names(), 8, seed=7)
        inst = create_instance(tree, model, patterns)
        plan = make_plan(tree)
        first = execute_plan(inst, plan)
        second = execute_plan(inst, plan)
        assert first == second
