"""Smoke tests: every shipped example must run cleanly."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "random_tree_survey.py":
        args.append("5")  # keep the survey short in CI
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_output_shape():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    out = result.stdout
    assert "serial (post-order)" in out
    assert "concurrent + rerooted" in out
    # Identical likelihood on every line with launches halved.
    lines = [l for l in out.splitlines() if "-" in l and "." in l]
    values = {l.split()[-1] for l in lines if l and l.split()[-1].startswith("-")}
    assert len(values) == 1
