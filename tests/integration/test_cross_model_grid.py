"""Integration grid: engine vs reference across the full model matrix.

Every combination of model family × rate heterogeneity × scaling ×
scheduling mode must produce the same log-likelihood as the independent
pruning reference. This is the broad-coverage safety net behind the
narrower unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle import pruning_log_likelihood
from repro.core import create_instance, execute_plan, make_plan
from repro.data import compress, simulate_alignment
from repro.models import (
    GTR,
    GY94,
    HKY85,
    JC69,
    K80,
    Poisson,
    TN93,
    discrete_gamma,
    invariant_plus_gamma,
    single_rate,
    synthetic_empirical,
)
from repro.trees import random_attachment_tree

MODELS = [
    ("JC69", JC69(), 14),
    ("K80", K80(3.0), 14),
    ("HKY85", HKY85(2.0, [0.35, 0.15, 0.25, 0.25]), 14),
    ("TN93", TN93(3.0, 1.5, [0.3, 0.2, 0.2, 0.3]), 14),
    ("GTR", GTR([1.2, 2.1, 0.9, 1.4, 2.6, 1.0], [0.3, 0.2, 0.25, 0.25]), 14),
    ("Poisson", Poisson(), 8),
    ("SyntheticAA", synthetic_empirical(2), 8),
    ("GY94", GY94(2.0, 0.3), 5),
]

RATE_MIXTURES = [
    ("uniform", single_rate()),
    ("gamma4", discrete_gamma(0.5, 4)),
    ("gamma2+inv", invariant_plus_gamma(0.8, 0.2, 2)),
]


@pytest.mark.parametrize("model_name,model,n_tips", MODELS, ids=[m[0] for m in MODELS])
@pytest.mark.parametrize("rates_name,rates", RATE_MIXTURES, ids=[r[0] for r in RATE_MIXTURES])
def test_engine_matches_reference(model_name, model, n_tips, rates_name, rates):
    tree = random_attachment_tree(n_tips, 17, random_lengths=True)
    patterns = compress(simulate_alignment(tree, model, 8, seed=18))
    reference = pruning_log_likelihood(tree, model, patterns, rates)
    for mode in ("serial", "concurrent"):
        for scaling in (False, True):
            instance = create_instance(
                tree, model, patterns, rates=rates, scaling=scaling
            )
            plan = make_plan(tree, mode, scaling=scaling)
            value = execute_plan(instance, plan)
            assert value == pytest.approx(reference, abs=1e-7), (
                model_name,
                rates_name,
                mode,
                scaling,
            )


@pytest.mark.parametrize("model_name,model,n_tips", MODELS[:5], ids=[m[0] for m in MODELS[:5]])
def test_single_precision_grid(model_name, model, n_tips):
    tree = random_attachment_tree(n_tips, 19, random_lengths=True)
    patterns = compress(simulate_alignment(tree, model, 8, seed=20))
    reference = pruning_log_likelihood(tree, model, patterns)
    instance = create_instance(tree, model, patterns, dtype=np.float32)
    value = execute_plan(instance, make_plan(tree))
    assert value == pytest.approx(reference, rel=1e-4)
