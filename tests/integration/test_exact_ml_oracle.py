"""Exact maximum likelihood over enumerated tree space as a search oracle.

For small taxon sets the (2n − 5)!! topologies can be enumerated and the
likelihood engine evaluated on every one — an *exact* ML method. The
heuristic NNI search must find the same optimum (or an equally scoring
topology) when started from a reasonable tree, and the NJ starting tree
must rank highly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import compress, simulate_alignment
from repro.inference import TreeLikelihood, ml_search
from repro.models import JC69
from repro.trees import (
    all_unrooted_topologies,
    distance_matrix,
    neighbor_joining,
    robinson_foulds,
    same_unrooted_topology,
    yule_tree,
)

N_TAXA = 6
SITES = 300


@pytest.fixture(scope="module")
def problem():
    truth = yule_tree(N_TAXA, 13, random_lengths=True)
    for edge in truth.edges():
        edge.length = max(edge.length, 0.08)
    aln = simulate_alignment(truth, JC69(), SITES, seed=41)
    return truth, aln


def exhaustive_best(aln):
    names = sorted(aln.names)
    patterns = compress(aln)
    best_tree, best_ll = None, -np.inf
    for topology in all_unrooted_topologies(names, branch_length=0.1):
        ll = TreeLikelihood(topology, JC69(), patterns).log_likelihood()
        if ll > best_ll:
            best_tree, best_ll = topology, ll
    return best_tree, best_ll


class TestExactOracle:
    def test_exhaustive_finds_truth(self, problem):
        truth, aln = problem
        best_tree, _ = exhaustive_best(aln)
        # With 300 sites the signal is strong: the global optimum at
        # fixed branch lengths matches the generating topology.
        assert same_unrooted_topology(best_tree, truth)

    def test_heuristic_matches_exhaustive(self, problem):
        truth, aln = problem
        best_tree, best_ll = exhaustive_best(aln)
        # Start the heuristic from the worst-ranked enumerated topology's
        # shape — a pectinate comb.
        from repro.trees import pectinate_tree

        start = pectinate_tree(N_TAXA, names=sorted(aln.names), branch_length=0.1)
        result = ml_search(TreeLikelihood(start, JC69(), aln), max_rounds=20)
        assert same_unrooted_topology(result.tree, best_tree)

    def test_nj_start_is_already_optimal_topology(self, problem):
        truth, aln = problem
        names, D = distance_matrix(aln, method="jc")
        nj_tree = neighbor_joining(names, D)
        assert same_unrooted_topology(nj_tree, truth)

    def test_likelihood_ranking_consistent(self, problem):
        # The true topology's likelihood beats a random wrong topology at
        # the same fixed branch lengths.
        truth, aln = problem
        patterns = compress(aln)
        names = sorted(aln.names)
        lls = []
        for i, topology in enumerate(all_unrooted_topologies(names, branch_length=0.1)):
            lls.append(
                (
                    TreeLikelihood(topology, JC69(), patterns).log_likelihood(),
                    robinson_foulds(topology, truth),
                )
            )
        best_ll = max(ll for ll, _ in lls)
        # Every topology scoring within 1 log unit of the best is close
        # to the truth in RF terms.
        near_best = [rf for ll, rf in lls if ll > best_ll - 1.0]
        assert all(rf <= 2 for rf in near_best)
