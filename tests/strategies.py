"""Hypothesis strategies shared across the property-based tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.trees import (
    Tree,
    balanced_tree,
    coalescent_tree,
    pectinate_tree,
    random_attachment_tree,
    yule_tree,
)

__all__ = ["tree_strategy", "topology_kinds", "small_tree_strategy"]

topology_kinds = ("balanced", "pectinate", "random", "yule", "coalescent")


def _build(kind: str, n: int, seed: int, random_lengths: bool) -> Tree:
    rng = np.random.default_rng(seed)
    if kind == "balanced":
        return balanced_tree(n, rng=rng, random_lengths=random_lengths)
    if kind == "pectinate":
        return pectinate_tree(n, rng=rng, random_lengths=random_lengths)
    if kind == "random":
        return random_attachment_tree(n, rng, random_lengths=random_lengths)
    if kind == "yule":
        return yule_tree(n, rng, random_lengths=random_lengths)
    if kind == "coalescent":
        return coalescent_tree(n, rng)
    raise ValueError(kind)


@st.composite
def tree_strategy(
    draw,
    min_tips: int = 2,
    max_tips: int = 40,
    kinds: tuple[str, ...] = topology_kinds,
    random_lengths: bool = True,
):
    """Draw a reproducible tree across the library's topology generators."""
    kind = draw(st.sampled_from(kinds))
    n = draw(st.integers(min_tips, max_tips))
    seed = draw(st.integers(0, 2**31 - 1))
    return _build(kind, n, seed, random_lengths)


@st.composite
def small_tree_strategy(draw, max_tips: int = 6):
    """Trees small enough for brute-force likelihood enumeration."""
    return draw(tree_strategy(min_tips=2, max_tips=max_tips))
