"""Hypothesis strategies shared across the property-based tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.trees import (
    Tree,
    balanced_tree,
    coalescent_tree,
    pectinate_tree,
    random_attachment_tree,
    yule_tree,
)

__all__ = [
    "tree_strategy",
    "topology_kinds",
    "small_tree_strategy",
    "operation_schedule_strategy",
]

topology_kinds = ("balanced", "pectinate", "random", "yule", "coalescent")


def _build(kind: str, n: int, seed: int, random_lengths: bool) -> Tree:
    rng = np.random.default_rng(seed)
    if kind == "balanced":
        return balanced_tree(n, rng=rng, random_lengths=random_lengths)
    if kind == "pectinate":
        return pectinate_tree(n, rng=rng, random_lengths=random_lengths)
    if kind == "random":
        return random_attachment_tree(n, rng, random_lengths=random_lengths)
    if kind == "yule":
        return yule_tree(n, rng, random_lengths=random_lengths)
    if kind == "coalescent":
        return coalescent_tree(n, rng)
    raise ValueError(kind)


@st.composite
def tree_strategy(
    draw,
    min_tips: int = 2,
    max_tips: int = 40,
    kinds: tuple[str, ...] = topology_kinds,
    random_lengths: bool = True,
):
    """Draw a reproducible tree across the library's topology generators."""
    kind = draw(st.sampled_from(kinds))
    n = draw(st.integers(min_tips, max_tips))
    seed = draw(st.integers(0, 2**31 - 1))
    return _build(kind, n, seed, random_lengths)


@st.composite
def small_tree_strategy(draw, max_tips: int = 6):
    """Trees small enough for brute-force likelihood enumeration."""
    return draw(tree_strategy(min_tips=2, max_tips=max_tips))


@st.composite
def operation_schedule_strategy(
    draw,
    min_tips: int = 4,
    max_tips: int = 16,
    allow_racy: bool = True,
):
    """Random concurrent operation-set schedules for the race prover.

    Draws a tree and a multi-operation planning mode, builds the plan,
    and — when ``allow_racy`` and the schedule has a multi-operation set
    — sometimes corrupts it with an intra-set destination alias (a WAW
    race). Returns ``(plan, racy)`` where ``racy`` says whether the
    corruption was applied, so properties can check the static verdict
    against an execution oracle in both directions.
    """
    from repro.analysis import mutate_plan
    from repro.core import make_plan

    tree = draw(
        tree_strategy(
            min_tips=min_tips,
            max_tips=max_tips,
            kinds=("balanced", "random", "yule"),
        )
    )
    mode = draw(st.sampled_from(("concurrent", "level")))
    plan = make_plan(tree, mode)
    if allow_racy and draw(st.booleans()):
        mutation = mutate_plan(plan, "intra-set-alias")
        if mutation is not None:
            return mutation.plan, True
    return plan, False
