"""Brownout staging: pressure to level, level to explicit effects."""

from __future__ import annotations

import pytest

from repro.serve import BrownoutController, BrownoutPolicy


class TestPolicyValidation:
    def test_rejects_unordered_thresholds(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(thresholds=(0.9, 0.5, 0.75))

    def test_rejects_threshold_above_one(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(thresholds=(0.5, 0.75, 1.5))

    def test_rejects_shrinking_widen(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(widen_factor=0.5)

    def test_rejects_bad_clamp(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(clamp_factor=0.0)


class TestLevels:
    def test_level_tracks_pressure(self):
        ctl = BrownoutController(BrownoutPolicy(thresholds=(0.5, 0.75, 0.9)))
        assert ctl.observe(0, 100) == 0
        assert ctl.observe(49, 100) == 0
        assert ctl.observe(50, 100) == 1
        assert ctl.observe(75, 100) == 2
        assert ctl.observe(90, 100) == 3
        assert ctl.observe(10, 100) == 0  # recovery is immediate

    def test_peak_level_is_sticky(self):
        ctl = BrownoutController()
        ctl.observe(95, 100)
        ctl.observe(0, 100)
        assert ctl.level == 0
        assert ctl.peak_level == 3

    def test_zero_capacity_is_calm(self):
        ctl = BrownoutController()
        assert ctl.observe(10, 0) == 0


class TestEffects:
    def test_width_scale_doubles_per_level(self):
        ctl = BrownoutController(BrownoutPolicy(widen_factor=2.0))
        ctl.observe(0, 100)
        assert ctl.width_scale == 1.0
        ctl.observe(50, 100)
        assert ctl.width_scale == 2.0
        ctl.observe(95, 100)
        assert ctl.width_scale == 8.0

    def test_quota_clamp_starts_at_level_two(self):
        ctl = BrownoutController(BrownoutPolicy(clamp_factor=0.5))
        ctl.observe(50, 100)  # level 1
        assert ctl.quota_scale == 1.0
        ctl.observe(75, 100)  # level 2
        assert ctl.quota_scale == 0.5
        ctl.observe(95, 100)  # level 3
        assert ctl.quota_scale == 0.25

    def test_shed_only_at_level_three(self):
        ctl = BrownoutController(BrownoutPolicy(shed_target=0.75))
        ctl.observe(89, 100)
        assert ctl.shed_count(89, 100) == 0
        ctl.observe(95, 100)
        assert ctl.shed_count(95, 100) == 20  # down to 75 % of capacity

    def test_shed_never_negative(self):
        ctl = BrownoutController()
        ctl.observe(95, 100)
        assert ctl.shed_count(10, 100) == 0
