"""Shared fixtures for the serving front-end tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.models import JC69
from repro.trees import balanced_tree


@pytest.fixture(scope="package")
def case():
    """A small real likelihood case: (make_case, reference logL, plan)."""
    tree = balanced_tree(8)
    patterns = random_patterns(
        tree.tip_names(), 24, rng=np.random.default_rng(11)
    )
    model = JC69()
    plan = make_plan(tree, "concurrent")

    def make_case():
        return create_instance(tree, model, patterns), plan

    reference = execute_plan(*make_case())
    return make_case, reference, plan
