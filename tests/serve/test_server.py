"""End-to-end server behaviour: bit-identity, shedding, retries, chaos.

The contract under test (ISSUE acceptance criteria): every coalesced-
served request returns a value bit-identical to its serial single-
request evaluation; overload sheds are explicit, typed and ledger-
accounted with zero silent drops; and the whole serve schedule is
deterministic given a seed and an inline pool.
"""

from __future__ import annotations

import pytest

from repro.exec import FaultSpec, LikelihoodPool
from repro.serve import (
    REJECT_TENANT_QUOTA,
    SHED_BROWNOUT,
    SHED_EXPIRED,
    AdmissionConfig,
    BrownoutPolicy,
    CoalescePolicy,
    FairnessConfig,
    LikelihoodServer,
    RequestDims,
    ServerSaturatedError,
    StepClock,
    burst_storm,
    replay,
)

DIMS = RequestDims(state_count=4, pattern_count=24)


def make_server(case, clock, *, n_workers=3, verify=True, seed=0,
                fault_specs=None, dead_workers=(), **overrides):
    pool = LikelihoodPool(
        n_workers,
        executor="inline",
        clock=clock,
        sleep=lambda s: clock.advance(s),
        worker_fault_specs=fault_specs,
    )
    for worker_id in dead_workers:
        pool.workers[worker_id].breaker.evict()
    kwargs = dict(
        admission=AdmissionConfig(max_queued=64, tenant_quota=None),
        fairness=FairnessConfig(),
        coalesce=CoalescePolicy(max_width=4),
        verify=verify,
        jitter_seed=seed,
        clock=clock,
    )
    kwargs.update(overrides)
    return LikelihoodServer(pool, **kwargs)


class TestServing:
    def test_serves_bit_identical_and_ledger_closes(self, case):
        make_case, reference, _ = case
        clock = StepClock()
        server = make_server(case, clock)
        for i in range(10):
            server.submit(f"t{i % 3}", make_case, dims=DIMS)
        outcomes = server.drain()
        assert len(outcomes) == 10
        assert all(o.ok for o in outcomes)
        assert all(o.value == reference for o in outcomes)
        assert all(o.verified for o in outcomes)
        assert server.ledger.balances(), server.ledger.imbalances()
        assert server.ledger.drained()
        assert server.ledger.served == 10

    def test_coalescing_respects_width(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(case, clock, coalesce=CoalescePolicy(max_width=4))
        for i in range(8):
            server.submit("t", make_case, dims=DIMS)
        outcomes = server.drain()
        assert {o.coalesced_width for o in outcomes} == {4}
        assert server.ledger.coalesced_requests == 8

    def test_uncoalesced_baseline(self, case):
        make_case, reference, _ = case
        clock = StepClock()
        server = make_server(
            case, clock, coalesce=CoalescePolicy(enabled=False)
        )
        for i in range(4):
            server.submit("t", make_case, dims=DIMS)
        outcomes = server.drain()
        assert all(o.coalesced_width == 1 for o in outcomes)
        assert all(o.value == reference for o in outcomes)
        assert server.ledger.coalesced_requests == 0

    def test_rejection_is_typed_and_accounted(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(
            case, clock,
            admission=AdmissionConfig(max_queued=64, tenant_quota=2),
        )
        server.submit("hog", make_case, dims=DIMS)
        server.submit("hog", make_case, dims=DIMS)
        with pytest.raises(ServerSaturatedError) as excinfo:
            server.submit("hog", make_case, dims=DIMS)
        assert excinfo.value.reason == REJECT_TENANT_QUOTA
        assert server.ledger.rejected_by_reason == {REJECT_TENANT_QUOTA: 1}
        server.drain()
        assert server.ledger.balances()


class TestDeadlines:
    def test_expired_in_queue_is_shed_with_cause(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(case, clock)
        server.submit("t", make_case, deadline_s=0.1, dims=DIMS)
        clock.advance(0.2)
        outcomes = server.drain()
        assert [o.status for o in outcomes] == ["shed"]
        assert outcomes[0].cause == SHED_EXPIRED
        assert server.ledger.shed_by_cause == {SHED_EXPIRED: 1}
        assert server.ledger.balances()

    def test_late_value_is_delivered_and_counted(self, case):
        make_case, reference, _ = case
        clock = StepClock()

        def slow_make_case():
            clock.advance(0.5)  # execution outlives the budget
            return make_case()

        server = make_server(case, clock)
        server.submit("t", slow_make_case, deadline_s=0.1, dims=DIMS)
        outcomes = server.drain()
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert outcomes[0].late
        assert outcomes[0].value == reference
        assert server.ledger.late == 1
        assert server.ledger.balances()


class TestBrownout:
    def test_overload_sheds_deadline_ascending(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(
            case, clock,
            admission=AdmissionConfig(max_queued=20),
            brownout=BrownoutPolicy(shed_target=0.5),
        )
        # 19/20 queued = level 3 pressure; budgets identify the victims.
        for i in range(19):
            server.submit(
                f"t{i % 4}", make_case,
                deadline_s=10.0 + i,  # index i has the i-th soonest deadline
                dims=DIMS,
            )
        outcomes = server.drain()
        shed = [o for o in outcomes if o.status == "shed"]
        assert len(shed) == 9  # 19 - target 10
        assert all(o.cause == SHED_BROWNOUT for o in shed)
        # Soonest deadlines were shed first.
        assert sorted(o.index for o in shed) == list(range(9))
        assert server.brownout.peak_level == 3
        assert server.ledger.balances()
        assert server.ledger.drained()

    def test_brownout_widens_coalescing(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(
            case, clock,
            admission=AdmissionConfig(max_queued=16),
            coalesce=CoalescePolicy(max_width=2),
            brownout=BrownoutPolicy(thresholds=(0.5, 0.96, 0.97)),
        )
        for i in range(12):  # 12/16 = level 1: width doubles to 4
            server.submit("t", make_case, dims=DIMS)
        outcomes = server.drain()
        assert max(o.coalesced_width for o in outcomes) == 4


class TestRetry:
    def test_failed_batch_retries_members_uncoalesced(self, case):
        make_case, reference, _ = case
        clock = StepClock()
        # One worker, fail-fast policy, exactly one injected fault: the
        # coalesced batch's job surfaces, then each member's singleton
        # retry succeeds.
        server = make_server(
            case, clock, n_workers=1,
            fault_specs=[FaultSpec(rate=1.0, seed=3, max_faults=1,
                                   classes=("transient",))],
        )
        server.pool.workers[0].policy = None
        for i in range(2):
            server.submit("t", make_case, dims=DIMS)
        outcomes = server.drain()
        assert all(o.ok for o in outcomes)
        assert all(o.value == reference for o in outcomes)
        assert server.ledger.retried == 2
        assert server.ledger.balances()

    def test_exhausted_retry_fails_with_error(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(
            case, clock, n_workers=1, verify=False,
            fault_specs=[FaultSpec(rate=1.0, seed=3,
                                   classes=("transient",))],
        )
        server.pool.workers[0].policy = None
        server.submit("t", make_case, dims=DIMS)
        server.submit("t", make_case, dims=DIMS)
        outcomes = server.drain()
        assert all(o.status == "failed" for o in outcomes)
        assert all(o.error is not None for o in outcomes)
        assert server.ledger.failed == 2
        assert server.ledger.balances()
        assert server.ledger.drained()


class TestDeterminism:
    def test_same_seed_servers_produce_identical_schedules(self, case):
        """Satellite regression: the serve/shed schedule is a pure
        function of (arrivals, jitter_seed) with an inline pool."""
        make_case, _, _ = case

        def run(seed):
            clock = StepClock()
            server = make_server(
                case, clock, seed=seed,
                admission=AdmissionConfig(max_queued=24, tenant_quota=6),
                brownout=BrownoutPolicy(shed_target=0.5),
            )
            arrivals = burst_storm(
                41, n_tenants=5, n_requests=64, budget_s=0.4
            )
            replay(server, arrivals, lambda a: make_case,
                   clock=clock, dims=DIMS, step_every=24)
            return server.schedule_log

        first = run(seed=7)
        second = run(seed=7)
        assert first == second
        assert any(event == "shed" for event, *_ in first)
        assert any(event == "serve" for event, *_ in first)


class TestChaosSoak:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_burst_storm_with_dead_and_faulty_workers(self, case, seed):
        """Three-seed overload soak: burst storm, one dead worker, one
        faulty worker — ledger balanced, zero silent drops, every served
        value exact."""
        make_case, reference, _ = case
        clock = StepClock()
        server = make_server(
            case, clock, seed=seed,
            fault_specs=[FaultSpec(rate=0.3, seed=seed), None, None],
            dead_workers=(2,),
            admission=AdmissionConfig(max_queued=32, tenant_quota=8),
            fairness=FairnessConfig(in_flight_cap=6),
        )
        arrivals = burst_storm(seed, n_tenants=6, n_requests=96, budget_s=0.5)
        outcomes, rejections = replay(
            server, arrivals, lambda a: make_case,
            clock=clock, dims=DIMS, step_every=16,
        )
        ledger = server.ledger
        assert ledger.balances(), ledger.imbalances()
        assert ledger.drained()
        assert len(outcomes) + len(rejections) == ledger.offered == 96
        served = [o for o in outcomes if o.ok]
        assert served, "storm must serve someone"
        assert all(o.value == reference for o in served)
        assert all(o.verified for o in served)
        assert ledger.verify_failures == 0


class TestFairnessUnderLoad:
    def test_cold_tenant_not_starved_by_hot_one(self, case):
        make_case, _, _ = case
        clock = StepClock()
        server = make_server(
            case, clock,
            admission=AdmissionConfig(max_queued=64),
            fairness=FairnessConfig(quantum=1.0),
            max_dispatch=4,
        )
        for i in range(20):
            server.submit("hot", make_case, dims=DIMS)
        server.submit("cold", make_case, dims=DIMS)
        # The cold tenant must be served in the first scheduling cycle,
        # not after the hot backlog drains.
        first_cycle = server.step()
        assert any(o.tenant == "cold" and o.ok for o in first_cycle)
        server.drain()
        assert server.ledger.balances()
