"""Coalescing: compatibility keys, assembly, and arena-sharing bit-identity."""

from __future__ import annotations

import pytest

from repro.core.planner import execute_plan
from repro.gpu import SimulatedDevice, WorkloadDims
from repro.serve import (
    BatchAssembler,
    CoalescedBatch,
    CoalescePolicy,
    CompatKey,
    RequestDims,
    pattern_bucket,
)
from repro.serve.request import LikelihoodRequest


def request(index, tenant="t", dims=None, set_sizes=(), make_case=None):
    return LikelihoodRequest(
        index=index, tenant=tenant,
        make_case=make_case or (lambda: (None, None)),
        label=f"r{index}", dims=dims, set_sizes=tuple(set_sizes),
    )


class TestPatternBucket:
    def test_split_is_exact(self):
        assert pattern_bucket(24, "split") == 24

    def test_pad_rounds_to_power_of_two(self):
        assert pattern_bucket(24, "pad") == 32
        assert pattern_bucket(32, "pad") == 32
        assert pattern_bucket(33, "pad") == 64
        assert pattern_bucket(1, "pad") == 1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            pattern_bucket(0, "split")
        with pytest.raises(ValueError):
            pattern_bucket(8, "truncate")


class TestCompatKey:
    def test_split_separates_different_pattern_counts(self):
        a = CompatKey.of(RequestDims(4, 24), "split")
        b = CompatKey.of(RequestDims(4, 30), "split")
        assert a != b

    def test_pad_merges_same_bucket(self):
        a = CompatKey.of(RequestDims(4, 24), "pad")
        b = CompatKey.of(RequestDims(4, 30), "pad")
        assert a == b

    def test_state_count_always_separates(self):
        a = CompatKey.of(RequestDims(4, 24), "pad")
        b = CompatKey.of(RequestDims(20, 24), "pad")
        assert a != b

    def test_precision_always_separates(self):
        a = CompatKey.of(RequestDims(4, 24, precision="double"), "pad")
        b = CompatKey.of(RequestDims(4, 24, precision="single"), "pad")
        assert a != b


class TestAssembler:
    def test_groups_compatible_up_to_width(self):
        dims = RequestDims(4, 24)
        assembler = BatchAssembler(CoalescePolicy(max_width=3))
        batches = assembler.assemble([request(i, dims=dims) for i in range(7)])
        assert [b.width for b in batches] == [3, 3, 1]

    def test_preserves_dispatch_order_within_class(self):
        dims = RequestDims(4, 24)
        assembler = BatchAssembler(CoalescePolicy(max_width=8))
        batches = assembler.assemble([request(i, dims=dims) for i in range(5)])
        assert [m.index for m in batches[0].members] == [0, 1, 2, 3, 4]

    def test_incompatible_requests_never_share(self):
        assembler = BatchAssembler(CoalescePolicy(max_width=8, mode="split"))
        picks = [
            request(0, dims=RequestDims(4, 24)),
            request(1, dims=RequestDims(4, 30)),
            request(2, dims=RequestDims(4, 24)),
        ]
        batches = assembler.assemble(picks)
        widths = {b.key.pattern_bucket: b.width for b in batches}
        assert widths == {24: 2, 30: 1}

    def test_dimless_request_is_singleton(self):
        dims = RequestDims(4, 24)
        assembler = BatchAssembler(CoalescePolicy(max_width=8))
        batches = assembler.assemble(
            [request(0, dims=dims), request(1, dims=None), request(2, dims=dims)]
        )
        assert sorted(b.width for b in batches) == [1, 2]

    def test_disabled_policy_yields_singletons(self):
        dims = RequestDims(4, 24)
        assembler = BatchAssembler(CoalescePolicy(enabled=False))
        batches = assembler.assemble([request(i, dims=dims) for i in range(4)])
        assert [b.width for b in batches] == [1, 1, 1, 1]

    def test_width_scale_widens_batches(self):
        dims = RequestDims(4, 24)
        assembler = BatchAssembler(CoalescePolicy(max_width=2))
        batches = assembler.assemble(
            [request(i, dims=dims) for i in range(8)], width_scale=2.0
        )
        assert [b.width for b in batches] == [4, 4]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            CoalescedBatch([])


class TestLaunchSchedule:
    def test_lockstep_rounds_sum_set_sizes(self):
        batch = CoalescedBatch(
            [
                request(0, set_sizes=(4, 2, 1)),
                request(1, set_sizes=(4, 2, 1)),
                request(2, set_sizes=(3, 1)),
            ]
        )
        assert batch.launch_schedule() == [11, 5, 2]
        assert batch.solo_launches() == 8

    def test_unknown_shapes_yield_empty_schedule(self):
        batch = CoalescedBatch([request(0), request(1, set_sizes=(2,))])
        assert batch.launch_schedule() == []

    def test_model_prices_coalescing_ahead_of_solo(self):
        device = SimulatedDevice()
        dims = WorkloadDims(patterns=128, states=4, categories=1)
        timing = device.time_coalesced([[4, 2, 1]] * 8, dims)
        assert timing.speedup > 1.0
        assert timing.coalesced_launches == 3
        assert timing.solo_launches == 24
        assert timing.launches_saved == 21

    def test_curve_trades_latency_for_throughput(self):
        device = SimulatedDevice()
        dims = WorkloadDims(patterns=128, states=4, categories=1)
        curve = device.coalescing_curve([4, 2, 1], dims, [1, 4, 16])
        throughputs = [point[1] for point in curve]
        latencies = [point[2] for point in curve]
        assert throughputs == sorted(throughputs)  # aggregate rises
        assert latencies == sorted(latencies)  # per-request pays


class TestArenaSharing:
    def test_same_shape_members_share_one_workspace(self, case):
        make_case, reference, plan = case
        instances = []

        def tracked_make_case():
            instance, p = make_case()
            instances.append(instance)
            return instance, p

        batch = CoalescedBatch(
            [request(i, make_case=tracked_make_case) for i in range(3)]
        )

        class DirectCtx:
            def execute(self, instance, p):
                return execute_plan(instance, p)

        values = batch.job_fn()(DirectCtx())
        # Every member computed the exact serial value...
        assert values == [reference] * 3
        # ...and later members adopted the first member's arena.
        arenas = {id(instance.workspace) for instance in instances}
        assert len(arenas) == 1

    def test_adopt_workspace_rejects_mismatched_dims(self, case):
        make_case, _, _ = case
        instance, _ = make_case()
        from repro.beagle.workspace import Workspace

        wrong = Workspace(
            dtype=instance.workspace.dtype,
            category_count=instance.workspace.category_count,
            pattern_count=instance.workspace.pattern_count + 1,
            state_count=instance.workspace.state_count,
        )
        with pytest.raises(ValueError):
            instance.adopt_workspace(wrong)

    def test_adopted_arena_is_bit_transparent(self, case):
        # Evaluating on an arena another instance already used must not
        # change a single bit of the result (scratch is write-before-
        # read): run A, adopt A's arena into B, run B, compare to a
        # clean serial evaluation.
        make_case, reference, _ = case
        a, plan = make_case()
        execute_plan(a, plan)
        b, plan_b = make_case()
        b.adopt_workspace(a.workspace)
        assert execute_plan(b, plan_b) == reference
