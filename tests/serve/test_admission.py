"""Admission control: typed reject reasons and deadline feasibility."""

from __future__ import annotations

import pytest

from repro.exec.errors import PoolSaturatedError
from repro.serve import (
    REJECT_BROWNOUT,
    REJECT_INFEASIBLE,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
    AdmissionConfig,
    AdmissionController,
    ServerSaturatedError,
)


class TestConfigValidation:
    def test_rejects_nonpositive_queue(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queued=0)

    def test_rejects_nonpositive_quota(self):
        with pytest.raises(ValueError):
            AdmissionConfig(tenant_quota=0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            AdmissionConfig(service_ewma_alpha=0.0)


class TestDecisions:
    def test_admits_under_all_bounds(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=4, tenant_quota=2))
        decision = ctl.decide(tenant="a", queue_depth=0, tenant_depth=0)
        assert decision.admit
        assert decision.reason is None

    def test_queue_full_is_typed(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=4))
        decision = ctl.decide(tenant="a", queue_depth=4, tenant_depth=4)
        assert not decision.admit
        assert decision.reason == REJECT_QUEUE_FULL

    def test_tenant_quota_is_typed(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64, tenant_quota=2))
        decision = ctl.decide(tenant="a", queue_depth=2, tenant_depth=2)
        assert not decision.admit
        assert decision.reason == REJECT_TENANT_QUOTA

    def test_quota_check_ignores_other_tenants(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64, tenant_quota=2))
        # Queue deep with other tenants' work; this tenant has room.
        decision = ctl.decide(tenant="a", queue_depth=30, tenant_depth=0)
        assert decision.admit

    def test_brownout_clamp_gets_its_own_reason(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64, tenant_quota=8))
        # At depth 4 the full quota of 8 would admit; the 0.5 clamp
        # rejects — so the reason must say brownout, not tenant-quota.
        decision = ctl.decide(
            tenant="a", queue_depth=4, tenant_depth=4, quota_scale=0.5
        )
        assert not decision.admit
        assert decision.reason == REJECT_BROWNOUT

    def test_clamped_quota_never_drops_below_one(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64, tenant_quota=4))
        decision = ctl.decide(
            tenant="a", queue_depth=0, tenant_depth=0, quota_scale=0.01
        )
        assert decision.admit


class TestFeasibility:
    def test_no_estimate_no_rejection(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64))
        decision = ctl.decide(
            tenant="a", queue_depth=50, tenant_depth=0, budget_s=1e-9
        )
        assert decision.admit  # no service sample yet: cannot judge

    def test_infeasible_deadline_rejected(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64))
        ctl.observe_service(0.1)
        decision = ctl.decide(
            tenant="a", queue_depth=10, tenant_depth=0,
            workers=1, budget_s=0.05,
        )
        assert not decision.admit
        assert decision.reason == REJECT_INFEASIBLE

    def test_feasible_deadline_admitted(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64))
        ctl.observe_service(0.001)
        decision = ctl.decide(
            tenant="a", queue_depth=10, tenant_depth=0,
            workers=4, budget_s=1.0,
        )
        assert decision.admit

    def test_more_workers_make_waits_feasible(self):
        ctl = AdmissionController(AdmissionConfig(max_queued=64))
        ctl.observe_service(0.1)
        kwargs = dict(tenant="a", queue_depth=10, tenant_depth=0, budget_s=0.5)
        assert not ctl.decide(workers=1, **kwargs).admit
        assert ctl.decide(workers=8, **kwargs).admit

    def test_feasibility_off_admits(self):
        ctl = AdmissionController(
            AdmissionConfig(max_queued=64, feasibility=False)
        )
        ctl.observe_service(0.1)
        decision = ctl.decide(
            tenant="a", queue_depth=10, tenant_depth=0, budget_s=1e-9
        )
        assert decision.admit

    def test_ewma_folds_samples(self):
        ctl = AdmissionController(AdmissionConfig(service_ewma_alpha=0.5))
        ctl.observe_service(1.0)
        ctl.observe_service(0.0)
        assert ctl.service_estimate_s == pytest.approx(0.5)
        ctl.observe_service(-1.0)  # negative samples ignored
        assert ctl.service_estimate_s == pytest.approx(0.5)


class TestServerSaturatedError:
    def test_is_a_pool_saturated_error(self):
        err = ServerSaturatedError(
            "full", reason=REJECT_QUEUE_FULL, tenant="a",
            capacity=4, pending=4,
        )
        assert isinstance(err, PoolSaturatedError)
        assert err.reason == REJECT_QUEUE_FULL
        assert err.tenant == "a"
