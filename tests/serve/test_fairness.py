"""Deficit-round-robin fairness: shares, caps, and the starvation bound."""

from __future__ import annotations

import math

import pytest

from repro.serve import DeficitRoundRobin, FairnessConfig
from repro.serve.request import LikelihoodRequest


def request(index, tenant, cost=1):
    return LikelihoodRequest(
        index=index, tenant=tenant, make_case=lambda: (None, None),
        label=f"r{index}", cost=cost,
    )


def fill(drr, tenant, n, cost=1, start=0):
    for i in range(n):
        drr.enqueue(request(start + i, tenant, cost=cost))


class TestConfigValidation:
    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ValueError):
            FairnessConfig(quantum=0.0)

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            FairnessConfig(in_flight_cap=0)

    def test_rejects_nonpositive_weight(self):
        drr = DeficitRoundRobin()
        with pytest.raises(ValueError):
            drr.set_weight("a", 0.0)


class TestScheduling:
    def test_round_robin_across_equal_tenants(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=1.0))
        fill(drr, "a", 3, start=0)
        fill(drr, "b", 3, start=10)
        picks = drr.pick(6)
        tenants = [p.tenant for p in picks]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_fifo_within_tenant(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 4)
        indices = [p.index for p in drr.pick(4)]
        assert indices == sorted(indices)

    def test_weighted_tenant_gets_proportional_share(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=1.0))
        drr.set_weight("heavy", 3.0)
        fill(drr, "heavy", 30, start=0)
        fill(drr, "light", 30, start=100)
        picks = drr.pick(20)
        heavy = sum(1 for p in picks if p.tenant == "heavy")
        light = len(picks) - heavy
        assert heavy == pytest.approx(3 * light, abs=3)

    def test_expensive_request_waits_for_credit_but_dispatches(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=2.0))
        drr.enqueue(request(0, "a", cost=7))
        picks = drr.pick(1)
        assert [p.index for p in picks] == [0]

    def test_starvation_bound_holds(self):
        # A cost-c head request must dispatch within
        # ceil(c / (quantum * weight)) of its tenant's visits, whatever
        # the competing load.
        drr = DeficitRoundRobin(FairnessConfig(quantum=2.0))
        drr.set_weight("slow", 0.5)
        cost = 9
        drr.enqueue(request(0, "slow", cost=cost))
        fill(drr, "busy", 100, start=10)
        bound = drr.starvation_bound("slow", cost)
        assert bound == math.ceil(cost / (2.0 * 0.5))
        # One full rotation per pick round; after `bound` rounds the
        # slow tenant's request must have been picked.
        picked = []
        for _ in range(bound):
            picked.extend(drr.pick(2))
        assert any(p.index == 0 for p in picked)

    def test_empty_tenant_loses_credit(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=4.0))
        fill(drr, "a", 1)
        assert len(drr.pick(4)) == 1
        # The drained tenant must not bank credit while idle.
        assert drr._tenants["a"].deficit == 0.0

    def test_pick_zero_or_empty(self):
        drr = DeficitRoundRobin()
        assert drr.pick(0) == []
        assert drr.pick(5) == []


class TestInFlightCap:
    def test_cap_limits_picks(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=10.0, in_flight_cap=2))
        fill(drr, "a", 6)
        picks = drr.pick(6)
        assert len(picks) == 2  # cap binds even with credit to spare

    def test_cap_counts_existing_in_flight(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=10.0, in_flight_cap=3))
        fill(drr, "a", 6)
        picks = drr.pick(6, in_flight={"a": 2})
        assert len(picks) == 1

    def test_capped_tenant_does_not_block_others(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=10.0, in_flight_cap=1))
        fill(drr, "a", 5, start=0)
        fill(drr, "b", 5, start=10)
        picks = drr.pick(10, in_flight={"a": 1})
        assert all(p.tenant == "b" for p in picks)
        assert len(picks) == 1  # b's cap binds too

    def test_capped_visit_accrues_no_credit(self):
        drr = DeficitRoundRobin(FairnessConfig(quantum=5.0, in_flight_cap=1))
        fill(drr, "a", 3)
        drr.pick(3, in_flight={"a": 1})  # fully capped: no dispatch
        # Credit must not build while capped (it would burst on uncap).
        assert drr._tenants["a"].deficit == 0.0


class TestQueueSurface:
    def test_remove_if_preserves_survivor_order(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 6)
        removed = drr.remove_if(lambda r: r.index % 2 == 0)
        assert sorted(r.index for r in removed) == [0, 2, 4]
        assert [r.index for r in drr.queued_requests()] == [1, 3, 5]

    def test_pop_deadline_ascending_takes_soonest(self):
        from repro.exec.health import Deadline

        clock = lambda: 0.0  # noqa: E731
        drr = DeficitRoundRobin()
        for i, budget in enumerate([5.0, 1.0, 3.0]):
            req = request(i, "a")
            req.deadline = Deadline(budget, clock=clock)
            drr.enqueue(req)
        victims = drr.pop_deadline_ascending(2)
        assert [v.index for v in victims] == [1, 2]
        assert drr.pending == 1

    def test_tenant_depth(self):
        drr = DeficitRoundRobin()
        fill(drr, "a", 3)
        assert drr.tenant_depth("a") == 3
        assert drr.tenant_depth("ghost") == 0
