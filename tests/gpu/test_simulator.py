"""Unit and shape tests for the simulated device.

The "shape" tests encode the paper's qualitative findings: who wins, by
roughly what factor, and where saturation bends the curves.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import (
    count_operation_sets,
    make_plan,
    optimal_reroot_fast,
    speedup_balanced,
    tree_theoretical_speedup,
)
from repro.gpu import (
    GP100,
    SMALL_GPU,
    BenchmarkPoint,
    SimulatedDevice,
    WorkloadDims,
    simulate_tree,
    simulated_speedup,
)
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree
from tests.strategies import tree_strategy

DIMS = WorkloadDims(patterns=512, states=4)


class TestSimulatedDevice:
    def test_time_plan_matches_set_sizes(self):
        tree = balanced_tree(8)
        device = SimulatedDevice(GP100)
        timing = device.time_plan(make_plan(tree, "concurrent"), DIMS)
        assert timing.n_launches == count_operation_sets(tree)
        assert timing.n_operations == 7

    def test_serial_launch_count(self):
        tree = balanced_tree(16)
        timing = SimulatedDevice().time_tree(tree, DIMS, "serial")
        assert timing.n_launches == 15

    def test_benchmark_point(self):
        point = SimulatedDevice().benchmark(balanced_tree(8), DIMS, label="bal8")
        assert isinstance(point, BenchmarkPoint)
        assert point.label == "bal8"
        assert point.n_launches == 3
        assert point.speedup_vs_serial > 1.0


class TestPaperShapes:
    def test_table3_balanced_realisation(self):
        """Table III: the balanced 64-OTU tree realises well under half of
        its 10.5× theoretical speedup (device saturation)."""
        s = simulated_speedup(balanced_tree(64))
        assert 0.25 * 10.5 < s < 0.6 * 10.5

    def test_table3_pectinate_unrerooted_is_serial(self):
        assert simulated_speedup(pectinate_tree(64)) == pytest.approx(1.0)

    def test_table3_pectinate_rerooted_approaches_two(self):
        rerooted = optimal_reroot_fast(pectinate_tree(64)).tree
        s = simulated_speedup(rerooted)
        assert 1.4 < s < 63 / 32  # below the 1.97 theoretical bound

    @given(tree_strategy(min_tips=4, max_tips=50))
    @settings(max_examples=20)
    def test_speedup_never_exceeds_theory(self, tree):
        """No simulated speedup may exceed (n−1)/sets — Table III's
        consistency check ("none of the empirical results fall outside
        the theoretical bounds")."""
        assert simulated_speedup(tree) <= tree_theoretical_speedup(tree) + 1e-9

    @given(tree_strategy(min_tips=4, max_tips=40, kinds=("pectinate", "random")))
    @settings(max_examples=20)
    def test_rerooting_never_slows_the_model(self, tree):
        rerooted = optimal_reroot_fast(tree).tree
        t_orig = simulate_tree(tree).seconds
        t_new = simulate_tree(rerooted).seconds
        assert t_new <= t_orig + 1e-12

    def test_fig5_throughput_rises_as_sets_fall(self):
        """Figure 5: fewer operation sets → higher throughput."""
        points = []
        for seed in range(20):
            tree = random_attachment_tree(256, seed)
            timing = simulate_tree(tree)
            points.append((timing.n_launches, timing.gflops))
        points.sort()
        # Spearman-style check: throughput of the most-batched quartile
        # beats the least-batched quartile.
        low_sets = [g for _, g in points[:5]]
        high_sets = [g for _, g in points[-5:]]
        assert min(low_sets) > max(high_sets)

    def test_fig6_pectinate_flat_balanced_saturating(self):
        """Figure 6: pectinate throughput is flat in n; balanced grows
        then flattens (saturation); rerooted pectinate sits ~2× above
        pectinate."""
        pect = [simulate_tree(pectinate_tree(n)).gflops for n in (16, 256, 2048)]
        assert max(pect) / min(pect) < 1.05  # flat

        bal = [simulate_tree(balanced_tree(n)).gflops for n in (16, 256, 2048)]
        assert bal[0] < bal[1] < bal[2]  # growing
        growth_early = bal[1] / bal[0]
        growth_late = bal[2] / bal[1]
        assert growth_late < growth_early  # flattening

        reroot = simulate_tree(optimal_reroot_fast(pectinate_tree(256)).tree).gflops
        assert 1.5 < reroot / pect[1] < 2.0

    def test_best_case_pectinate_speedup_band(self):
        """§VII-D: best-case rerooted-pectinate speedup approaches but
        does not reach 2 (paper: 1.93× at 406 OTUs)."""
        best = max(
            simulated_speedup(optimal_reroot_fast(pectinate_tree(n)).tree)
            for n in (64, 256, 406, 1024)
        )
        assert 1.8 < best < 2.0

    def test_small_device_gains_less(self):
        """Device capacity gates concurrency gains (paper §I): a small
        GPU saturates early, so the same balanced tree gains less."""
        tree = balanced_tree(256)
        big = simulated_speedup(tree, spec=GP100)
        small = simulated_speedup(tree, spec=SMALL_GPU)
        assert small < big

    def test_more_patterns_reduce_concurrency_gains(self):
        """§VI: the paper uses few (512) patterns precisely because large
        problems saturate the device at a single node."""
        tree = balanced_tree(64)
        few = simulated_speedup(tree, patterns=128)
        many = simulated_speedup(tree, patterns=16384)
        assert many < few


class TestIncrementalTiming:
    def _plans(self):
        from repro.core import incremental_plan

        tree = balanced_tree(32)
        full = make_plan(tree, "concurrent")
        dirty = incremental_plan(tree, [tree.tips()[0]])
        return full, dirty

    def test_time_plan_incremental_rejects_full_plans(self):
        full, _ = self._plans()
        with pytest.raises(ValueError, match="full traversal"):
            SimulatedDevice().time_plan_incremental(full, DIMS)

    def test_incremental_speedup_shape(self):
        full, dirty = self._plans()
        timing = SimulatedDevice().incremental_speedup(full, dirty, DIMS)
        assert timing.full.n_operations == 31
        assert timing.incremental.n_operations < timing.full.n_operations
        assert timing.operations_saved == (
            timing.full.n_operations - timing.incremental.n_operations
        )
        assert timing.speedup > 1.0
        assert timing.incremental.seconds > 0.0


class TestShardModel:
    def test_time_sharded_widths_match_plan_shards(self):
        from repro.exec.sharding import plan_shards

        tree = balanced_tree(16)
        plan = make_plan(tree, "concurrent")
        timing = SimulatedDevice(GP100).time_sharded(plan, DIMS, 4)
        expected = tuple(s.width for s in plan_shards(DIMS.patterns, 4))
        assert timing.shard_widths == expected
        assert timing.n_shards == 4
        assert sum(timing.shard_widths) == DIMS.patterns

    def test_sharding_overhead_is_nonnegative(self):
        # Each shard pays the fixed launch cost per operation set, so
        # modelled total device time never undercuts the full-width run.
        tree = balanced_tree(16)
        plan = make_plan(tree, "concurrent")
        device = SimulatedDevice(GP100)
        for n in (1, 2, 4, 8):
            timing = device.time_sharded(plan, DIMS, n)
            assert timing.overhead >= -1e-12
            assert timing.seconds <= sum(timing.shard_seconds) + 1e-12

    def test_more_workers_shrink_makespan(self):
        tree = balanced_tree(16)
        plan = make_plan(tree, "concurrent")
        device = SimulatedDevice(GP100)
        one = device.time_sharded(plan, DIMS, 8, n_workers=1)
        four = device.time_sharded(plan, DIMS, 8, n_workers=4)
        assert four.seconds < one.seconds
        assert four.speedup > one.speedup

    def test_scaling_curve_monotone_through_width_floor(self):
        tree = balanced_tree(16)
        plan = make_plan(tree, "concurrent")
        device = SimulatedDevice(GP100)
        curve = device.shard_scaling_curve(plan, DIMS, [1, 2, 4, 8, 16])
        counts = [n for n, _ in curve]
        rates = [r for _, r in curve]
        assert counts == [1, 2, 4, 8, 16]
        assert all(r > 0 for r in rates)
        # One worker per shard: throughput must not degrade as shards
        # are added (launch overhead is hidden by parallel workers).
        assert rates[-1] >= rates[0]


class TestGradientTiming:
    def test_op_counts_match_theory(self):
        device = SimulatedDevice(GP100)
        for n in (8, 16, 32):
            tree = balanced_tree(n, branch_length=0.1)
            timing = device.time_gradient(tree, DIMS)
            assert timing.n_edges == 2 * n - 3
            assert timing.one_sweep.n_operations == 3 * n - 5
            assert timing.per_edge.n_operations == (2 * n - 3) * (n - 1)

    def test_speedup_grows_with_taxa(self):
        device = SimulatedDevice(GP100)
        speedups = [
            device.time_gradient(
                balanced_tree(n, branch_length=0.1), DIMS
            ).speedup
            for n in (8, 16, 32, 64)
        ]
        assert speedups == sorted(speedups)
        assert speedups[0] > 1.0

    def test_launch_and_operation_savings(self):
        device = SimulatedDevice(GP100)
        timing = device.time_gradient(pectinate_tree(16, branch_length=0.1), DIMS)
        assert timing.launches_saved == (
            timing.per_edge.n_launches - timing.one_sweep.n_launches
        )
        assert timing.operations_saved == (
            timing.per_edge.n_operations - timing.one_sweep.n_operations
        )
        assert timing.launches_saved > 0 and timing.operations_saved > 0

    def test_explicit_plan_reused(self):
        from repro.core import make_gradient_plan

        device = SimulatedDevice(GP100)
        tree = balanced_tree(8, branch_length=0.1)
        gplan = make_gradient_plan(tree)
        a = device.time_gradient(tree, DIMS, plan=gplan)
        b = device.time_gradient(tree, DIMS)
        assert a.one_sweep.seconds == b.one_sweep.seconds
        assert a.per_edge.seconds == b.per_edge.seconds

    def test_serial_mode_prices_more_launches(self):
        device = SimulatedDevice(GP100)
        tree = balanced_tree(16, branch_length=0.1)
        serial = device.time_gradient(tree, DIMS, "serial")
        batched = device.time_gradient(tree, DIMS)
        assert serial.one_sweep.n_launches > batched.one_sweep.n_launches
        assert serial.one_sweep.seconds > batched.one_sweep.seconds


class TestPadPricing:
    """Honest padded-lane economics for the serve layer's pad mode."""

    def test_default_reports_no_waste(self):
        device = SimulatedDevice(GP100)
        timing = device.time_coalesced([[4, 2, 1]] * 4, DIMS)
        assert timing.wasted_seconds == 0.0
        assert timing.wasted_fraction == 0.0

    def test_padding_under_saturation_is_free(self):
        # Far below device saturation the padded lanes ride in the same
        # waves: no extra device time, waste exactly zero.
        device = SimulatedDevice(GP100)
        dims = WorkloadDims(patterns=128, states=4)
        timing = device.time_coalesced(
            [[2, 1]] * 2, dims, member_patterns=[96, 128]
        )
        assert timing.wasted_seconds == 0.0
        assert timing.speedup > 1.0

    def test_padding_past_saturation_costs_waves(self):
        device = SimulatedDevice(SMALL_GPU)
        dims = WorkloadDims(patterns=4096, states=4, categories=4)
        timing = device.time_coalesced(
            [[8, 4, 2]] * 6, dims, member_patterns=[256] * 6
        )
        assert timing.wasted_seconds > 0.0
        assert 0.0 < timing.wasted_fraction < 1.0

    def test_true_width_solo_baseline_is_cheaper(self):
        device = SimulatedDevice(SMALL_GPU)
        dims = WorkloadDims(patterns=4096, states=4, categories=4)
        padded_solo = device.time_coalesced([[8, 4, 2]] * 6, dims)
        true_solo = device.time_coalesced(
            [[8, 4, 2]] * 6, dims, member_patterns=[256] * 6
        )
        # Same coalesced schedule, honest (narrower) solo baseline.
        assert true_solo.coalesced_seconds == padded_solo.coalesced_seconds
        assert true_solo.solo_seconds < padded_solo.solo_seconds
        assert true_solo.speedup < padded_solo.speedup

    def test_validation(self):
        device = SimulatedDevice(GP100)
        with pytest.raises(ValueError, match="kernel"):
            device.time_coalesced(
                [[2]] * 2, DIMS, mechanism="streams", member_patterns=[64, 64]
            )
        with pytest.raises(ValueError, match="one pattern count per member"):
            device.time_coalesced([[2]] * 2, DIMS, member_patterns=[64])
        with pytest.raises(ValueError, match="exceeds the padded width"):
            device.time_coalesced(
                [[2]] * 2, DIMS, member_patterns=[64, DIMS.patterns + 1]
            )
