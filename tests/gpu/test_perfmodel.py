"""Unit and property tests for the analytical timing model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.beagle import operation_flops
from repro.gpu import GP100, SMALL_GPU, WorkloadDims, launch_time, time_set_sizes


DIMS = WorkloadDims(patterns=512, states=4)


class TestWorkloadDims:
    def test_threads(self):
        assert DIMS.threads_per_operation == 2048
        assert WorkloadDims(100, 4, 4).threads_per_operation == 1600

    def test_flops_match_kernels(self):
        assert DIMS.flops_per_operation == operation_flops(512, 4, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadDims(patterns=0)


class TestLaunchTime:
    def test_single_op_one_wave(self):
        # 2,048 threads on a 7,168-thread device: undersaturated.
        t = launch_time(GP100, DIMS, 1)
        assert t.n_waves == 1
        assert t.seconds == pytest.approx(
            GP100.launch_overhead_s + GP100.per_op_overhead_s + GP100.wave_time_s
        )

    def test_wave_quantisation(self):
        # ceil(k * 2048 / 7168) waves.
        for k, waves in [(1, 1), (3, 1), (4, 2), (7, 2), (8, 3), (32, 10)]:
            assert launch_time(GP100, DIMS, k).n_waves == waves

    def test_small_device_saturates_sooner(self):
        big = launch_time(GP100, DIMS, 8)
        small = launch_time(SMALL_GPU, DIMS, 8)
        assert small.n_waves > big.n_waves
        assert small.seconds > big.seconds

    def test_rejects_empty_launch(self):
        with pytest.raises(ValueError):
            launch_time(GP100, DIMS, 0)

    @given(st.integers(1, 2000))
    def test_monotone_in_operations(self, k):
        assert launch_time(GP100, DIMS, k + 1).seconds >= launch_time(GP100, DIMS, k).seconds

    @given(st.integers(1, 64), st.integers(1, 64))
    def test_batching_never_slower_than_two_launches(self, a, b):
        """The core economics of the paper: one launch of a+b ops is
        always at least as fast as separate launches of a and b ops."""
        together = launch_time(GP100, DIMS, a + b).seconds
        separate = launch_time(GP100, DIMS, a).seconds + launch_time(GP100, DIMS, b).seconds
        assert together <= separate + 1e-15


class TestEvaluationTiming:
    def test_totals(self):
        timing = time_set_sizes(GP100, DIMS, [4, 2, 1])
        assert timing.n_launches == 3
        assert timing.n_operations == 7
        assert timing.seconds == pytest.approx(
            sum(launch_time(GP100, DIMS, k).seconds for k in (4, 2, 1))
        )

    def test_flops_and_gflops(self):
        timing = time_set_sizes(GP100, DIMS, [1])
        assert timing.flops == DIMS.flops_per_operation
        assert timing.gflops == pytest.approx(
            timing.flops / timing.seconds / 1e9
        )

    def test_serial_vs_batched_shape(self):
        # 63 single-op launches vs the balanced-64 schedule: the batched
        # schedule must be several times faster (Table III regime).
        serial = time_set_sizes(GP100, DIMS, [1] * 63)
        batched = time_set_sizes(GP100, DIMS, [32, 16, 8, 4, 2, 1])
        assert serial.n_operations == batched.n_operations
        speedup = serial.seconds / batched.seconds
        assert 2.0 < speedup < 10.5  # below the theoretical bound

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=50))
    def test_gflops_bounded_by_device_ceiling(self, sizes):
        # Effective throughput can never exceed one wave's worth of FLOPs
        # per wave time.
        timing = time_set_sizes(GP100, DIMS, sizes)
        flops_per_thread = DIMS.flops_per_operation / DIMS.threads_per_operation
        ceiling = GP100.concurrent_threads * flops_per_thread / GP100.wave_time_s / 1e9
        assert timing.gflops <= ceiling + 1e-9


class TestOccupancy:
    def test_single_small_op_low_occupancy(self):
        t = launch_time(GP100, DIMS, 1)
        # 2,048 threads on a 7,168-thread device.
        assert t.occupancy == pytest.approx(2048 / 7168)

    def test_full_waves_high_occupancy(self):
        t = launch_time(GP100, DIMS, 7)  # 14,336 threads = exactly 2 waves
        assert t.occupancy == pytest.approx(1.0)

    def test_rerooting_raises_mean_occupancy(self):
        """The §I framing: concurrency raises achieved occupancy."""
        serial = time_set_sizes(GP100, DIMS, [1] * 63)
        batched = time_set_sizes(GP100, DIMS, [32, 16, 8, 4, 2, 1])
        assert batched.mean_occupancy > serial.mean_occupancy

    def test_occupancy_bounded(self):
        for k in (1, 3, 7, 20, 100):
            t = launch_time(GP100, DIMS, k)
            assert 0.0 < t.occupancy <= 1.0


class TestMemoryFootprint:
    def test_instance_accounting(self):
        from repro.beagle import BeagleInstance
        import numpy as np

        inst = BeagleInstance(8, 7, 15, 128, 4, category_count=2,
                              scale_buffer_count=8)
        fp = inst.memory_footprint()
        assert fp["partials"] == 7 * 2 * 128 * 4 * 8
        assert fp["matrices"] == 15 * 2 * 4 * 4 * 8
        assert fp["scale"] == 8 * 128 * 8
        assert fp["total"] == sum(
            v for k, v in fp.items() if k != "total"
        )

    def test_single_precision_halves_partials(self):
        from repro.beagle import BeagleInstance
        import numpy as np

        double = BeagleInstance(4, 3, 7, 64, 4).memory_footprint()
        single = BeagleInstance(4, 3, 7, 64, 4, dtype=np.float32).memory_footprint()
        assert single["partials"] == double["partials"] // 2
