"""Unit tests for device specifications."""

from __future__ import annotations

import pytest

from repro.gpu import GP100, QUADRO_P5000, SMALL_GPU, DeviceSpec


class TestDeviceSpec:
    def test_gp100_matches_table1(self):
        # Table I: Quadro GP100 with 3,584 CUDA cores, 720 GB/s HBM2.
        assert GP100.cuda_cores == 3584
        assert GP100.memory_bandwidth_gbs == 720.0

    def test_concurrent_threads(self):
        assert GP100.concurrent_threads == 3584 * GP100.threads_per_core

    def test_presets_ordering(self):
        assert GP100.cuda_cores > QUADRO_P5000.cuda_cores > SMALL_GPU.cuda_cores

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", cuda_cores=0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", cuda_cores=8, launch_overhead_s=0.0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", cuda_cores=8, per_op_overhead_s=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            GP100.cuda_cores = 1
