"""Unit tests for the streams-based execution model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import (
    GP100,
    WorkloadDims,
    launch_time,
    streams_set_time,
    streams_time_set_sizes,
    time_set_sizes,
)

DIMS = WorkloadDims(patterns=512, states=4)


class TestStreamsSetTime:
    def test_single_op_close_to_launch(self):
        s = streams_set_time(GP100, DIMS, 1, 4)
        m = launch_time(GP100, DIMS, 1)
        # One op: stream and multi-op costs are of the same order.
        assert 0.5 < s.seconds / m.seconds < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            streams_set_time(GP100, DIMS, 0, 4)
        with pytest.raises(ValueError):
            streams_set_time(GP100, DIMS, 4, 0)

    @given(st.integers(1, 100), st.integers(1, 16))
    def test_monotone_in_ops(self, k, streams):
        a = streams_set_time(GP100, DIMS, k, streams).seconds
        b = streams_set_time(GP100, DIMS, k + 1, streams).seconds
        assert b >= a - 1e-15

    @given(st.integers(2, 64), st.integers(1, 8))
    def test_more_streams_never_slower(self, k, streams):
        fewer = streams_set_time(GP100, DIMS, k, streams).seconds
        more = streams_set_time(GP100, DIMS, k, streams * 2).seconds
        assert more <= fewer + 1e-15

    def test_flops_match(self):
        s = streams_set_time(GP100, DIMS, 8, 4)
        assert s.flops == 8 * DIMS.flops_per_operation


class TestStreamsVsMultiOp:
    """The [2] finding the paper cites: the multi-operation kernel beats
    streams for CUDA-style cost structures."""

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=40))
    def test_multiop_wins_or_ties(self, sizes):
        multi = time_set_sizes(GP100, DIMS, sizes)
        stream = streams_time_set_sizes(GP100, DIMS, sizes, n_streams=4)
        assert multi.seconds <= stream.seconds + 1e-15

    def test_streams_still_beat_serial(self):
        # Even the weaker mechanism beats one-synchronous-launch-per-op
        # for a balanced schedule.
        sizes = [32, 16, 8, 4, 2, 1]
        serial = time_set_sizes(GP100, DIMS, [1] * 63)
        stream = streams_time_set_sizes(GP100, DIMS, sizes, n_streams=8)
        assert stream.seconds < serial.seconds

    def test_multiop_advantage_grows_with_set_size(self):
        # Streams are host-issue-bound: the bigger the set, the more the
        # serial issue loop costs relative to one multi-op launch.
        small_gap = (
            streams_time_set_sizes(GP100, DIMS, [2] * 10, 4).seconds
            / time_set_sizes(GP100, DIMS, [2] * 10).seconds
        )
        large_gap = (
            streams_time_set_sizes(GP100, DIMS, [64] * 10, 4).seconds
            / time_set_sizes(GP100, DIMS, [64] * 10).seconds
        )
        assert large_gap > small_gap >= 1.0
