"""Stream-mechanism scheduling under the fault model.

The paper's streams-vs-kernel ablation (§V) compares two concurrency
mechanisms for the same operation sets. These tests extend that ablation
to faulty devices: retry launches are charged under whichever mechanism
issued them, the *fault trajectory* (which attempts fault, what recovery
does) is mechanism-independent, and the pool/degradation models built on
top stay consistent.
"""

from __future__ import annotations

import pytest

from repro.core import make_plan
from repro.exec import FaultSpec, RetryPolicy
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.gpu.streams import streams_time_set_sizes
from repro.trees import balanced_tree

DIMS = WorkloadDims(patterns=256, states=4)
SPEC = FaultSpec(rate=0.5, seed=17)


@pytest.fixture(scope="module")
def plan():
    return make_plan(balanced_tree(16), "concurrent")


@pytest.fixture(scope="module")
def device():
    return SimulatedDevice(GP100)


class TestResilientStreamsTiming:
    def test_fault_trajectory_is_mechanism_independent(self, device, plan):
        # Same seeded schedule, same recovery decisions — only the cost
        # of each launch differs between kernel and stream scheduling.
        _kt, kernel_stats = device.time_plan_resilient(
            plan, DIMS, SPEC, RetryPolicy(), mechanism="kernel"
        )
        _st, stream_stats = device.time_plan_resilient(
            plan, DIMS, SPEC, RetryPolicy(), mechanism="streams", n_streams=4
        )
        assert stream_stats.format() == kernel_stats.format()
        assert stream_stats.injected == kernel_stats.injected > 0

    def test_retry_launches_are_charged_stream_prices(self, device, plan):
        clean = streams_time_set_sizes(GP100, DIMS, plan.set_sizes, 4)
        faulty, stats = device.time_plan_resilient(
            plan, DIMS, SPEC, RetryPolicy(), mechanism="streams", n_streams=4
        )
        assert stats.retried > 0
        assert faulty.seconds > clean.seconds
        assert faulty.n_launches > len(plan.set_sizes)

    def test_fault_free_streams_match_ablation_path(self, device, plan):
        timing, stats = device.time_plan_resilient(
            plan,
            DIMS,
            FaultSpec(rate=0.0),
            RetryPolicy(),
            mechanism="streams",
            n_streams=4,
        )
        clean = streams_time_set_sizes(GP100, DIMS, plan.set_sizes, 4)
        assert timing.seconds == pytest.approx(clean.seconds)
        assert stats.injected == 0

    def test_more_streams_never_slow_recovery(self, device, plan):
        wide, _ = device.time_plan_resilient(
            plan, DIMS, SPEC, RetryPolicy(), mechanism="streams", n_streams=8
        )
        narrow, _ = device.time_plan_resilient(
            plan, DIMS, SPEC, RetryPolicy(), mechanism="streams", n_streams=2
        )
        assert wide.seconds <= narrow.seconds

    def test_unknown_mechanism_rejected(self, device, plan):
        with pytest.raises(ValueError):
            device.time_plan_resilient(
                plan, DIMS, SPEC, RetryPolicy(), mechanism="warp"
            )


class TestPoolModelMechanisms:
    def test_pool_accounting_closes_under_streams(self, device, plan):
        timing = device.time_pool(
            plan,
            DIMS,
            24,
            4,
            worker_fault_specs=[SPEC, None, None, FaultSpec(rate=0.9, seed=3)],
            policy=RetryPolicy(),
            mechanism="streams",
            n_streams=4,
        )
        assert timing.completed + timing.surfaced == 24
        assert timing.seconds > 0
        assert timing.throughput > 0

    def test_degraded_fleet_curve_monotone_both_mechanisms(self, device, plan):
        for mechanism in ("kernel", "streams"):
            curve = device.degraded_fleet_curve(
                plan, DIMS, 32, 4, mechanism=mechanism
            )
            throughputs = [t for _evicted, t in curve]
            assert len(curve) == 4
            assert throughputs == sorted(throughputs, reverse=True)
            assert all(t > 0 for t in throughputs)
