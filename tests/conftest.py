"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A moderately sized default profile: the property tests exercise tree /
# likelihood invariants whose individual examples are not trivially cheap.
settings.register_profile(
    "default",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20180521)
