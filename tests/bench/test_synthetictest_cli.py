"""Tests for the synthetictest CLI (Table II surface)."""

from __future__ import annotations

import io

import pytest

from repro.bench.synthetictest import build_parser, run


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = run(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_table2_options_exist(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "--rsrc", "1",
                "--taxa", "64",
                "--sites", "512",
                "--reps", "1000",
                "--full-timing",
                "--manualscale",
                "--rescale-frequency", "1000",
                "--randomtree",
                "--reroot",
                "--seed", "1",
            ]
        )
        assert args.taxa == 64
        assert args.sites == 512
        assert args.reroot and args.randomtree and args.manualscale
        assert args.rescale_frequency == 1000

    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.rsrc == "0"
        assert not args.pectinate and not args.randomtree


class TestRun:
    def test_paper_example_invocation(self):
        """The exact command from §VI-F (reduced reps for test speed)."""
        code, text = run_cli(
            "--rsrc", "1", "--taxa", "64", "--sites", "512", "--reps", "10",
            "--full-timing", "--manualscale", "--rescale-frequency", "10",
            "--randomtree", "--reroot", "--seed", "1",
        )
        assert code == 0
        assert "type=random" in text
        assert "rerooted=yes" in text
        assert "GP100" in text
        assert "logL:" in text
        assert "per-launch breakdown" in text

    def test_cpu_resource_measures(self):
        code, text = run_cli(
            "--rsrc", "0", "--taxa", "8", "--sites", "32", "--reps", "2"
        )
        assert code == 0
        assert "CPU (NumPy engine, backend=reference)" in text
        assert "GFLOPS" in text

    def test_pectinate_counts(self):
        code, text = run_cli(
            "--rsrc", "1", "--taxa", "16", "--sites", "64", "--pectinate"
        )
        assert code == 0
        assert "operation sets: 15" in text

    def test_pectinate_rerooted_counts(self):
        code, text = run_cli(
            "--rsrc", "1", "--taxa", "16", "--sites", "64", "--pectinate",
            "--reroot",
        )
        assert code == 0
        assert "operation sets: 8" in text

    def test_serial_flag(self):
        code, text = run_cli(
            "--rsrc", "1", "--taxa", "16", "--sites", "64", "--serial"
        )
        assert code == 0
        assert "speedup vs serial launches: 1.00" in text

    def test_seed_changes_tree(self):
        _, a = run_cli("--rsrc", "1", "--taxa", "32", "--randomtree", "--seed", "1")
        _, b = run_cli("--rsrc", "1", "--taxa", "32", "--randomtree", "--seed", "2")
        assert a != b

    def test_deterministic(self):
        _, a = run_cli("--rsrc", "1", "--taxa", "32", "--randomtree", "--seed", "7")
        _, b = run_cli("--rsrc", "1", "--taxa", "32", "--randomtree", "--seed", "7")
        assert a == b

    def test_exclusive_topologies(self):
        code, text = run_cli("--pectinate", "--randomtree")
        assert code == 2
        assert "exclusive" in text

    def test_taxa_validation(self):
        code, text = run_cli("--taxa", "1")
        assert code == 2

    def test_rsrc_validation(self):
        code, text = run_cli("--rsrc", "5")
        assert code == 2

    def test_manualscale_cpu_path(self):
        code, text = run_cli(
            "--rsrc", "0", "--taxa", "8", "--sites", "16", "--reps", "3",
            "--manualscale", "--rescale-frequency", "2",
        )
        assert code == 0
        assert "logL:" in text


class TestExtensions:
    def test_partitions(self):
        code, text = run_cli(
            "--rsrc", "1", "--taxa", "16", "--sites", "64", "--partitions", "4"
        )
        assert code == 0
        assert "partitions: 4 x 16 patterns" in text
        assert "merged" in text

    def test_partitions_validation(self):
        code, _ = run_cli("--partitions", "0")
        assert code == 2

    def test_streams(self):
        code, text = run_cli(
            "--rsrc", "1", "--taxa", "16", "--sites", "64", "--streams", "4"
        )
        assert code == 0
        assert "streams (S=4)" in text

    def test_streams_requires_device_model(self):
        code, text = run_cli("--rsrc", "0", "--streams", "2")
        assert code == 2
        assert "requires" in text

    def test_streams_slower_than_multiop(self):
        _, multi = run_cli(
            "--rsrc", "1", "--taxa", "64", "--sites", "128", "--seed", "3"
        )
        _, stream = run_cli(
            "--rsrc", "1", "--taxa", "64", "--sites", "128", "--seed", "3",
            "--streams", "4",
        )
        def eval_us(text):
            line = [l for l in text.splitlines() if "time per evaluation" in l][0]
            return float(line.split(":")[1].split("us")[0])
        assert eval_us(stream) >= eval_us(multi)


class TestShardedRuns:
    def test_sharded_run_verifies_bitwise(self):
        code, text = run_cli(
            "--taxa", "10", "--sites", "256", "--shards", "4"
        )
        assert code == 0
        assert "CPU sharded (4 shards" in text
        assert "shard verified:" in text
        assert "recomputed_completed=0" in text

    def test_sharded_soak_with_faults_and_eviction(self):
        code, text = run_cli(
            "--taxa", "10", "--sites", "256", "--shards", "5",
            "--fault-rate", "0.25", "--shard-speculate",
            "--pool", "3", "--worker-fault-rates", "1.0",
            "--resilience", "retry", "--full-timing",
        )
        assert code == 0
        assert "shard verified:" in text
        # Shard-scoped chaos actually fired and the dead worker was
        # circuit-broken out of the fleet.
        assert "injected={" in text and "injected={}" not in text
        assert "evicted=[0]" in text

    def test_crash_drill_resumes_without_recompute(self, tmp_path):
        ckpt = str(tmp_path / "shards.json")
        code, text = run_cli(
            "--taxa", "10", "--sites", "256", "--shards", "4",
            "--shard-checkpoint", ckpt, "--shard-abort-after", "2",
        )
        assert code == 0
        assert "crash drill: aborted after 2 completed shards" in text
        assert "resumed 2 shard(s) without recomputation" in text
        assert "shard verified:" in text

    def test_shard_validation(self):
        for argv, message in [
            (["--shards", "-1"], "--shards must be non-negative"),
            (["--shards", "2", "--rsrc", "1"], "--shards requires a CPU"),
            (["--shard-speculate"], "shard options require --shards"),
            (
                ["--shards", "2", "--shard-resume"],
                "require --shard-checkpoint",
            ),
            (
                ["--shards", "2", "--manualscale"],
                "drop --manualscale",
            ),
            (
                ["--shards", "2", "--shard-fault-rate", "1.5"],
                "--shard-fault-rate must be within",
            ),
        ]:
            code, text = run_cli(*argv)
            assert code == 2, argv
            assert message in text


class TestGradientFlag:
    def test_gradient_verifies_against_oracle(self):
        code, text = run_cli(
            "--taxa", "8", "--sites", "32", "--reps", "1",
            "--randomtree", "--gradient", "--seed", "3",
        )
        assert code == 0, text
        assert "gradient: one sweep = 19 ops" in text
        assert (
            "gradient verified: 13/13 edges match the per-edge reroot oracle "
            "(exact" in text
        )
        assert "session instances: 1" in text

    def test_gradient_with_pattern_blocked_backend(self):
        code, text = run_cli(
            "--taxa", "8", "--sites", "32", "--reps", "1",
            "--gradient", "--rsrc", "pattern-blocked",
        )
        assert code == 0, text
        assert "(exact" in text

    def test_gradient_device_model_economics(self):
        code, text = run_cli(
            "--taxa", "16", "--sites", "64", "--reps", "1",
            "--gradient", "--rsrc", "1", "--seed", "2",
        )
        assert code == 0, text
        assert "modelled gradient: one sweep" in text
        assert "launches saved" in text

    def test_gradient_needs_three_taxa(self):
        code, text = run_cli("--taxa", "2", "--gradient")
        assert code == 2
        assert "--gradient needs at least 3 taxa" in text

    def test_gradient_with_lint_verifies_plan(self):
        code, text = run_cli(
            "--taxa", "8", "--sites", "32", "--reps", "1",
            "--gradient", "--lint",
        )
        assert code == 0, text
