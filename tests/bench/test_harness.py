"""Unit tests for the benchmark harness and table formatting."""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    build_tree,
    format_table,
    run_case,
    summarize_interval,
    sweep_random_trees,
    write_table,
)
from repro.core import count_operation_sets
from repro.gpu import SMALL_GPU


class TestBuildTree:
    def test_topologies(self):
        assert count_operation_sets(build_tree("balanced", 16)) == 4
        assert count_operation_sets(build_tree("pectinate", 16)) == 15
        t = build_tree("random", 16, seed=3)
        assert t.n_tips == 16

    def test_random_deterministic(self):
        a = build_tree("random", 12, seed=9)
        b = build_tree("random", 12, seed=9)
        assert a.topology_key() == b.topology_key()

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_tree("star", 8)


class TestRunCase:
    def test_balanced_case(self):
        row = run_case("balanced", 64, 512)
        assert row.operation_sets == 6
        assert row.serial_launches == 63
        assert row.theoretical_speedup == pytest.approx(10.5)
        assert row.model_speedup <= row.theoretical_speedup
        assert row.gflops > 0

    def test_reroot_flag(self):
        plain = run_case("pectinate", 32, 512)
        rerooted = run_case("pectinate", 32, 512, reroot=True)
        assert plain.operation_sets == 31
        assert rerooted.operation_sets == 16
        assert rerooted.model_speedup > plain.model_speedup

    def test_reroot_algorithms_agree(self):
        fast = run_case("random", 40, 256, seed=4, reroot=True)
        exhaustive = run_case(
            "random", 40, 256, seed=4, reroot=True, reroot_algorithm="exhaustive"
        )
        assert fast.operation_sets == exhaustive.operation_sets
        with pytest.raises(ValueError):
            run_case("random", 8, 64, seed=1, reroot=True, reroot_algorithm="x")

    def test_device_spec(self):
        big = run_case("balanced", 64, 512)
        small = run_case("balanced", 64, 512, spec=SMALL_GPU)
        assert small.model_speedup < big.model_speedup

    def test_as_dict(self):
        row = run_case("balanced", 8, 64)
        d = row.as_dict()
        assert d["topology"] == "balanced"
        assert d["taxa"] == 8


class TestSweep:
    def test_sweep_seeds(self):
        rows = sweep_random_trees(32, 5, 128)
        assert len(rows) == 5
        assert [r.seed for r in rows] == [1, 2, 3, 4, 5]
        assert all(r.topology == "random" for r in rows)

    def test_sweep_reroot_improves(self):
        plain = sweep_random_trees(64, 5, 128)
        rerooted = sweep_random_trees(64, 5, 128, reroot=True)
        for a, b in zip(plain, rerooted):
            assert b.operation_sets <= a.operation_sets


class TestTables:
    def test_format_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert len(lines) == 4

    def test_title_and_columns(self):
        text = format_table([{"x": 1, "y": 2}], columns=["y"], title="T")
        assert text.startswith("### T")
        assert "x" not in text.splitlines()[-1]

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_write(self, tmp_path):
        path = tmp_path / "sub" / "table.md"
        text = write_table(path, [{"a": True}])
        assert path.read_text() == text
        assert "yes" in text

    def test_interval(self):
        assert summarize_interval([2.5, 1.0, 3.75]) == "[1.00, 3.75]"
        assert summarize_interval([]) == "[]"
