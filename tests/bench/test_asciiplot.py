"""Unit tests for the ASCII plot renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Series, ascii_plot


class TestSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            Series([1, 2], [1])
        with pytest.raises(ValueError):
            Series([1], [1], glyph="ab")


class TestAsciiPlot:
    def test_basic_render(self):
        plot = ascii_plot(
            [Series([1, 2, 3], [1, 4, 9], "o", "squares")],
            xlabel="x",
            ylabel="y",
            title="T",
        )
        assert "T" in plot
        assert "o squares" in plot
        assert plot.count("o") >= 3  # at least the data points

    def test_points_land_in_correct_corners(self):
        plot = ascii_plot(
            [Series([0, 10], [0, 10], "#")], width=20, height=8
        )
        rows = [l for l in plot.splitlines() if "|" in l]
        # Max y (10) on the first grid row, min y (0) on the last.
        assert "#" in rows[0]
        assert "#" in rows[-1]
        first_cols = rows[0].index("#")
        last_cols = rows[-1].index("#")
        assert first_cols > last_cols  # high point is to the right

    def test_multiple_series_legend(self):
        plot = ascii_plot(
            [
                Series([1], [1], "a", "first"),
                Series([2], [2], "b", "second"),
            ]
        )
        assert "a first" in plot and "b second" in plot

    def test_later_series_draws_on_top(self):
        plot = ascii_plot(
            [Series([1], [1], "x"), Series([1], [1], "y")],
            width=20,
            height=6,
        )
        assert "y" in plot
        grid_lines = [l.split("|", 1)[1] for l in plot.splitlines() if "|" in l]
        assert not any("x" in l for l in grid_lines)

    def test_log_axes(self):
        xs = [1, 10, 100, 1000]
        plot = ascii_plot([Series(xs, xs, "*")], logx=True, logy=True, width=30)
        assert "1.0e+03" in plot or "1000" in plot

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot([Series([0, 1], [1, 2], "*")], logx=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([])
        with pytest.raises(ValueError):
            ascii_plot([Series([1], [1])], width=4)

    def test_constant_series(self):
        # Degenerate ranges must not divide by zero.
        plot = ascii_plot([Series([5, 5, 5], [2, 2, 2], "*")])
        assert "*" in plot

    def test_axis_tick_values_present(self):
        plot = ascii_plot(
            [Series([0, 50, 100], [0, 5, 10], "*")], width=40, height=10
        )
        assert "100" in plot  # x max
        assert "10" in plot  # y max
