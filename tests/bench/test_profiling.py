"""Tests for the profiling helpers."""

from __future__ import annotations

import pytest

from repro.bench import kernel_scaling, profile_callable, profile_likelihood
from repro.models import JC69
from repro.trees import balanced_tree


class TestProfileCallable:
    def test_basic(self):
        report = profile_callable(lambda: sum(range(10_000)), top=5)
        assert report.total_seconds >= 0
        assert len(report.top_functions) <= 5
        assert report.raw

    def test_dominant(self):
        def busy():
            return [i**2 for i in range(50_000)]

        report = profile_callable(busy)
        assert report.dominant()


class TestProfileLikelihood:
    def test_partials_kernel_dominates(self):
        """The paper's premise (§II-A, §VIII): likelihood evaluation is
        dominated by the partials computation."""
        report = profile_likelihood(
            balanced_tree(64), JC69(), sites=128, repetitions=5, top=10
        )
        names = [name for name, _ in report.top_functions]
        assert any("update_partials" in n or "execute_plan" in n for n in names[:5])

    def test_report_sorted(self):
        report = profile_likelihood(balanced_tree(16), JC69(), sites=32, repetitions=2)
        cumulatives = [c for _, c in report.top_functions]
        assert cumulatives == sorted(cumulatives, reverse=True)


class TestKernelScaling:
    def test_grows_with_sites(self):
        scaling = kernel_scaling(balanced_tree(32), JC69(), [32, 1024])
        assert scaling[1024] > scaling[32]

    def test_keys_match_grid(self):
        scaling = kernel_scaling(balanced_tree(8), JC69(), [16, 64])
        assert set(scaling) == {16, 64}
        assert all(v > 0 for v in scaling.values())
