"""Tests for the one-shot reproduce runner (reduced sizes)."""

from __future__ import annotations

import io

from repro.bench.reproduce import (
    build_parser,
    reproduce_fig4,
    reproduce_fig6,
    reproduce_table3,
)


class TestParser:
    def test_options(self):
        args = build_parser().parse_args(["--full", "--out", "somewhere"])
        assert args.full and args.out == "somewhere"

    def test_defaults(self):
        args = build_parser().parse_args([])
        assert not args.full
        assert args.out == "bench_results"


class TestSections:
    def test_fig4(self, tmp_path):
        stream = io.StringIO()
        reproduce_fig4(tmp_path, 3, stream)
        text = (tmp_path / "reproduce_fig4.md").read_text()
        assert "Figure 4" in text
        assert "mean reduction" in text
        assert "no change" in text  # the diagonal series

    def test_table3(self, tmp_path):
        stream = io.StringIO()
        reproduce_table3(tmp_path, 3, stream)
        text = (tmp_path / "reproduce_table3.md").read_text()
        assert "pectinate rerooted" in text
        assert "random rerooted" in text

    def test_fig6(self, tmp_path):
        stream = io.StringIO()
        reproduce_fig6(tmp_path, [16, 64], 3, stream)
        text = (tmp_path / "reproduce_fig6.md").read_text()
        assert "Figure 6" in text
        assert "B balanced" in text
