"""Backend parity as property tests: any plan, any backend, same bits.

The pluggable-backend refactor is only safe if backend choice is
unobservable in the results (up to each backend's declared parity
class). These tests drive randomized trees, precisions and scheduling
modes through **every** registered backend and hold each to its claim:
bit-identical backends must reproduce the reference log-likelihood
exactly; tolerance backends must stay within their declared bound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beagle import (
    PARITY_BIT_IDENTICAL,
    BlockedNumpyBackend,
    acquire,
    available_resources,
)
from repro.core import (
    create_instance,
    execute_plan,
    make_plan,
    optimal_reroot_fast,
)
from repro.data import compress, simulate_alignment
from repro.exec.sharding import ShardedLikelihood
from repro.inference import TreeLikelihood
from repro.inference.proposals import branch_length_move
from repro.models import HKY85
from tests.strategies import tree_strategy

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


def _patterns(tree, seed):
    return compress(simulate_alignment(tree, MODEL, 16, seed=seed))


def _plan_ll(tree, patterns, backend, dtype, mode):
    instance = create_instance(
        tree, MODEL, patterns, dtype=dtype, backend=backend
    )
    return execute_plan(instance, make_plan(tree, mode))


class TestAllRegisteredBackends:
    @given(
        tree_strategy(min_tips=3, max_tips=12),
        st.integers(0, 10**6),
        st.sampled_from([np.float64, np.float32]),
        st.booleans(),
    )
    @settings(max_examples=20)
    def test_every_backend_honours_its_parity_class(
        self, tree, seed, dtype, reroot
    ):
        patterns = _patterns(tree, seed)
        if reroot:
            tree = optimal_reroot_fast(tree).tree
        expected = _plan_ll(tree, patterns, "reference", dtype, "concurrent")
        for name in available_resources():
            backend = acquire(name)
            got = _plan_ll(tree, patterns, backend, dtype, "concurrent")
            if backend.info.parity == PARITY_BIT_IDENTICAL:
                assert got == expected, (name, dtype)
            else:
                assert abs(got - expected) <= backend.info.tolerance, name

    @given(tree_strategy(min_tips=3, max_tips=10), st.integers(0, 10**6))
    @settings(max_examples=10)
    def test_serial_and_concurrent_agree_per_backend(self, tree, seed):
        patterns = _patterns(tree, seed)
        for name in available_resources():
            serial = _plan_ll(tree, patterns, name, np.float64, "serial")
            batched = _plan_ll(tree, patterns, name, np.float64, "concurrent")
            assert serial == batched, name


class TestBlockedBeyondFullTraversals:
    """The blocked backend on the engine's stateful paths."""

    @given(
        tree_strategy(min_tips=4, max_tips=12),
        st.integers(0, 10**6),
        st.integers(1, 12),
    )
    @settings(max_examples=15)
    def test_incremental_path_bit_identical(self, tree, seed, block):
        patterns = _patterns(tree, seed)
        values = []
        for backend in ("reference", BlockedNumpyBackend(block_ops=block)):
            lik = TreeLikelihood(
                tree.copy(), MODEL, patterns, backend=backend
            )
            lik.log_likelihood()
            move = branch_length_move(lik.tree, np.random.default_rng(seed))
            proposed = lik.propose(move)
            lik.accept()
            values.append((proposed, lik.log_likelihood()))
        assert values[0] == values[1]

    @given(
        tree_strategy(min_tips=4, max_tips=12),
        st.integers(0, 10**6),
        st.integers(2, 4),
    )
    @settings(max_examples=10)
    def test_sharded_path_bit_identical(self, tree, seed, n_shards):
        patterns = _patterns(tree, seed)
        expected = ShardedLikelihood(
            tree, MODEL, patterns, n_shards=n_shards, backend="reference"
        ).log_likelihood()
        got = ShardedLikelihood(
            tree, MODEL, patterns, n_shards=n_shards, backend="blocked"
        ).log_likelihood()
        assert got == expected

    @given(st.integers(1, 40))
    @settings(max_examples=20)
    def test_any_block_size_matches_reference(self, block):
        # A fixed wide case (many same-depth operations) so block
        # boundaries actually land inside operation sets.
        from repro.bench.harness import build_tree

        tree = build_tree("balanced", 16, 1)
        patterns = _patterns(tree, 5)
        expected = _plan_ll(
            tree, patterns, "reference", np.float64, "concurrent"
        )
        got = _plan_ll(
            tree,
            patterns,
            BlockedNumpyBackend(block_ops=block),
            np.float64,
            "concurrent",
        )
        assert got == expected
