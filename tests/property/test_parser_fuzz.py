"""Every parser rejection is a located ParseError — fuzzed.

The contract (repro.errors): malformed Newick/FASTA/PHYLIP input must
surface as :class:`~repro.errors.ParseError` — never a bare
``ValueError``/``IndexError`` from deep inside the machinery — and any
line/column the error carries must point inside the input text.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TextSource, iter_sites, parse_fasta, parse_phylip
from repro.errors import ParseError
from repro.trees import NewickError, parse_newick

# Mix of valid DNA, ambiguity codes, junk symbols and structure chars so
# the fuzzer reaches both the format machinery and symbol validation.
_SOUP = st.text(alphabet="ACGTN-acgt>;() \n\t0123456789XZ@#.qé", max_size=120)

# The chunk-boundary fuzzer additionally mixes in carriage returns:
# PHYLIP's splitlines semantics treat \r and \r\n as breaks (FASTA does
# not), and a \r\n straddling two read chunks is exactly the kind of
# state the streaming scanner must carry.
_CHUNK_SOUP = st.text(
    alphabet="ACGTN-acgt>;() \r\n\t0123456789XZ@#.qé", max_size=120
)
_CHUNK_SIZES = st.lists(
    st.integers(min_value=1, max_value=7), min_size=1, max_size=8
)


def _assert_located(err: ParseError, text: str) -> None:
    """The error's location, when present, is inside the input."""
    assert isinstance(err, ParseError)
    # split("\n") keeps the empty final line of newline-terminated text,
    # so an error at end-of-input (line n+1, column 1) stays in bounds.
    lines = text.split("\n")
    if err.line is not None:
        assert 1 <= err.line <= len(lines)
        if err.column is not None:
            assert 1 <= err.column <= len(lines[err.line - 1]) + 1
    if err.position is not None:
        assert 0 <= err.position <= len(text)


class TestFastaRejections:
    @given(_SOUP)
    @settings(max_examples=300)
    def test_fuzz_only_parse_error(self, text):
        try:
            parse_fasta(text)
        except ParseError as err:
            _assert_located(err, text)
        # Any other exception type propagates and fails the test.

    def test_bad_symbol_column_is_exact(self):
        text = ">a\nACGT\n>b\nAC!T\n"
        with pytest.raises(ParseError) as info:
            parse_fasta(text)
        assert info.value.line == 4
        assert info.value.column == 3
        assert "'!'" in str(info.value)

    def test_bad_symbol_column_survives_indent(self):
        with pytest.raises(ParseError) as info:
            parse_fasta(">a\n  ACXT\n")
        assert info.value.line == 2
        assert info.value.column == 5

    def test_lowercase_symbols_accepted(self):
        alignment = parse_fasta(">a\nacgt\n>b\nACGT\n")
        assert alignment.n_sites == 4


class TestPhylipRejections:
    @given(_SOUP)
    @settings(max_examples=300)
    def test_fuzz_only_parse_error(self, text):
        try:
            parse_phylip(text)
        except ParseError as err:
            _assert_located(err, text)

    def test_bad_symbol_column_is_exact(self):
        with pytest.raises(ParseError) as info:
            parse_phylip("2 4\ntaxa ACGT\ntaxb AC!T\n")
        assert info.value.line == 3
        assert info.value.column == 8

    def test_zero_taxa_header_is_parse_error(self):
        with pytest.raises(ParseError) as info:
            parse_phylip("0 5\n")
        assert info.value.line == 1

    def test_negative_sites_header_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_phylip("1 -3\ntaxa ACG\n")


class TestNewickRejections:
    @given(st.text(alphabet="(),;:ab0.123'[] \n", max_size=80))
    @settings(max_examples=300)
    def test_fuzz_only_newick_error(self, text):
        try:
            parse_newick(text)
        except NewickError as err:
            _assert_located(err, text)

    def test_unbalanced_paren_location(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a,b));")
        _assert_located(info.value, "(a,b));")
        assert info.value.line == 1


def _whole_file_error(parser, text):
    try:
        parser(text)
    except ParseError as err:
        return (str(err), err.line, err.column)
    return None


def _streamed(text, fmt, sizes, window):
    """(chunks, error-triple) of the streaming scan under this chunking."""
    try:
        chunks = list(
            iter_sites(
                TextSource(text), fmt, read_size=sizes, window=window
            )
        )
    except ParseError as err:
        return None, (str(err), err.line, err.column)
    return chunks, None


def _assemble_rows(chunks):
    rows = {}
    for chunk in chunks:
        for taxon, row in zip(chunk.taxa, chunk.rows):
            rows[taxon] = rows.get(taxon, "") + row
    return rows


class TestChunkBoundaryEquivalence:
    """Streaming scan == whole-file parse for every chunk schedule.

    The contract behind ``iter_sites``: chunk boundaries are invisible.
    The first rejection must be the *same* ParseError — message, line
    and column — the whole-file parser raises, no matter how the bytes
    arrive; and on valid input the reassembled rows must equal the
    parsed alignment.
    """

    @given(_CHUNK_SOUP, _CHUNK_SIZES, st.integers(min_value=1, max_value=16))
    @settings(max_examples=250, deadline=None)
    def test_fasta_identical_under_any_chunking(self, text, sizes, window):
        whole = _whole_file_error(parse_fasta, text)
        chunks, streamed = _streamed(text, "fasta", sizes, window)
        assert streamed == whole
        if whole is None:
            alignment = parse_fasta(text)
            for taxon, row in _assemble_rows(chunks).items():
                assert row == "".join(alignment.sequence(taxon)).upper()

    @given(_CHUNK_SOUP, _CHUNK_SIZES, st.integers(min_value=1, max_value=16))
    @settings(max_examples=250, deadline=None)
    def test_phylip_identical_under_any_chunking(self, text, sizes, window):
        whole = _whole_file_error(parse_phylip, text)
        chunks, streamed = _streamed(text, "phylip", sizes, window)
        assert streamed == whole
        if whole is None:
            alignment = parse_phylip(text)
            for taxon, row in _assemble_rows(chunks).items():
                assert row == "".join(alignment.sequence(taxon)).upper()

    def test_crlf_straddling_chunk_boundary(self):
        # One byte per read: the \r\n of every line straddles a chunk
        # boundary, and the bad symbol is still reported at line 3,
        # column 8 — identical to the whole-file parse.
        text = "2 4\r\ntaxa ACGT\r\ntaxb AC!T\r\n"
        whole = _whole_file_error(parse_phylip, text)
        assert whole is not None and whole[1:] == (3, 8)
        _, streamed = _streamed(text, "phylip", [1], 4)
        assert streamed == whole


@given(
    st.lists(
        st.text(alphabet="ACGT", min_size=4, max_size=4),
        min_size=2,
        max_size=5,
    )
)
@settings(max_examples=100)
def test_valid_fasta_round_trips(rows):
    text = "".join(f">t{i}\n{row}\n" for i, row in enumerate(rows))
    alignment = parse_fasta(text)
    assert alignment.n_taxa == len(rows)
    assert alignment.n_sites == 4
