"""Failure injection and numerical edge cases for the engine stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beagle import BeagleInstance, Operation, pruning_log_likelihood
from repro.core import create_instance, execute_plan, make_plan
from repro.data import Alignment, compress, random_patterns, simulate_alignment
from repro.models import HKY85, JC69, build_reversible_q, decompose_reversible
from repro.trees import balanced_tree, parse_newick, pectinate_tree
from tests.strategies import tree_strategy


class TestDegenerateBranchLengths:
    def test_all_zero_lengths(self):
        # Zero branches: identical tips have likelihood pi; mismatching
        # tips have likelihood 0 (log -inf), never NaN.
        tree = balanced_tree(4, branch_length=0.0)
        aln = Alignment({name: "A" for name in tree.tip_names()})
        patterns = compress(aln)
        ll = execute_plan(
            create_instance(tree, JC69(), patterns), make_plan(tree)
        )
        assert ll == pytest.approx(np.log(0.25))

    def test_impossible_data_gives_neg_inf(self):
        tree = balanced_tree(2, branch_length=0.0)
        aln = Alignment({"t0001": "A", "t0002": "C"})
        ll = execute_plan(
            create_instance(tree, JC69(), compress(aln)), make_plan(tree)
        )
        assert ll == -np.inf
        assert not np.isnan(ll)

    def test_enormous_lengths_saturate(self):
        tree = balanced_tree(4, branch_length=1e6)
        patterns = random_patterns(tree.tip_names(), 8, seed=1)
        ll = execute_plan(
            create_instance(tree, JC69(), patterns), make_plan(tree)
        )
        # At stationarity each pattern's likelihood is (1/4)^4.
        expected = 8 * 4 * np.log(0.25)
        assert ll == pytest.approx(expected, rel=1e-6)

    @given(tree_strategy(min_tips=2, max_tips=12))
    @settings(max_examples=15)
    def test_never_nan(self, tree):
        for edge in tree.edges():
            edge.length = 0.0 if hash(id(edge)) % 2 else 100.0
        tree.invalidate_indices()
        patterns = random_patterns(sorted(tree.tip_names()), 4, seed=2)
        ll = execute_plan(
            create_instance(tree, JC69(), patterns), make_plan(tree)
        )
        assert not np.isnan(ll)


class TestDataEdgeCases:
    def test_single_pattern(self):
        tree = balanced_tree(4, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 1, seed=3)
        ll = execute_plan(
            create_instance(tree, JC69(), patterns), make_plan(tree)
        )
        assert np.isfinite(ll)

    def test_two_tip_tree(self):
        tree = parse_newick("(a:0.1,b:0.2);")
        aln = Alignment({"a": "ACGT", "b": "ACGA"})
        patterns = compress(aln)
        ll = execute_plan(
            create_instance(tree, JC69(), patterns), make_plan(tree)
        )
        assert ll == pytest.approx(
            pruning_log_likelihood(tree, JC69(), patterns), abs=1e-10
        )

    def test_all_unknown_alignment(self):
        tree = balanced_tree(4, branch_length=0.1)
        aln = Alignment({name: "NN" for name in tree.tip_names()})
        ll = execute_plan(
            create_instance(tree, JC69(), compress(aln)), make_plan(tree)
        )
        assert ll == pytest.approx(0.0, abs=1e-12)

    def test_zero_pattern_weights(self):
        tree = balanced_tree(4, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 4, seed=4)
        inst = create_instance(tree, JC69(), patterns)
        inst.set_pattern_weights([0.0, 0.0, 0.0, 0.0])
        ll = execute_plan(inst, make_plan(tree))
        assert ll == 0.0

    def test_mixed_ambiguity_heavy_alignment(self):
        tree = parse_newick("((a:0.1,b:0.2):0.1,(c:0.1,d:0.3):0.2);")
        aln = Alignment({"a": "RYSW", "b": "KMBD", "c": "HVN-", "d": "ACGT"})
        patterns = compress(aln)
        engine = execute_plan(
            create_instance(tree, HKY85(2.0), patterns), make_plan(tree)
        )
        reference = pruning_log_likelihood(tree, HKY85(2.0), patterns)
        assert engine == pytest.approx(reference, abs=1e-9)


class TestEngineMisuse:
    def make_instance(self):
        return BeagleInstance(
            tip_count=2,
            partials_buffer_count=1,
            matrix_count=3,
            pattern_count=4,
            state_count=4,
        )

    def test_reading_stale_partials_after_invalidate(self):
        inst = self.make_instance()
        inst.set_tip_states(0, [0] * 4)
        inst.set_tip_states(1, [1] * 4)
        inst.set_eigen_decomposition(0, JC69().eigen)
        inst.update_transition_matrices(0, [0, 1], [0.1, 0.1])
        inst.update_partials_serial([Operation(2, 0, 0, 1, 1)])
        inst.invalidate_partials()
        with pytest.raises(ValueError):
            inst.calculate_root_log_likelihood(2)

    def test_unknown_destination_buffer(self):
        inst = self.make_instance()
        inst.set_tip_states(0, [0] * 4)
        inst.set_tip_states(1, [1] * 4)
        inst.set_eigen_decomposition(0, JC69().eigen)
        inst.update_transition_matrices(0, [0, 1], [0.1, 0.1])
        with pytest.raises(IndexError):
            inst.update_partials_serial([Operation(9, 0, 0, 1, 1)])

    def test_set_with_out_of_range_destination(self):
        inst = self.make_instance()
        inst.set_tip_states(0, [0] * 4)
        inst.set_tip_states(1, [1] * 4)
        inst.set_eigen_decomposition(0, JC69().eigen)
        inst.update_transition_matrices(0, [0, 1], [0.1, 0.1])
        ops = [Operation(2, 0, 0, 1, 1), Operation(77, 0, 2, 1, 1)]
        with pytest.raises((IndexError, ValueError)):
            inst.update_partials_set(ops)

    def test_plan_reuse_across_instances(self):
        # The same plan must drive two instances with different data.
        tree = balanced_tree(6, branch_length=0.1)
        plan = make_plan(tree)
        a = create_instance(tree, JC69(), random_patterns(tree.tip_names(), 8, seed=5))
        b = create_instance(tree, JC69(), random_patterns(tree.tip_names(), 8, seed=6))
        ll_a = execute_plan(a, plan)
        ll_b = execute_plan(b, plan)
        assert ll_a != ll_b
        assert np.isfinite(ll_a) and np.isfinite(ll_b)


class TestAdditivity:
    @given(st.integers(0, 1000))
    @settings(max_examples=10)
    def test_loglik_additive_over_site_blocks(self, seed):
        """Independent sites: logL(block A + block B) = logL(A) + logL(B)."""
        tree = balanced_tree(5, branch_length=0.2)
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        aln = simulate_alignment(tree, model, 30, seed=seed)
        full = pruning_log_likelihood(tree, model, compress(aln))
        a = pruning_log_likelihood(tree, model, compress(aln.site_subset(range(0, 12))))
        b = pruning_log_likelihood(tree, model, compress(aln.site_subset(range(12, 30))))
        assert full == pytest.approx(a + b, abs=1e-9)


class TestReversibilityGuard:
    def test_nonreversible_matrix_rejected(self):
        # A cyclic (irreversible) generator must be refused — silently
        # accepting it would produce wrong likelihoods under rerooting.
        Q = np.array(
            [
                [-1.0, 1.0, 0.0, 0.0],
                [0.0, -1.0, 1.0, 0.0],
                [0.0, 0.0, -1.0, 1.0],
                [1.0, 0.0, 0.0, -1.0],
            ]
        )
        with pytest.raises(ValueError):
            decompose_reversible(Q, np.full(4, 0.25))

    def test_reversible_accepted_with_matching_frequencies_only(self):
        rng = np.random.default_rng(7)
        r = np.zeros((4, 4))
        upper = np.triu_indices(4, 1)
        r[upper] = rng.uniform(0.5, 2.0, 6)
        r = r + r.T
        pi = rng.dirichlet(np.full(4, 5.0))
        Q = build_reversible_q(r, pi)
        decompose_reversible(Q, pi)  # fine
        wrong_pi = np.roll(pi, 1)
        with pytest.raises(ValueError):
            decompose_reversible(Q, wrong_pi)
