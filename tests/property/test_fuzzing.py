"""Fuzzing: hostile inputs must fail predictably, never crash strangely."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import parse_fasta, parse_phylip
from repro.data.io_nexus import parse_nexus_alignment, parse_nexus_trees
from repro.trees import NewickError, parse_newick, write_newick


class TestNewickFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=200)
    def test_arbitrary_text_parses_or_raises_newick_error(self, text):
        try:
            tree = parse_newick(text)
        except NewickError:
            return
        # If it parsed, it must serialise back and re-parse stably.
        again = parse_newick(write_newick(tree))
        assert again.n_tips == tree.n_tips

    @given(st.text(alphabet="(),;:ab0.123'", max_size=60))
    @settings(max_examples=200)
    def test_newick_shaped_garbage(self, text):
        try:
            parse_newick(text)
        except NewickError:
            pass

    def test_pathological_nesting(self):
        deep = "(" * 2000 + "a" + ",b" * 0 + ")" * 2000 + ";"
        try:
            tree = parse_newick(deep)
            assert tree.n_tips >= 1
        except NewickError:
            pass


class TestFormatFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=100)
    def test_fasta_fuzz(self, text):
        try:
            parse_fasta(text)
        except ValueError:
            pass

    @given(st.text(max_size=120))
    @settings(max_examples=100)
    def test_phylip_fuzz(self, text):
        try:
            parse_phylip(text)
        except ValueError:
            pass

    @given(st.text(max_size=150))
    @settings(max_examples=100)
    def test_nexus_fuzz(self, text):
        for parser in (parse_nexus_alignment, parse_nexus_trees):
            try:
                parser(text)
            except ValueError:
                pass


class TestDtypeConsistency:
    def test_batched_path_preserves_dtype(self):
        from repro.core import create_instance, execute_plan, make_plan
        from repro.data import random_patterns
        from repro.models import JC69
        from repro.trees import balanced_tree

        tree = balanced_tree(32, branch_length=0.1)  # sets >= batch threshold
        patterns = random_patterns(tree.tip_names(), 16, seed=1)
        inst = create_instance(tree, JC69(), patterns, dtype=np.float32)
        execute_plan(inst, make_plan(tree))
        root = inst.get_partials(make_plan(tree).root_buffer)
        assert root.dtype == np.float32

    def test_serial_path_preserves_dtype(self):
        from repro.core import create_instance, execute_plan, make_plan
        from repro.data import random_patterns
        from repro.models import JC69
        from repro.trees import balanced_tree

        tree = balanced_tree(8, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 16, seed=1)
        inst = create_instance(tree, JC69(), patterns, dtype=np.float32)
        plan = make_plan(tree, "serial")
        execute_plan(inst, plan)
        assert inst.get_partials(plan.root_buffer).dtype == np.float32
