"""Bit-stable sharded likelihood — the reduction contract, fuzzed.

The contract (:mod:`repro.exec.sharding`): the sharded log-likelihood is
a pure function of the *problem* — tree, model, patterns — and never of
the *execution*. Shard count, completion order, injected faults, bounded
retries, speculation, and dead workers must all produce the same bits as
the single-instance reference reduced through the same deterministic
pairwise tree. (Agreement with the unsharded BLAS ``np.dot`` reduction
is only up to float-summation reassociation — asserted with allclose,
not equality.)
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import random_patterns
from repro.exec import (
    FaultSpec,
    LikelihoodPool,
    RetryPolicy,
    ShardFaultSpec,
    ShardedLikelihood,
)
from repro.inference import TreeLikelihood
from repro.models import random_gtr
from repro.trees import yule_tree


def _problem(taxa: int, sites: int, seed: int):
    rng = np.random.default_rng(seed)
    tree = yule_tree(taxa, rng)
    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), sites, rng=rng)
    return tree, model, patterns


@given(
    taxa=st.integers(min_value=4, max_value=8),
    sites=st.integers(min_value=24, max_value=96),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_shards=st.integers(min_value=1, max_value=8),
    alt_shards=st.integers(min_value=1, max_value=8),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
    fault_rate=st.sampled_from([0.0, 0.15, 0.3]),
    speculate=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_sharded_loglik_is_bit_stable(
    taxa, sites, seed, n_shards, alt_shards, order_seed, fault_rate, speculate
):
    tree, model, patterns = _problem(taxa, sites, seed)
    chaotic = ShardedLikelihood(
        tree,
        model,
        patterns,
        n_shards=n_shards,
        order_seed=order_seed,
        speculate=speculate,
        retries=8,
        fault_spec=(
            ShardFaultSpec(rate=fault_rate, seed=seed) if fault_rate else None
        ),
    )
    value = chaotic.log_likelihood()

    # Bit-identical to the single-instance oracle under the same
    # reduction, whatever chaos the execution saw...
    assert value == chaotic.reference_log_likelihood()
    # ...and to a fault-free run under a different shard count and a
    # different completion order.
    calm = ShardedLikelihood(
        tree, model, patterns, n_shards=alt_shards, order_seed=order_seed + 1
    )
    assert value == calm.log_likelihood()
    # Every submission is accounted for.
    assert chaotic.ledger.balances(), chaotic.ledger.imbalances()
    assert calm.ledger.balances()
    # The unsharded evaluator reduces with BLAS np.dot — agreement is up
    # to reassociation only.
    unsharded = TreeLikelihood(tree, model, patterns).log_likelihood()
    assert np.isclose(value, unsharded, rtol=0.0, atol=1e-8)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_shards=st.integers(min_value=2, max_value=6),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_dead_worker_does_not_perturb_bits(seed, n_shards, order_seed):
    tree, model, patterns = _problem(6, 64, seed)
    # Worker 0 faults on every launch: its resilient stack retries, the
    # pool circuit-breaks and reroutes, and the shard layer re-submits —
    # none of which may change a single bit of the result.
    pool = LikelihoodPool(
        3,
        policy=RetryPolicy(degrade=False, rescale=False),
        worker_fault_specs=[FaultSpec(rate=1.0, seed=seed), None, None],
        executor="inline",
        deadline_s=None,
    )
    engine = ShardedLikelihood(
        tree,
        model,
        patterns,
        n_shards=n_shards,
        pool=pool,
        order_seed=order_seed,
        retries=8,
    )
    value = engine.log_likelihood()
    assert value == engine.reference_log_likelihood()
    assert engine.ledger.balances(), engine.ledger.imbalances()
