"""The domain fact the whole paper rests on, as property tests.

For time-reversible substitution models the likelihood of a tree is
independent of root placement (Felsenstein's pulley principle, paper §V).
That invariance is what licenses rerooting for concurrency: the rerooted
tree must give the *same answer*, only faster. These tests pin the
invariance across the model families, rate heterogeneity, rerooting
positions, and both optimal-rerooting algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    count_operation_sets,
    create_instance,
    execute_plan,
    make_plan,
    optimal_reroot_exhaustive,
    optimal_reroot_fast,
)
from repro.data import compress, simulate_alignment
from repro.models import (
    GTR,
    GY94,
    HKY85,
    JC69,
    Poisson,
    discrete_gamma,
    synthetic_empirical,
)
from repro.trees import reroot_on_edge, unrooted_edges
from tests.strategies import tree_strategy


def engine_loglik(tree, model, patterns, rates=None):
    inst = create_instance(tree, model, patterns, rates=rates)
    return execute_plan(inst, make_plan(tree, "concurrent"))


class TestPulleyPrinciple:
    @given(
        tree_strategy(min_tips=3, max_tips=14),
        st.integers(0, 10**6),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=25)
    def test_any_edge_any_fraction(self, tree, pick, fraction):
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        patterns = compress(simulate_alignment(tree, model, 12, seed=21))
        base = engine_loglik(tree, model, patterns)
        edges = unrooted_edges(tree)
        u, v, _ = edges[pick % len(edges)]
        rerooted = reroot_on_edge(tree, u, v, fraction)
        assert engine_loglik(rerooted, model, patterns) == pytest.approx(
            base, abs=1e-8
        )

    @pytest.mark.parametrize(
        "model",
        [
            JC69(),
            HKY85(3.0, [0.4, 0.1, 0.2, 0.3]),
            GTR([1.1, 2.0, 0.7, 1.4, 2.8, 1.0], [0.3, 0.2, 0.25, 0.25]),
        ],
        ids=lambda m: m.name,
    )
    def test_nucleotide_model_families(self, model):
        from repro.trees import random_attachment_tree

        tree = random_attachment_tree(10, 5, random_lengths=True)
        patterns = compress(simulate_alignment(tree, model, 20, seed=22))
        base = engine_loglik(tree, model, patterns)
        for u, v, _ in unrooted_edges(tree):
            rerooted = reroot_on_edge(tree, u, v)
            assert engine_loglik(rerooted, model, patterns) == pytest.approx(
                base, abs=1e-8
            )

    def test_amino_acid_model(self):
        from repro.trees import yule_tree

        model = synthetic_empirical(1)
        tree = yule_tree(6, 3, random_lengths=True)
        patterns = compress(simulate_alignment(tree, model, 10, seed=23))
        base = engine_loglik(tree, model, patterns)
        u, v, _ = unrooted_edges(tree)[2]
        assert engine_loglik(
            reroot_on_edge(tree, u, v, 0.25), model, patterns
        ) == pytest.approx(base, abs=1e-8)

    def test_codon_model(self):
        from repro.trees import balanced_tree

        model = GY94(2.0, 0.4)
        tree = balanced_tree(4, branch_length=0.15)
        patterns = compress(simulate_alignment(tree, model, 8, seed=24))
        base = engine_loglik(tree, model, patterns)
        u, v, _ = unrooted_edges(tree)[1]
        assert engine_loglik(
            reroot_on_edge(tree, u, v), model, patterns
        ) == pytest.approx(base, abs=1e-7)

    def test_gamma_rates_preserved(self):
        from repro.trees import pectinate_tree

        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        rates = discrete_gamma(0.5, 4)
        tree = pectinate_tree(9, branch_length=0.25)
        patterns = compress(simulate_alignment(tree, model, 15, seed=25))
        base = engine_loglik(tree, model, patterns, rates)
        for u, v, _ in unrooted_edges(tree)[:6]:
            rerooted = reroot_on_edge(tree, u, v, 0.4)
            assert engine_loglik(rerooted, model, patterns, rates) == pytest.approx(
                base, abs=1e-8
            )


class TestOptimalRerootingPreservesLikelihood:
    """Rerooting must change only the schedule, never the answer."""

    @given(tree_strategy(min_tips=3, max_tips=14))
    @settings(max_examples=15)
    def test_exhaustive(self, tree):
        model = JC69()
        patterns = compress(simulate_alignment(tree, model, 10, seed=26))
        base = engine_loglik(tree, model, patterns)
        result = optimal_reroot_exhaustive(tree)
        assert engine_loglik(result.tree, model, patterns) == pytest.approx(
            base, abs=1e-8
        )

    @given(tree_strategy(min_tips=3, max_tips=14))
    @settings(max_examples=15)
    def test_fast(self, tree):
        model = JC69()
        patterns = compress(simulate_alignment(tree, model, 10, seed=27))
        base = engine_loglik(tree, model, patterns)
        result = optimal_reroot_fast(tree)
        assert engine_loglik(result.tree, model, patterns) == pytest.approx(
            base, abs=1e-8
        )

    @given(tree_strategy(min_tips=6, max_tips=25, kinds=("pectinate", "random")))
    @settings(max_examples=15)
    def test_same_answer_fewer_launches(self, tree):
        """The paper's headline in one property: identical likelihood,
        reduced (or equal) kernel-launch count."""
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        patterns = compress(simulate_alignment(tree, model, 8, seed=28))
        result = optimal_reroot_fast(tree)

        inst_orig = create_instance(tree, model, patterns)
        ll_orig = execute_plan(inst_orig, make_plan(tree, "concurrent"))
        launches_orig = inst_orig.stats.kernel_launches

        inst_new = create_instance(result.tree, model, patterns)
        ll_new = execute_plan(inst_new, make_plan(result.tree, "concurrent"))
        launches_new = inst_new.stats.kernel_launches

        assert ll_new == pytest.approx(ll_orig, abs=1e-8)
        assert launches_new <= launches_orig
        assert launches_new == count_operation_sets(result.tree)
