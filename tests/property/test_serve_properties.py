"""Serving invariants under arbitrary traffic — property-based.

Two contracts the server must honour for *any* arrival schedule and
tenant weighting, not just the curated scenarios in ``tests/serve``:

* **closed ledger** — every offered request reaches exactly one typed
  terminal state (served / rejected / shed / failed); the ledger
  identities balance and ``offered == outcomes + rejections`` (zero
  silent drops);
* **starvation freedom** — a queued head request costs at most
  ``ceil(cost / (quantum * weight))`` scheduler rotations before it is
  picked, no matter what the competing tenants look like.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import LikelihoodPool
from repro.models import JC69
from repro.serve import (
    AdmissionConfig,
    BrownoutPolicy,
    CoalescePolicy,
    DeficitRoundRobin,
    FairnessConfig,
    LikelihoodServer,
    RequestDims,
    ServerSaturatedError,
    StepClock,
)
from repro.serve.request import LikelihoodRequest
from repro.trees import balanced_tree

_TREE = balanced_tree(4)
_PATTERNS = random_patterns(
    _TREE.tip_names(), 8, rng=np.random.default_rng(5)
)
_MODEL = JC69()
_PLAN = make_plan(_TREE, "concurrent")
_REFERENCE = execute_plan(create_instance(_TREE, _MODEL, _PATTERNS), _PLAN)
_DIMS = RequestDims(state_count=4, pattern_count=8)


def _make_case():
    return create_instance(_TREE, _MODEL, _PATTERNS), _PLAN


# An arrival is (tenant index, optional deadline budget in seconds).
_arrivals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.one_of(st.none(), st.floats(min_value=0.001, max_value=2.0)),
    ),
    min_size=1,
    max_size=24,
)
_weights = st.lists(
    st.floats(min_value=0.25, max_value=4.0), min_size=4, max_size=4
)


class TestLedgerCloses:
    @given(arrivals=_arrivals, weights=_weights, step_every=st.sampled_from([4, 7, 100]))
    @settings(max_examples=25, deadline=None)
    def test_every_request_is_accounted_exactly_once(
        self, arrivals, weights, step_every
    ):
        clock = StepClock()
        pool = LikelihoodPool(
            2, executor="inline", clock=clock,
            sleep=lambda s: clock.advance(s),
        )
        server = LikelihoodServer(
            pool,
            admission=AdmissionConfig(max_queued=8, tenant_quota=4),
            fairness=FairnessConfig(),
            coalesce=CoalescePolicy(max_width=3),
            brownout=BrownoutPolicy(),
            jitter_seed=0,
            clock=clock,
        )
        for weight_index, weight in enumerate(weights):
            server.scheduler.set_weight(f"t{weight_index}", weight)

        outcomes, rejections = [], 0
        for submitted, (tenant_index, budget) in enumerate(arrivals):
            try:
                server.submit(
                    f"t{tenant_index}", _make_case,
                    deadline_s=budget, dims=_DIMS,
                )
            except ServerSaturatedError:
                rejections += 1
            clock.advance(0.01)
            if submitted % step_every == step_every - 1:
                outcomes.extend(server.step())
        outcomes.extend(server.drain())

        ledger = server.ledger
        assert ledger.balances(), ledger.imbalances()
        assert ledger.drained()
        assert len(outcomes) + rejections == ledger.offered == len(arrivals)
        # Terminal states are exclusive and exhaustive per request.
        assert sorted(o.index for o in outcomes) == sorted(
            set(o.index for o in outcomes)
        )
        for outcome in outcomes:
            assert outcome.status in ("served", "shed", "failed")
            if outcome.ok:
                assert outcome.value == _REFERENCE
        # Per-tenant rows must sum to the aggregate ledger.
        assert sum(t.offered for t in ledger.tenants.values()) == ledger.offered
        assert sum(t.served for t in ledger.tenants.values()) == ledger.served


def _request(index, tenant, cost):
    return LikelihoodRequest(
        index=index, tenant=tenant, make_case=lambda: (None, None),
        label=f"r{index}", cost=cost,
    )


class TestStarvationFreedom:
    @given(
        weight=st.floats(min_value=0.25, max_value=4.0),
        cost=st.integers(min_value=1, max_value=12),
        competitors=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # rival tenant
                st.integers(min_value=1, max_value=4),  # rival cost
            ),
            max_size=40,
        ),
        quantum=st.floats(min_value=0.5, max_value=4.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_head_request_picked_within_the_bound(
        self, weight, cost, competitors, quantum
    ):
        drr = DeficitRoundRobin(FairnessConfig(quantum=quantum))
        drr.set_weight("victim", weight)
        drr.enqueue(_request(0, "victim", cost))
        for rival_index, (rival, rival_cost) in enumerate(competitors):
            drr.enqueue(_request(100 + rival_index, f"rival{rival}", rival_cost))

        bound = drr.starvation_bound("victim", cost)
        picked = []
        for _ in range(bound):
            picked.extend(drr.pick(4))
        assert any(p.index == 0 for p in picked), (
            f"victim starved past its bound of {bound} rotations"
        )
