"""Unit tests for streaming alignment IO (repro.data.streaming).

The chunk-boundary *equivalence* contract is fuzzed in
tests/property/test_parser_fuzz.py; these tests pin down the streaming
API itself — windowed site chunks, the incremental pattern accumulator,
file sources, and the flat-memory guarantee that motivates the layer.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.data import (
    PatternAccumulator,
    TextSource,
    compress,
    iter_fasta_sites,
    iter_phylip_sites,
    iter_sites,
    parse_fasta,
    parse_phylip,
)
from repro.errors import ParseError

FASTA = ">a\nACGTAC\nGT\n>b\nacgtTG\nCA\n"
PHYLIP = "2 8\na ACGT ACGT\nb TGCA TGCA\n"


def _rows(chunks):
    rows = {}
    for chunk in chunks:
        for taxon, row in zip(chunk.taxa, chunk.rows):
            rows[taxon] = rows.get(taxon, "") + row
    return rows


class TestIterSites:
    def test_fasta_windows_roundtrip(self):
        chunks = list(iter_sites(TextSource(FASTA), "fasta", window=3))
        assert [c.n_sites for c in chunks] == [3, 3, 2]
        assert chunks[0].taxa == ("a", "b")
        assert (chunks[0].start, chunks[-1].stop) == (0, 8)
        assert _rows(chunks) == {"a": "ACGTACGT", "b": "ACGTTGCA"}

    def test_phylip_windows_roundtrip(self):
        chunks = list(iter_sites(TextSource(PHYLIP), "phylip", window=5))
        assert _rows(chunks) == {"a": "ACGTACGT", "b": "TGCATGCA"}

    def test_columns_iterate_per_site(self):
        (chunk,) = list(iter_sites(TextSource(FASTA), "fasta", window=100))
        columns = list(chunk.columns())
        assert len(columns) == 8
        assert columns[0] == ("A", "A")
        assert columns[5] == ("C", "G")

    def test_wrapper_functions_delegate(self):
        assert _rows(iter_fasta_sites(TextSource(FASTA))) == _rows(
            iter_sites(TextSource(FASTA), "fasta")
        )
        assert _rows(iter_phylip_sites(TextSource(PHYLIP))) == _rows(
            iter_sites(TextSource(PHYLIP), "phylip")
        )

    def test_file_source_roundtrip(self, tmp_path):
        path = tmp_path / "aln.fasta"
        path.write_text(FASTA)
        chunks = list(iter_sites(path, "fasta", window=3, read_size=4))
        assert _rows(chunks) == {"a": "ACGTACGT", "b": "ACGTTGCA"}

    def test_file_source_closed_on_error(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text(">a\nAC!T\n")
        with pytest.raises(ParseError) as info:
            list(iter_sites(path, "fasta"))
        assert (info.value.line, info.value.column) == (2, 3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            list(iter_sites(TextSource(FASTA), "genbank"))
        with pytest.raises(ValueError):
            list(iter_sites(TextSource(FASTA), "fasta", window=0))

    def test_error_matches_whole_file_parser(self):
        bad = ">a\nACGT\n>a\nACGT\n"
        with pytest.raises(ParseError) as whole:
            parse_fasta(bad)
        with pytest.raises(ParseError) as streamed:
            list(iter_sites(TextSource(bad), "fasta", read_size=2))
        assert str(streamed.value) == str(whole.value)
        assert streamed.value.line == whole.value.line


class TestPatternAccumulator:
    def test_matches_compress_fasta(self):
        alignment = parse_fasta(FASTA)
        acc = PatternAccumulator(tuple(alignment.names))
        for chunk in iter_sites(TextSource(FASTA), "fasta", window=3):
            acc.add_chunk(chunk)
        streamed = acc.finish()
        whole = compress(alignment)
        assert streamed.taxa == whole.taxa
        np.testing.assert_array_equal(streamed.codes, whole.codes)
        np.testing.assert_array_equal(streamed.weights, whole.weights)

    def test_matches_compress_phylip(self):
        alignment = parse_phylip(PHYLIP)
        acc = PatternAccumulator(tuple(alignment.names))
        for chunk in iter_sites(TextSource(PHYLIP), "phylip", window=2):
            acc.add_chunk(chunk)
        streamed = acc.finish()
        whole = compress(alignment)
        np.testing.assert_array_equal(streamed.codes, whole.codes)
        np.testing.assert_array_equal(streamed.weights, whole.weights)

    def test_ambiguity_partials_match_compress(self):
        text = ">a\nACGRN\n>b\nACGTN\n"
        acc = PatternAccumulator(("a", "b"))
        for chunk in iter_sites(TextSource(text), "fasta"):
            acc.add_chunk(chunk)
        streamed = acc.finish()
        whole = compress(parse_fasta(text))
        assert set(streamed.partials) == set(whole.partials)
        for key in streamed.partials:
            np.testing.assert_array_equal(
                streamed.partials[key], whole.partials[key]
            )

    def test_rejects_mismatched_taxa(self):
        acc = PatternAccumulator(("a", "b"))
        (chunk,) = iter_sites(TextSource(FASTA), "fasta", window=100)
        acc.add_chunk(chunk)
        with pytest.raises(ValueError):
            acc.add_columns([("A",)])
        with pytest.raises(ValueError):
            PatternAccumulator(())
        with pytest.raises(ValueError):
            PatternAccumulator(("a", "a"))

    def test_finish_requires_sites(self):
        with pytest.raises(ValueError):
            PatternAccumulator(("a", "b")).finish()


class TestFlatMemory:
    def test_streaming_peak_stays_far_below_whole_file_parse(self, tmp_path):
        # 4 taxa x 240k sites wrapped at 1000 columns (~960 kB of
        # sequence) but only 4 distinct site columns. The streaming scan
        # holds one line, one read buffer and one window at a time —
        # its Python-heap peak must stay well under the file size, while
        # the whole-file parse materialises every site as a tuple entry
        # and peaks at a large multiple of it. (CPython's tuple freelist
        # keeps up to ~2000 freed column tuples alive under tracemalloc,
        # a fixed ~140 kB floor independent of alignment length.)
        n_sites = 240_000
        row = "ACGT" * (n_sites // 4)
        wrapped = "\n".join(row[i : i + 1000] for i in range(0, len(row), 1000))
        taxa = ("t1", "t2", "t3", "t4")
        text = "".join(f">{t}\n{wrapped}\n" for t in taxa)
        path = tmp_path / "big.fasta"
        path.write_text(text)
        file_bytes = path.stat().st_size

        # Warm first-call caches so the measurement below sees only the
        # steady-state buffers: one read block, one line, one window.
        warm = PatternAccumulator(("a", "b"))
        for chunk in iter_sites(TextSource(FASTA), "fasta"):
            warm.add_chunk(chunk)
        warm.finish()

        tracemalloc.start()
        try:
            acc = PatternAccumulator(taxa)
            for chunk in iter_sites(path, "fasta", window=1024, read_size=8192):
                acc.add_chunk(chunk)
            patterns = acc.finish()
            _, streaming_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        assert patterns.n_sites == n_sites
        assert patterns.n_patterns == 4

        tracemalloc.start()
        try:
            whole = compress(parse_fasta(text))
            _, whole_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        np.testing.assert_array_equal(
            np.sort(patterns.weights), np.sort(whole.weights)
        )
        assert streaming_peak < file_bytes / 3, (
            f"streaming peak {streaming_peak} bytes is not flat relative "
            f"to the {file_bytes}-byte alignment"
        )
        assert streaming_peak < whole_peak / 4, (
            f"streaming peak {streaming_peak} should be far below the "
            f"whole-file parse peak {whole_peak}"
        )
