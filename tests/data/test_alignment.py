"""Unit tests for Alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import AMINO_ACID, DNA, Alignment


@pytest.fixture
def aln():
    return Alignment({"x": "ACGT", "y": "ACGA", "z": "TNGT"})


class TestConstruction:
    def test_basic(self, aln):
        assert aln.n_taxa == 3
        assert aln.n_sites == 4
        assert aln.names == ["x", "y", "z"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Alignment({})

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            Alignment({"x": "ACGT", "y": "AC"})

    def test_rejects_bad_symbol(self):
        with pytest.raises(ValueError):
            Alignment({"x": "AXGT"})  # X is not a DNA symbol

    def test_protein_alphabet(self):
        a = Alignment({"x": "MKV", "y": "MXV"}, AMINO_ACID)
        assert a.alphabet is AMINO_ACID
        assert a.has_ambiguity()


class TestAccess:
    def test_sequence(self, aln):
        assert "".join(aln.sequence("x")) == "ACGT"
        with pytest.raises(KeyError):
            aln.sequence("missing")

    def test_column(self, aln):
        assert aln.column(0) == ("A", "A", "T")
        assert aln.column(3) == ("T", "A", "T")
        with pytest.raises(IndexError):
            aln.column(4)

    def test_columns_iterator(self, aln):
        assert len(list(aln.columns())) == 4

    def test_iteration(self, aln):
        names = [name for name, _ in aln]
        assert names == ["x", "y", "z"]


class TestEncodingAndSubsets:
    def test_encoded(self, aln):
        codes = aln.encoded()
        assert codes.shape == (3, 4)
        assert codes[2, 1] == 4  # the N

    def test_has_ambiguity(self, aln):
        assert aln.has_ambiguity()
        assert not Alignment({"x": "ACGT"}).has_ambiguity()

    def test_taxon_subset_reorders(self, aln):
        sub = aln.taxon_subset(["z", "x"])
        assert sub.names == ["z", "x"]
        assert "".join(sub.sequence("z")) == "TNGT"

    def test_site_subset(self, aln):
        sub = aln.site_subset([3, 0])
        assert sub.n_sites == 2
        assert "".join(sub.sequence("x")) == "TA"
