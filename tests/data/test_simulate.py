"""Unit and statistical tests for sequence simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import compress, simulate_alignment, simulate_states
from repro.models import GY94, HKY85, JC69, discrete_gamma
from repro.trees import balanced_tree, pectinate_tree


class TestBasics:
    def test_all_tips_present(self):
        t = balanced_tree(8)
        aln = simulate_alignment(t, JC69(), 50, seed=1)
        assert sorted(aln.names) == sorted(t.tip_names())
        assert aln.n_sites == 50

    def test_deterministic_seed(self):
        t = balanced_tree(4)
        a = simulate_alignment(t, JC69(), 30, seed=9)
        b = simulate_alignment(t, JC69(), 30, seed=9)
        assert all(a.sequence(n) == b.sequence(n) for n in a.names)

    def test_states_shape(self):
        t = pectinate_tree(5)
        states = simulate_states(t, JC69(), 20, seed=2)
        assert set(states) == set(t.tip_names())
        assert all(v.shape == (20,) for v in states.values())
        assert all(v.min() >= 0 and v.max() < 4 for v in states.values())

    def test_validation(self):
        t = balanced_tree(4)
        with pytest.raises(ValueError):
            simulate_states(t, JC69(), 0)
        with pytest.raises(ValueError):
            simulate_states(t, JC69(), 10, site_rates=[1.0] * 5)
        with pytest.raises(ValueError):
            simulate_states(t, JC69(), 2, site_rates=[-1.0, 1.0])

    def test_codon_simulation(self):
        t = balanced_tree(4, branch_length=0.2)
        model = GY94(2.0, 0.5)
        aln = simulate_alignment(t, model, 30, seed=3)
        assert aln.alphabet.name == "codon"
        # every symbol is a codon triplet
        assert all(len(sym) == 3 for sym in aln.sequence(aln.names[0]))


class TestStatisticalBehaviour:
    def test_zero_branch_lengths_copy_root(self):
        t = balanced_tree(8, branch_length=0.0)
        states = simulate_states(t, HKY85(), 40, seed=4)
        rows = np.stack(list(states.values()))
        assert np.all(rows == rows[0])  # no substitutions possible

    def test_long_branches_decorrelate(self):
        t = balanced_tree(2, branch_length=50.0)
        states = simulate_states(t, JC69(), 4000, seed=5)
        a, b = (states[k] for k in sorted(states))
        agreement = float(np.mean(a == b))
        # At saturation agreement -> 1/4.
        assert abs(agreement - 0.25) < 0.05

    def test_stationary_composition(self):
        freqs = [0.4, 0.3, 0.2, 0.1]
        model = HKY85(2.0, freqs)
        t = balanced_tree(2, branch_length=0.01)
        states = simulate_states(t, model, 20_000, seed=6)
        counts = np.bincount(next(iter(states.values())), minlength=4)
        observed = counts / counts.sum()
        assert np.allclose(observed, freqs, atol=0.02)

    def test_invariant_rate_class_freezes_sites(self):
        t = balanced_tree(4, branch_length=1.0)
        n = 60
        rates = np.zeros(n)  # all sites invariant
        states = simulate_states(t, JC69(), n, seed=7, site_rates=rates)
        rows = np.stack(list(states.values()))
        assert np.all(rows == rows[0])

    def test_fast_sites_more_variable(self):
        t = balanced_tree(8, branch_length=0.2)
        n = 4000
        cats = discrete_gamma(0.3, 4)
        # half slowest category, half fastest
        rates = np.concatenate(
            [np.full(n // 2, cats.rates[0]), np.full(n // 2, cats.rates[-1])]
        )
        aln = simulate_alignment(t, JC69(), n, seed=8, site_rates=rates)
        pd = compress(aln)
        codes = pd.codes
        # variability: fraction of polymorphic columns in each half
        def poly_fraction(cols):
            sub = aln.site_subset(cols)
            return float(
                np.mean([len(set(col)) > 1 for col in sub.columns()])
            )

        slow = poly_fraction(range(n // 2))
        fast = poly_fraction(range(n // 2, n))
        assert fast > slow + 0.2
