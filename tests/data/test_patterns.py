"""Unit and property tests for pattern compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import Alignment, DNA, compress, random_patterns


class TestCompress:
    def test_identical_columns_merge(self):
        a = Alignment({"x": "AAAC", "y": "GGGT"})
        pd = compress(a)
        assert pd.n_patterns == 2
        assert pd.n_sites == 4
        assert pd.weights.tolist() == [3.0, 1.0]

    def test_all_unique(self):
        a = Alignment({"x": "ACGT", "y": "AACC"})
        pd = compress(a)
        assert pd.n_patterns == 4
        assert np.all(pd.weights == 1)

    def test_symbol_exact_identity(self):
        # (A, R) and (A, G) are distinct patterns even though R ⊇ G.
        a = Alignment({"x": "AA", "y": "RG"})
        pd = compress(a)
        assert pd.n_patterns == 2

    def test_codes_match_alphabet(self):
        a = Alignment({"x": "AN", "y": "CT"})
        pd = compress(a)
        assert pd.codes[0].tolist() == [0, 4]
        assert pd.codes[1].tolist() == [1, 3]

    def test_tip_partials_from_codes(self):
        a = Alignment({"x": "AN"})
        pd = compress(a)
        mat = pd.tip_partials("x")
        assert np.array_equal(mat[0], [1, 0, 0, 0])
        assert np.array_equal(mat[1], [1, 1, 1, 1])

    def test_tip_partials_for_iupac(self):
        a = Alignment({"x": "AR"})
        pd = compress(a)
        assert "x" in pd.partials  # R cannot be represented as a code
        mat = pd.tip_partials("x")
        assert np.array_equal(mat[1], [1, 0, 1, 0])

    def test_pure_sequences_skip_partials(self):
        a = Alignment({"x": "ACGT", "y": "ACGN"})
        pd = compress(a)
        assert pd.partials == {}  # N is total ambiguity: codes suffice

    def test_tip_codes(self):
        a = Alignment({"x": "ACCA"})
        pd = compress(a)
        assert pd.tip_codes("x").tolist() == [0, 1]

    @given(st.integers(2, 8), st.integers(5, 60), st.integers(0, 999))
    def test_weights_sum_to_sites(self, n_taxa, n_sites, seed):
        rng = np.random.default_rng(seed)
        seqs = {
            f"t{i}": "".join(rng.choice(list("ACGT"), size=n_sites))
            for i in range(n_taxa)
        }
        pd = compress(Alignment(seqs))
        assert pd.n_sites == n_sites
        assert pd.n_patterns <= n_sites


class TestRandomPatterns:
    def test_shape_and_weights(self):
        pd = random_patterns(["a", "b", "c"], 128, seed=1)
        assert pd.codes.shape == (3, 128)
        assert pd.n_patterns == 128
        assert np.all(pd.weights == 1)

    def test_states_in_range(self):
        pd = random_patterns(["a", "b"], 1000, seed=2)
        assert pd.codes.min() >= 0
        assert pd.codes.max() < DNA.n_states

    def test_deterministic_seed(self):
        a = random_patterns(["a", "b"], 64, seed=7)
        b = random_patterns(["a", "b"], 64, seed=7)
        assert np.array_equal(a.codes, b.codes)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_patterns([], 10)
        with pytest.raises(ValueError):
            random_patterns(["a"], 0)
