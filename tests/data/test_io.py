"""Unit tests for FASTA and PHYLIP IO."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.data import (
    Alignment,
    format_fasta,
    format_phylip,
    parse_fasta,
    parse_phylip,
    read_fasta,
    read_phylip,
    write_fasta,
    write_phylip,
)


FASTA = """\
>alpha some description
ACGT
ACGT
>beta
TTNN
ACGT
"""


class TestFasta:
    def test_parse(self):
        a = parse_fasta(FASTA)
        assert a.names == ["alpha", "beta"]
        assert a.n_sites == 8
        assert "".join(a.sequence("beta")) == "TTNNACGT"

    def test_parse_lowercase(self):
        a = parse_fasta(">x\nacgt\n")
        assert "".join(a.sequence("x")) == "ACGT"

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_fasta("ACGT\n")  # data before header
        with pytest.raises(ValueError):
            parse_fasta("")
        with pytest.raises(ValueError):
            parse_fasta(">x\nAC\n>x\nGT\n")  # duplicate name
        with pytest.raises(ValueError):
            parse_fasta(">\nACGT\n")  # empty name

    def test_format_wraps(self):
        a = Alignment({"x": "A" * 150})
        text = format_fasta(a, width=70)
        lines = text.strip().splitlines()
        assert lines[0] == ">x"
        assert [len(l) for l in lines[1:]] == [70, 70, 10]

    def test_roundtrip(self):
        a = parse_fasta(FASTA)
        b = parse_fasta(format_fasta(a))
        assert b.names == a.names
        assert all("".join(b.sequence(n)) == "".join(a.sequence(n)) for n in a.names)

    def test_file_roundtrip(self, tmp_path):
        a = parse_fasta(FASTA)
        path = tmp_path / "aln.fasta"
        write_fasta(a, path)
        b = read_fasta(path)
        assert b.names == a.names


PHYLIP = """\
3 6
alpha  ACGTAC
beta   ACGTAA
gamma  ACGTNN
"""


class TestPhylip:
    def test_parse(self):
        a = parse_phylip(PHYLIP)
        assert a.n_taxa == 3
        assert a.n_sites == 6
        assert "".join(a.sequence("gamma")) == "ACGTNN"

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_phylip("")
        with pytest.raises(ValueError):
            parse_phylip("notnumbers x\nfoo ACGT\n")
        with pytest.raises(ValueError):
            parse_phylip("2 4\nonlyone ACGT\n")
        with pytest.raises(ValueError):
            parse_phylip("1 4\nx ACG\n")  # wrong length
        with pytest.raises(ValueError):
            parse_phylip("2 4\nx ACGT\nx ACGT\n")  # duplicate

    def test_roundtrip(self):
        a = parse_phylip(PHYLIP)
        b = parse_phylip(format_phylip(a))
        assert b.names == a.names
        assert all("".join(b.sequence(n)) == "".join(a.sequence(n)) for n in a.names)

    def test_file_roundtrip(self, tmp_path):
        a = parse_phylip(PHYLIP)
        path = tmp_path / "aln.phy"
        write_phylip(a, path)
        b = read_phylip(path)
        assert b.n_taxa == 3

    def test_cross_format(self):
        a = parse_phylip(PHYLIP)
        b = parse_fasta(format_fasta(a))
        assert b.names == a.names


class TestTypedParseErrors:
    """Malformed input raises :class:`ParseError` carrying the line."""

    def test_fasta_ragged_alignment_names_record_and_line(self):
        with pytest.raises(ParseError) as info:
            parse_fasta(">a\nACGT\n>b\nAC\n")
        assert info.value.line == 3  # header line of the short record
        assert "ragged" in str(info.value)
        assert "'b'" in str(info.value)

    def test_fasta_data_before_header_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_fasta("\nACGT\n")
        assert info.value.line == 2
        assert info.value.source == "FASTA"

    def test_fasta_duplicate_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_fasta(">x\nAC\n>x\nGT\n")
        assert info.value.line == 3

    def test_phylip_ragged_record_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_phylip("3 6\nalpha ACGTAC\nbeta ACGT\ngamma ACGTAC\n")
        assert info.value.line == 3
        assert "ragged" in str(info.value)
        assert info.value.source == "PHYLIP"

    def test_phylip_bad_symbol_column_not_fooled_by_name(self):
        # The name 'ACGT!x' contains the full sequence text 'ACGT!';
        # locating the sequence with str.find used to report a column
        # inside the name. The real offender is the '!' at column 12.
        with pytest.raises(ParseError) as info:
            parse_phylip("1 4\nACGT!x ACGT!\n")
        assert info.value.line == 2
        assert info.value.column == 12

    def test_phylip_bad_header_is_line_one(self):
        with pytest.raises(ParseError) as info:
            parse_phylip("many sites\nx ACGT\n")
        assert info.value.line == 1

    def test_phylip_header_skips_leading_blank_lines(self):
        with pytest.raises(ParseError) as info:
            parse_phylip("\n\nmany sites\nx ACGT\n")
        assert info.value.line == 3

    def test_parse_errors_are_value_errors(self):
        # Callers that caught ValueError before the typed errors existed
        # keep working.
        assert issubclass(ParseError, ValueError)
