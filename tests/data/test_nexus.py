"""Unit tests for NEXUS IO."""

from __future__ import annotations

import pytest

from repro.data import (
    AMINO_ACID,
    Alignment,
    format_nexus_alignment,
    format_nexus_trees,
    parse_nexus_alignment,
    parse_nexus_trees,
    read_nexus_alignment,
    read_nexus_trees,
    write_nexus_alignment,
    write_nexus_trees,
)
from repro.trees import balanced_tree, parse_newick, same_unrooted_topology


NEXUS_DATA = """\
#NEXUS
[ example file ]
BEGIN DATA;
    DIMENSIONS ntax=3 nchar=8;
    FORMAT datatype=dna missing=? gap=-;
    MATRIX
        alpha  ACGTACGT
        beta   ACGTACGA
        gamma  ACG-ACGN
    ;
END;
"""

NEXUS_TREES = """\
#NEXUS
BEGIN TREES;
    TRANSLATE
        1 alpha,
        2 beta,
        3 gamma;
    TREE first = ((1:0.1,2:0.2):0.05,3:0.3);
    TREE * second = ((1:0.1,3:0.2):0.05,2:0.3);
END;
"""


class TestParseAlignment:
    def test_basic(self):
        a = parse_nexus_alignment(NEXUS_DATA)
        assert a.n_taxa == 3
        assert a.n_sites == 8
        assert "".join(a.sequence("gamma")) == "ACG-ACGN"

    def test_interleaved_rows_concatenate(self):
        text = NEXUS_DATA.replace(
            "        alpha  ACGTACGT\n", "        alpha  ACGT\n        alpha  ACGT\n"
        )
        a = parse_nexus_alignment(text)
        assert "".join(a.sequence("alpha")) == "ACGTACGT"

    def test_protein_datatype(self):
        text = NEXUS_DATA.replace("datatype=dna", "datatype=protein").replace(
            "ACGTACGT", "MKVLWAAL"
        ).replace("ACGTACGA", "MKVLWAAX").replace("ACG-ACGN", "MKV-WAAL")
        a = parse_nexus_alignment(text)
        assert a.alphabet is AMINO_ACID

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_nexus_alignment("not nexus at all")
        with pytest.raises(ValueError):
            parse_nexus_alignment("#NEXUS\nBEGIN TREES;\nEND;")
        with pytest.raises(ValueError):
            parse_nexus_alignment(NEXUS_DATA.replace("ntax=3", "ntax=5"))
        with pytest.raises(ValueError):
            parse_nexus_alignment(NEXUS_DATA.replace("nchar=8", "nchar=9"))
        with pytest.raises(ValueError):
            parse_nexus_alignment(NEXUS_DATA.replace("datatype=dna", "datatype=standard"))

    def test_comments_stripped(self):
        text = NEXUS_DATA.replace("ACGTACGT", "ACGT[comment]ACGT")
        a = parse_nexus_alignment(text)
        assert "".join(a.sequence("alpha")) == "ACGTACGT"

    def test_unbalanced_comment(self):
        with pytest.raises(ValueError):
            parse_nexus_alignment("#NEXUS [oops")


class TestParseTrees:
    def test_translate_applied(self):
        trees = parse_nexus_trees(NEXUS_TREES)
        assert set(trees) == {"first", "second"}
        assert sorted(trees["first"].tip_names()) == ["alpha", "beta", "gamma"]

    def test_branch_lengths(self):
        trees = parse_nexus_trees(NEXUS_TREES)
        assert trees["first"].find("gamma").length == pytest.approx(0.3)

    def test_no_trees_block(self):
        with pytest.raises(ValueError):
            parse_nexus_trees(NEXUS_DATA)

    def test_without_translate(self):
        text = "#NEXUS\nBEGIN TREES;\nTREE t1 = ((a,b),c);\nEND;\n"
        trees = parse_nexus_trees(text)
        assert sorted(trees["t1"].tip_names()) == ["a", "b", "c"]


class TestRoundTrips:
    def test_alignment_roundtrip(self, tmp_path):
        a = parse_nexus_alignment(NEXUS_DATA)
        path = tmp_path / "aln.nex"
        write_nexus_alignment(a, path)
        b = read_nexus_alignment(path)
        assert b.names == a.names
        assert all("".join(b.sequence(n)) == "".join(a.sequence(n)) for n in a.names)

    def test_trees_roundtrip(self, tmp_path):
        original = {"t1": balanced_tree(6), "t2": parse_newick("((a,b),(c,d));")}
        path = tmp_path / "trees.nex"
        write_nexus_trees(original, path)
        back = read_nexus_trees(path)
        assert set(back) == {"t1", "t2"}
        assert same_unrooted_topology(back["t1"], original["t1"])

    def test_write_rejects_codon_alphabet(self):
        from repro.models import GY94
        from repro.data import simulate_alignment

        tree = balanced_tree(3, branch_length=0.1)
        aln = simulate_alignment(tree, GY94(), 4, seed=1)
        with pytest.raises(ValueError):
            format_nexus_alignment(aln)

    def test_format_trees_rejects_empty(self):
        with pytest.raises(ValueError):
            format_nexus_trees({})
