"""Unit tests for alphabets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import AMINO_ACID, DNA, Alphabet


class TestDNA:
    def test_states(self):
        assert DNA.states == ("A", "C", "G", "T")
        assert DNA.n_states == 4

    def test_index(self):
        assert [DNA.index(s) for s in "ACGT"] == [0, 1, 2, 3]
        with pytest.raises(KeyError):
            DNA.index("N")  # ambiguous symbols have no single index

    def test_codes(self):
        assert DNA.code("A") == 0
        assert DNA.code("N") == 4  # BEAGLE unknown convention
        assert DNA.code("-") == 4
        assert DNA.code("R") == 4
        with pytest.raises(KeyError):
            DNA.code("Q")

    def test_partials_unambiguous(self):
        assert np.array_equal(DNA.partial("C"), [0, 1, 0, 0])

    def test_partials_iupac(self):
        assert np.array_equal(DNA.partial("R"), [1, 0, 1, 0])  # A or G
        assert np.array_equal(DNA.partial("Y"), [0, 1, 0, 1])  # C or T
        assert np.array_equal(DNA.partial("N"), [1, 1, 1, 1])
        assert np.array_equal(DNA.partial("U"), [0, 0, 0, 1])  # RNA T

    def test_partial_returns_copy(self):
        vec = DNA.partial("A")
        vec[0] = 99.0
        assert DNA.partial("A")[0] == 1.0

    def test_is_ambiguous(self):
        assert not DNA.is_ambiguous("A")
        assert DNA.is_ambiguous("R")
        assert DNA.is_ambiguous("-")
        with pytest.raises(KeyError):
            DNA.is_ambiguous("!")

    def test_encode(self):
        codes = DNA.encode("ACGTN")
        assert codes.tolist() == [0, 1, 2, 3, 4]

    def test_encode_partials_shape(self):
        mat = DNA.encode_partials("ACR")
        assert mat.shape == (3, 4)
        assert np.array_equal(mat[2], [1, 0, 1, 0])

    def test_contains(self):
        assert "A" in DNA and "R" in DNA and "?" in DNA
        assert "!" not in DNA


class TestAminoAcid:
    def test_twenty_states(self):
        assert AMINO_ACID.n_states == 20
        assert len(set(AMINO_ACID.states)) == 20

    def test_ambiguities(self):
        b = AMINO_ACID.partial("B")  # D or N
        assert b.sum() == 2
        assert b[AMINO_ACID.index("D")] == 1 and b[AMINO_ACID.index("N")] == 1
        assert AMINO_ACID.partial("X").sum() == 20


class TestCustomAlphabet:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            Alphabet("bad", "AAB")

    def test_binary_alphabet(self):
        binary = Alphabet("binary", "01")
        assert binary.n_states == 2
        assert binary.code("0") == 0
        assert binary.code("?") == 2

    def test_symbols_lists_everything(self):
        symbols = DNA.symbols()
        assert set("ACGT").issubset(symbols)
        assert "R" in symbols and "N" in symbols
