"""Library-wide API quality checks.

Keeps the public surface honest: everything exported by ``__all__`` must
exist, be documented, and be importable from the package root where the
README promises it.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.trees",
    "repro.data",
    "repro.models",
    "repro.beagle",
    "repro.core",
    "repro.gpu",
    "repro.partition",
    "repro.inference",
    "repro.bench",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_importable_with_all(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} missing a module docstring"
    assert hasattr(module, "__all__"), f"{name} missing __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} exported but missing"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, f"undocumented public API: {undocumented}"


def test_public_classes_have_documented_public_methods():
    classes = [
        repro.TreeLikelihood,
        repro.BeagleInstance,
        repro.Tree,
        repro.Node,
        repro.SimulatedDevice,
    ]
    missing = []
    for cls in classes:
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) and not inspect.getdoc(member):
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented public methods: {missing}"


def test_every_source_module_has_docstring():
    import repro as root

    undocumented = []
    for info in pkgutil.walk_packages(root.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            undocumented.append(info.name)
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_version_exported():
    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_promises_hold():
    # The README's quickstart snippet, executed literally.
    from repro import TreeLikelihood, HKY85, pectinate_tree
    from repro.data import simulate_alignment

    model = HKY85(kappa=2.0, frequencies=[0.3, 0.2, 0.2, 0.3])
    tree = pectinate_tree(128, branch_length=0.1)
    aln = simulate_alignment(tree, model, 64, seed=42)
    serial = TreeLikelihood(tree, model, aln, mode="serial")
    rerooted = TreeLikelihood(tree, model, aln, reroot="fast")
    assert serial.log_likelihood() == pytest.approx(rerooted.log_likelihood())
    assert (serial.n_launches, rerooted.n_launches) == (127, 64)
