"""Partitioned Bayesian analysis: run_mcmc over PartitionedLikelihood."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import simulate_alignment
from repro.inference import run_mcmc
from repro.models import HKY85, JC69
from repro.partition import PartitionedLikelihood, partition_by_ranges
from repro.trees import balanced_tree, pectinate_tree


@pytest.fixture
def partitioned():
    tree = balanced_tree(8, branch_length=0.2)
    aln = simulate_alignment(tree, JC69(), 60, seed=161)
    dataset = partition_by_ranges(
        aln, [(0, 30), (30, 60)], [JC69(), HKY85(2.0)]
    )
    return PartitionedLikelihood(tree, dataset)


class TestPartitionedMCMC:
    def test_chain_runs(self, partitioned):
        result = run_mcmc(partitioned, 25, seed=162)
        assert result.proposed == 25
        assert len(result.log_likelihoods) == 25
        assert all(np.isfinite(v) for v in result.log_likelihoods)
        assert result.device_seconds > 0

    def test_deterministic(self, partitioned):
        a = run_mcmc(partitioned, 15, seed=163)
        b = run_mcmc(partitioned, 15, seed=163)
        assert a.log_likelihoods == b.log_likelihoods

    def test_launches_counted_per_joint_evaluation(self, partitioned):
        result = run_mcmc(partitioned, 10, seed=164)
        # Start evaluation + 10 proposals; each joint evaluation costs
        # between ceil(log2 8) = 3 and n − 1 = 7 merged launches
        # (candidate topologies vary in shape).
        assert 11 * 3 <= result.kernel_launches <= 11 * 7

    def test_rerooted_partitioned_chain_cheaper(self):
        tree = pectinate_tree(24, branch_length=0.15)
        aln = simulate_alignment(tree, JC69(), 60, seed=165)
        dataset = partition_by_ranges(
            aln, [(0, 30), (30, 60)], [JC69(), JC69()]
        )
        plain = run_mcmc(
            PartitionedLikelihood(tree, dataset), 20, seed=166
        )
        rerooted = run_mcmc(
            PartitionedLikelihood(tree, dataset, reroot="fast"), 20, seed=166
        )
        assert rerooted.kernel_launches < plain.kernel_launches
        assert rerooted.device_seconds < plain.device_seconds
