"""Unit tests for partitioned datasets."""

from __future__ import annotations

import pytest

from repro.data import Alignment, compress, simulate_alignment
from repro.models import GTR, HKY85, JC69, discrete_gamma
from repro.partition import (
    DataPartition,
    PartitionedDataset,
    partition_by_codon_position,
    partition_by_ranges,
)
from repro.trees import balanced_tree


@pytest.fixture
def alignment():
    tree = balanced_tree(6, branch_length=0.2)
    return simulate_alignment(tree, JC69(), 60, seed=71)


def make_partition(alignment, name="p"):
    return DataPartition(name=name, patterns=compress(alignment), model=JC69())


class TestDataPartition:
    def test_fields(self, alignment):
        p = make_partition(alignment)
        assert p.n_patterns == compress(alignment).n_patterns
        assert set(p.taxa) == set(alignment.names)
        assert p.rates.n_categories == 1


class TestPartitionedDataset:
    def test_basic(self, alignment):
        ds = PartitionedDataset(
            [make_partition(alignment, "a"), make_partition(alignment, "b")]
        )
        assert len(ds) == 2
        assert ds.names == ["a", "b"]
        assert ds.total_patterns == 2 * compress(alignment).n_patterns
        assert ds[0].name == "a"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PartitionedDataset([])

    def test_rejects_duplicate_names(self, alignment):
        with pytest.raises(ValueError):
            PartitionedDataset(
                [make_partition(alignment, "x"), make_partition(alignment, "x")]
            )

    def test_rejects_mismatched_taxa(self, alignment):
        other = Alignment({"odd": "ACGT"})
        with pytest.raises(ValueError):
            PartitionedDataset(
                [make_partition(alignment, "a"), make_partition(other, "b")]
            )


class TestPartitionByRanges:
    def test_split(self, alignment):
        ds = partition_by_ranges(
            alignment,
            [(0, 20), (20, 60)],
            [JC69(), HKY85(2.0)],
            names=["gene1", "gene2"],
        )
        assert ds.names == ["gene1", "gene2"]
        assert ds[0].patterns.n_sites == 20
        assert ds[1].patterns.n_sites == 40
        assert ds[1].model.name == "HKY85"

    def test_default_names(self, alignment):
        ds = partition_by_ranges(alignment, [(0, 30), (30, 60)], [JC69(), JC69()])
        assert ds.names == ["part1", "part2"]

    def test_rates(self, alignment):
        rates = discrete_gamma(0.5, 4)
        ds = partition_by_ranges(
            alignment, [(0, 60)], [JC69()], rates=[rates]
        )
        assert ds[0].rates.n_categories == 4

    def test_validation(self, alignment):
        with pytest.raises(ValueError):
            partition_by_ranges(alignment, [(0, 10)], [JC69(), JC69()])
        with pytest.raises(ValueError):
            partition_by_ranges(alignment, [(0, 70)], [JC69()])  # out of bounds
        with pytest.raises(ValueError):
            partition_by_ranges(
                alignment, [(0, 30), (20, 60)], [JC69(), JC69()]
            )  # overlap
        with pytest.raises(ValueError):
            partition_by_ranges(alignment, [(0, 60)], [JC69()], names=["a", "b"])


class TestPartitionByCodonPosition:
    def test_three_way(self, alignment):
        models = [HKY85(2.0), HKY85(3.0), GTR([1, 2, 1, 1, 2, 1])]
        ds = partition_by_codon_position(alignment, models)
        assert len(ds) == 3
        assert ds.names == ["codon_pos_1", "codon_pos_2", "codon_pos_3"]
        assert all(p.patterns.n_sites == 20 for p in ds)

    def test_validation(self, alignment):
        with pytest.raises(ValueError):
            partition_by_codon_position(alignment, [JC69()])
        odd = alignment.site_subset(range(59))
        with pytest.raises(ValueError):
            partition_by_codon_position(odd, [JC69()] * 3)
