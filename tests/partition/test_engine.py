"""Unit and integration tests for PartitionedLikelihood."""

from __future__ import annotations

import pytest

from repro.beagle import pruning_log_likelihood
from repro.core import count_operation_sets
from repro.data import simulate_alignment
from repro.gpu import GP100, SMALL_GPU
from repro.inference import TreeLikelihood
from repro.models import GTR, HKY85, JC69, discrete_gamma
from repro.partition import PartitionedLikelihood, partition_by_ranges
from repro.trees import pectinate_tree, random_attachment_tree


@pytest.fixture
def setup():
    tree = random_attachment_tree(12, 9, random_lengths=True)
    aln = simulate_alignment(tree, JC69(), 90, seed=72)
    models = [JC69(), HKY85(2.0, [0.3, 0.2, 0.2, 0.3]), GTR([1, 2, 1, 1, 2, 1])]
    dataset = partition_by_ranges(
        aln, [(0, 30), (30, 60), (60, 90)], models, rates=[
            discrete_gamma(0.5, 2),
            discrete_gamma(1.0, 2),
            discrete_gamma(2.0, 2),
        ]
    )
    return tree, dataset


class TestLikelihood:
    def test_sum_of_partitions(self, setup):
        tree, dataset = setup
        pl = PartitionedLikelihood(tree, dataset)
        parts = pl.partition_log_likelihoods()
        assert pl.log_likelihood() == pytest.approx(sum(parts))
        # Each partition must match the independent reference.
        for value, partition in zip(parts, dataset):
            expected = pruning_log_likelihood(
                tree, partition.model, partition.patterns, partition.rates
            )
            assert value == pytest.approx(expected, abs=1e-8)

    def test_matches_unpartitioned_single_model(self):
        # One partition with the whole alignment == plain TreeLikelihood.
        tree = random_attachment_tree(8, 3, random_lengths=True)
        aln = simulate_alignment(tree, JC69(), 40, seed=73)
        dataset = partition_by_ranges(aln, [(0, 40)], [JC69()])
        pl = PartitionedLikelihood(tree, dataset)
        tl = TreeLikelihood(tree, JC69(), aln)
        assert pl.log_likelihood() == pytest.approx(tl.log_likelihood(), abs=1e-9)

    def test_reroot_option(self, setup):
        tree, dataset = setup
        base = PartitionedLikelihood(tree, dataset)
        rerooted = PartitionedLikelihood(tree, dataset, reroot="fast")
        assert rerooted.log_likelihood() == pytest.approx(
            base.log_likelihood(), abs=1e-8
        )
        assert rerooted.plan.n_launches <= base.plan.n_launches
        with pytest.raises(ValueError):
            PartitionedLikelihood(tree, dataset, reroot="???")

    def test_scaling(self, setup):
        tree, dataset = setup
        plain = PartitionedLikelihood(tree, dataset)
        scaled = PartitionedLikelihood(tree, dataset, scaling=True)
        assert scaled.log_likelihood() == pytest.approx(
            plain.log_likelihood(), abs=1e-9
        )


class TestLaunchAccounting:
    def test_counts(self, setup):
        tree, dataset = setup
        pl = PartitionedLikelihood(tree, dataset)
        sets = count_operation_sets(tree)
        assert pl.launches_concurrent_partitions() == sets
        assert pl.launches_sequential_partitions() == 3 * sets

    def test_device_timing_structure(self, setup):
        tree, dataset = setup
        pl = PartitionedLikelihood(tree, dataset)
        seq = pl.device_timing(concurrent_partitions=False)
        conc = pl.device_timing(concurrent_partitions=True)
        assert seq.n_launches == pl.launches_sequential_partitions()
        assert conc.n_launches == pl.launches_concurrent_partitions()
        # Work totals identical; only grouping differs.
        assert seq.n_operations == conc.n_operations
        assert seq.flops == conc.flops

    def test_partition_concurrency_speeds_up(self, setup):
        """The §IV-A effect: merging partitions into shared launches wins
        when the device is undersaturated."""
        tree, dataset = setup
        pl = PartitionedLikelihood(tree, dataset)
        speedup = pl.partition_concurrency_speedup(GP100)
        assert speedup > 1.5

    def test_small_device_gains_less(self, setup):
        tree, dataset = setup
        pl = PartitionedLikelihood(tree, dataset)
        big = pl.partition_concurrency_speedup(GP100)
        small = pl.partition_concurrency_speedup(SMALL_GPU)
        assert small < big

    def test_combines_with_rerooting(self):
        """Rerooting and partition concurrency compose: a pectinate tree
        gains from both, multiplicatively in launch count."""
        tree = pectinate_tree(32, branch_length=0.1)
        aln = simulate_alignment(tree, JC69(), 60, seed=74)
        dataset = partition_by_ranges(
            aln, [(0, 20), (20, 40), (40, 60)], [JC69(), JC69(), JC69()]
        )
        plain = PartitionedLikelihood(tree, dataset)
        rerooted = PartitionedLikelihood(tree, dataset, reroot="fast")
        assert plain.launches_sequential_partitions() == 3 * 31
        assert rerooted.launches_concurrent_partitions() == 16
        t_plain = plain.device_timing(concurrent_partitions=False).seconds
        t_both = rerooted.device_timing(concurrent_partitions=True).seconds
        assert t_plain / t_both > 3.0
