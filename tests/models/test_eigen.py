"""Unit and property tests for the eigendecomposition machinery."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given
from hypothesis import strategies as st

from repro.models import (
    HKY85,
    JC69,
    build_reversible_q,
    decompose_reversible,
    transition_matrices,
)


def random_reversible(seed: int, s: int = 4):
    rng = np.random.default_rng(seed)
    r = np.zeros((s, s))
    upper = np.triu_indices(s, 1)
    r[upper] = rng.uniform(0.2, 3.0, size=len(upper[0]))
    r = r + r.T
    pi = rng.dirichlet(np.full(s, 4.0))
    Q = build_reversible_q(r, pi)
    return Q, pi


class TestDecompose:
    def test_reconstructs_q(self):
        Q, pi = random_reversible(0)
        e = decompose_reversible(Q, pi)
        rebuilt = e.vectors @ np.diag(e.values) @ e.inverse_vectors
        assert np.allclose(rebuilt, Q, atol=1e-12)

    def test_zero_eigenvalue_present(self):
        Q, pi = random_reversible(1)
        e = decompose_reversible(Q, pi)
        assert np.isclose(e.values.max(), 0.0, atol=1e-10)
        assert np.all(e.values <= 1e-10)

    def test_inverse_really_inverse(self):
        Q, pi = random_reversible(2)
        e = decompose_reversible(Q, pi)
        assert np.allclose(e.vectors @ e.inverse_vectors, np.eye(4), atol=1e-12)

    def test_rejects_irreversible(self):
        Q = np.array(
            [[-1.0, 1.0, 0, 0], [0, -1.0, 1.0, 0], [0, 0, -1.0, 1.0], [1.0, 0, 0, -1.0]]
        )
        with pytest.raises(ValueError):
            decompose_reversible(Q, np.full(4, 0.25))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            decompose_reversible(np.zeros((3, 4)), np.full(4, 0.25))
        with pytest.raises(ValueError):
            decompose_reversible(np.zeros((4, 4)), np.array([0.5, 0.5, 0.0, 0.0]))


class TestTransitionMatrices:
    @given(st.integers(0, 500), st.floats(0.0, 20.0))
    def test_matches_expm(self, seed, t):
        Q, pi = random_reversible(seed)
        e = decompose_reversible(Q, pi)
        P = transition_matrices(e, [t])[0]
        assert np.allclose(P, scipy.linalg.expm(Q * t), atol=1e-9)

    def test_rows_sum_to_one(self):
        model = HKY85(3.0, [0.1, 0.2, 0.3, 0.4])
        for t in (0.0, 0.01, 0.5, 4.0):
            P = model.transition_matrix(t)
            assert np.allclose(P.sum(axis=1), 1.0, atol=1e-12)
            assert np.all(P >= 0)

    def test_identity_at_zero(self):
        P = JC69().transition_matrix(0.0)
        assert np.allclose(P, np.eye(4), atol=1e-12)

    def test_stationarity_at_infinity(self):
        pi = [0.4, 0.1, 0.3, 0.2]
        model = HKY85(2.0, pi)
        P = model.transition_matrix(500.0)
        assert np.allclose(P, np.tile(pi, (4, 1)), atol=1e-8)

    def test_chapman_kolmogorov(self):
        model = HKY85(2.0, [0.3, 0.2, 0.3, 0.2])
        P1 = model.transition_matrix(0.3)
        P2 = model.transition_matrix(0.7)
        P12 = model.transition_matrix(1.0)
        assert np.allclose(P1 @ P2, P12, atol=1e-10)

    def test_batched_equals_individual(self):
        model = HKY85()
        times = [0.0, 0.1, 0.5, 2.0]
        batch = model.transition_matrices(times)
        for k, t in enumerate(times):
            assert np.allclose(batch[k], model.transition_matrix(t), atol=1e-14)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            JC69().transition_matrices([-0.1])

    def test_jc_analytic_form(self):
        # JC69 has the closed form p_same = 1/4 + 3/4 e^{-4t/3}.
        t = 0.37
        P = JC69().transition_matrix(t)
        same = 0.25 + 0.75 * np.exp(-4.0 * t / 3.0)
        diff = 0.25 - 0.25 * np.exp(-4.0 * t / 3.0)
        assert np.allclose(np.diag(P), same, atol=1e-12)
        off = P[~np.eye(4, dtype=bool)]
        assert np.allclose(off, diff, atol=1e-12)
