"""Unit tests for among-site rate variation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import RateCategories, discrete_gamma, invariant_plus_gamma, single_rate


class TestRateCategories:
    def test_valid(self):
        rc = RateCategories(np.array([0.5, 1.5]), np.array([0.5, 0.5]))
        assert rc.n_categories == 2
        assert rc.mean_rate() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateCategories(np.array([1.0]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            RateCategories(np.array([-1.0, 1.0]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            RateCategories(np.array([1.0, 1.0]), np.array([0.7, 0.7]))

    def test_single_rate(self):
        rc = single_rate()
        assert rc.n_categories == 1
        assert rc.rates[0] == 1.0


class TestDiscreteGamma:
    def test_yang_1994_reference_values(self):
        # Published example: alpha = 0.5, k = 4 mean-of-quantile rates.
        rc = discrete_gamma(0.5, 4)
        expected = [0.0334, 0.2519, 0.8203, 2.8944]
        assert np.allclose(rc.rates, expected, atol=2e-4)

    def test_mean_is_one(self):
        for alpha in (0.1, 0.5, 1.0, 2.0, 10.0):
            for k in (2, 4, 8):
                rc = discrete_gamma(alpha, k)
                assert rc.mean_rate() == pytest.approx(1.0)

    def test_rates_increasing(self):
        rc = discrete_gamma(0.7, 6)
        assert np.all(np.diff(rc.rates) > 0)

    def test_large_alpha_approaches_uniform(self):
        rc = discrete_gamma(500.0, 4)
        assert np.allclose(rc.rates, 1.0, atol=0.1)

    def test_small_alpha_spreads(self):
        rc = discrete_gamma(0.1, 4)
        assert rc.rates[0] < 1e-3
        assert rc.rates[-1] > 3.0

    def test_one_category_trivial(self):
        rc = discrete_gamma(0.5, 1)
        assert rc.rates.tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            discrete_gamma(0.0, 4)
        with pytest.raises(ValueError):
            discrete_gamma(1.0, 0)


class TestInvariantPlusGamma:
    def test_structure(self):
        rc = invariant_plus_gamma(0.5, 0.2, 4)
        assert rc.n_categories == 5
        assert rc.rates[0] == 0.0
        assert rc.probabilities[0] == pytest.approx(0.2)

    def test_mean_preserved(self):
        rc = invariant_plus_gamma(0.5, 0.3, 4)
        assert rc.mean_rate() == pytest.approx(1.0)

    def test_zero_invariant_matches_gamma(self):
        rc = invariant_plus_gamma(0.5, 0.0, 4)
        base = discrete_gamma(0.5, 4)
        assert np.allclose(rc.rates[1:], base.rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            invariant_plus_gamma(0.5, 1.0)
        with pytest.raises(ValueError):
            invariant_plus_gamma(0.5, -0.1)


class TestDrawSiteRates:
    def test_values_from_categories(self):
        import numpy as np
        from repro.models import draw_site_rates

        rc = discrete_gamma(0.5, 4)
        rates = draw_site_rates(rc, 500, np.random.default_rng(1))
        assert rates.shape == (500,)
        assert set(np.round(rates, 10)) <= set(np.round(rc.rates, 10))

    def test_mean_near_one(self):
        import numpy as np
        from repro.models import draw_site_rates

        rc = discrete_gamma(1.0, 4)
        rates = draw_site_rates(rc, 20_000, np.random.default_rng(2))
        assert abs(rates.mean() - 1.0) < 0.05

    def test_validation(self):
        import numpy as np
        from repro.models import draw_site_rates

        with pytest.raises(ValueError):
            draw_site_rates(single_rate(), 0, np.random.default_rng(0))
