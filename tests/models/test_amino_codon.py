"""Unit tests for amino-acid and codon models and the genetic code."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    GY94,
    AminoAcidModel,
    Poisson,
    STANDARD_CODE,
    codon_alphabet,
    codon_frequencies_f1x4,
    is_transition,
    sense_codons,
    synthetic_empirical,
    translate,
)


class TestGeneticCode:
    def test_code_size(self):
        assert len(STANDARD_CODE) == 64
        assert len(sense_codons()) == 61

    def test_stop_codons(self):
        stops = {c for c, aa in STANDARD_CODE.items() if aa == "*"}
        assert stops == {"TAA", "TAG", "TGA"}

    def test_known_translations(self):
        assert translate("ATG") == "M"
        assert translate("TGG") == "W"
        assert translate("TTT") == "F"
        assert translate("AAA") == "K"
        assert translate("GGG") == "G"
        assert translate("aug") == "M"  # RNA, lowercase

    def test_translate_rejects_garbage(self):
        with pytest.raises(KeyError):
            translate("QQQ")

    def test_amino_acid_coverage(self):
        # All 20 amino acids appear in the code.
        aas = {aa for aa in STANDARD_CODE.values() if aa != "*"}
        assert len(aas) == 20

    def test_is_transition(self):
        assert is_transition("A", "G")
        assert is_transition("C", "T")
        assert not is_transition("A", "C")
        assert not is_transition("G", "T")

    def test_codon_alphabet(self):
        alph = codon_alphabet()
        assert alph.n_states == 61
        assert "ATG" in alph
        assert "TAA" not in alph  # stop codon excluded


class TestPoisson:
    def test_invariants(self):
        m = Poisson()
        assert m.n_states == 20
        assert m.is_reversible()
        assert m.expected_rate() == pytest.approx(1.0)

    def test_uniform_offdiagonal(self):
        Q = Poisson().rate_matrix
        off = Q[~np.eye(20, dtype=bool)]
        assert np.allclose(off, off[0])

    def test_analytic_p_matrix(self):
        # Poisson is the 20-state JC: p_same = 1/20 + 19/20 e^{-20t/19}.
        t = 0.42
        P = Poisson().transition_matrix(t)
        same = 1 / 20 + (19 / 20) * np.exp(-20 * t / 19)
        assert np.allclose(np.diag(P), same, atol=1e-12)


class TestAminoAcidModel:
    def test_synthetic_empirical_valid(self):
        m = synthetic_empirical(3)
        assert m.is_reversible()
        assert m.expected_rate() == pytest.approx(1.0)
        assert m.frequencies.min() > 0

    def test_synthetic_empirical_deterministic(self):
        assert np.allclose(
            synthetic_empirical(5).rate_matrix, synthetic_empirical(5).rate_matrix
        )

    def test_rejects_asymmetric(self):
        r = np.ones((20, 20))
        r[0, 1] = 2.0
        with pytest.raises(ValueError):
            AminoAcidModel(r)


class TestGY94:
    def test_invariants(self):
        m = GY94(2.0, 0.5)
        assert m.n_states == 61
        assert m.is_reversible()
        assert m.expected_rate() == pytest.approx(1.0)

    def test_single_step_only(self):
        m = GY94(2.0, 1.0)
        Q = m.rate_matrix
        codons = sense_codons()
        for i in range(0, 61, 7):
            for j in range(0, 61, 11):
                if i == j:
                    continue
                ndiff = sum(a != b for a, b in zip(codons[i], codons[j]))
                if ndiff > 1:
                    assert Q[i, j] == 0.0

    def test_omega_scales_nonsynonymous(self):
        codons = sense_codons()
        # Find a non-synonymous single-step pair and a synonymous one.
        m_low = GY94(2.0, 0.1)
        m_high = GY94(2.0, 1.0)
        i = codons.index("TTA")  # Leu
        j = codons.index("TTG")  # Leu — synonymous transition
        k = codons.index("TCA")  # Ser — non-synonymous transversion
        ratio_low = m_low.rate_matrix[i, k] / m_low.rate_matrix[i, j]
        ratio_high = m_high.rate_matrix[i, k] / m_high.rate_matrix[i, j]
        assert ratio_high / ratio_low == pytest.approx(10.0, rel=1e-6)

    def test_kappa_scales_transitions(self):
        codons = sense_codons()
        i = codons.index("TTA")
        j = codons.index("TTG")  # A->G third position: transition, synonymous
        m1 = GY94(1.0, 1.0)
        m5 = GY94(5.0, 1.0)
        # Compare against a transversion synonymous pair CGA->CGC (Arg).
        a = codons.index("CGA")
        b = codons.index("CGC")
        r1 = m1.rate_matrix[i, j] / m1.rate_matrix[a, b]
        r5 = m5.rate_matrix[i, j] / m5.rate_matrix[a, b]
        assert r5 / r1 == pytest.approx(5.0, rel=1e-6)

    def test_f1x4_frequencies(self):
        freqs = codon_frequencies_f1x4([0.4, 0.2, 0.2, 0.2])
        assert freqs.shape == (61,)
        assert freqs.sum() == pytest.approx(1.0)
        codons = sense_codons()
        # AAA should be the most frequent codon given π_A dominant.
        assert codons[int(np.argmax(freqs))] == "AAA"

    def test_f1x4_validation(self):
        with pytest.raises(ValueError):
            codon_frequencies_f1x4([0.5, 0.5])
        with pytest.raises(ValueError):
            codon_frequencies_f1x4([1.0, 0.0, 0.0, 0.0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GY94(0.0, 1.0)
        with pytest.raises(ValueError):
            GY94(1.0, -0.5)
