"""Unit tests for nucleotide models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import F81, GTR, HKY85, JC69, K80, TN93, random_gtr


ALL_MODELS = [
    JC69(),
    K80(2.5),
    F81([0.4, 0.3, 0.2, 0.1]),
    HKY85(3.0, [0.35, 0.15, 0.2, 0.3]),
    TN93(4.0, 2.0, [0.25, 0.25, 0.3, 0.2]),
    GTR([1.2, 2.3, 0.8, 1.1, 3.0, 1.0], [0.3, 0.2, 0.2, 0.3]),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
class TestCommonInvariants:
    def test_reversible(self, model):
        assert model.is_reversible()

    def test_q_rows_sum_to_zero(self, model):
        assert np.allclose(model.rate_matrix.sum(axis=1), 0.0, atol=1e-12)

    def test_normalised_rate(self, model):
        assert model.expected_rate() == pytest.approx(1.0)

    def test_frequencies_sum_to_one(self, model):
        assert model.frequencies.sum() == pytest.approx(1.0)

    def test_stationarity(self, model):
        # πᵀ Q = 0: the frequencies are the stationary distribution.
        assert np.allclose(model.frequencies @ model.rate_matrix, 0.0, atol=1e-12)


class TestSpecifics:
    def test_jc_equal_offdiagonals(self):
        Q = JC69().rate_matrix
        off = Q[~np.eye(4, dtype=bool)]
        assert np.allclose(off, off[0])

    def test_k80_transition_bias(self):
        Q = K80(5.0).rate_matrix
        # A->G (transition) vs A->C (transversion)
        assert Q[0, 2] / Q[0, 1] == pytest.approx(5.0)

    def test_hky_reduces_to_k80(self):
        assert np.allclose(HKY85(2.0).rate_matrix, K80(2.0).rate_matrix)

    def test_hky_reduces_to_jc(self):
        assert np.allclose(HKY85(1.0).rate_matrix, JC69().rate_matrix)

    def test_tn93_reduces_to_hky(self):
        f = [0.3, 0.2, 0.2, 0.3]
        assert np.allclose(TN93(2.0, 2.0, f).rate_matrix, HKY85(2.0, f).rate_matrix)

    def test_gtr_rate_order(self):
        # Make a single exchangeability dominant and check its position.
        m = GTR([1, 1, 1, 1, 50, 1])  # CT huge
        Q = m.rate_matrix
        off = {(i, j): Q[i, j] for i in range(4) for j in range(4) if i != j}
        assert max(off, key=off.get) in [(1, 3), (3, 1)]  # C<->T

    def test_frequency_effect(self):
        m = F81([0.7, 0.1, 0.1, 0.1])
        # Rates into A dominate since q_ij ∝ π_j.
        Q = m.rate_matrix
        assert Q[1, 0] > Q[1, 2]


class TestValidation:
    def test_bad_kappa(self):
        with pytest.raises(ValueError):
            K80(0.0)
        with pytest.raises(ValueError):
            HKY85(-1.0)
        with pytest.raises(ValueError):
            TN93(1.0, 0.0)

    def test_bad_rates(self):
        with pytest.raises(ValueError):
            GTR([1, 2, 3])
        with pytest.raises(ValueError):
            GTR([1, 1, 1, 1, 1, 0])

    def test_bad_frequencies(self):
        with pytest.raises(ValueError):
            HKY85(2.0, [0.5, 0.5])
        with pytest.raises(ValueError):
            HKY85(2.0, [0.5, 0.5, 0.0, 0.0])


class TestRandomGTR:
    def test_valid_model(self):
        m = random_gtr(np.random.default_rng(0))
        assert m.is_reversible()
        assert m.expected_rate() == pytest.approx(1.0)

    def test_varies_with_rng(self):
        a = random_gtr(np.random.default_rng(1))
        b = random_gtr(np.random.default_rng(2))
        assert not np.allclose(a.rate_matrix, b.rate_matrix)
