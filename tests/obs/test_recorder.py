"""Recorder facade, global install/restore, and stack integration."""

from __future__ import annotations

import json

from repro.data import simulate_alignment
from repro.exec.pool import PoolStats
from repro.inference import TreeLikelihood
from repro.models import JC69
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    record_pool_stats,
    record_serve_stats,
    recording,
    set_recorder,
    validate_metrics,
    validate_trace,
)
from repro.obs.profile import PHASE_MODELLED
from repro.obs.tracing import NULL_SPAN
from repro.trees import pectinate_tree


def test_default_global_recorder_is_the_null_singleton():
    assert get_recorder() is NULL_RECORDER
    assert not get_recorder().enabled


def test_set_recorder_returns_previous_and_none_restores_null():
    active = Recorder()
    previous = set_recorder(active)
    try:
        assert previous is NULL_RECORDER
        assert get_recorder() is active
    finally:
        assert set_recorder(None) is active
    assert get_recorder() is NULL_RECORDER


def test_recording_context_restores_on_exception():
    try:
        with recording() as obs:
            assert get_recorder() is obs
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert get_recorder() is NULL_RECORDER


def test_recorder_facade_delegates_to_components():
    recorder = Recorder()
    with recorder.span("work", category="test", k=1):
        recorder.count("repro_plans_built_total", 2)
        recorder.gauge_set("depth", 7)
        recorder.observe("repro_sets_per_plan", 3)
        recorder.add_phase_seconds(PHASE_MODELLED, 1.5, calls=4)
    (record,) = recorder.tracer.records()
    assert record.name == "work"
    assert recorder.metrics.counter("repro_plans_built_total").value == 2
    assert recorder.metrics.gauge("depth").value == 7
    assert recorder.metrics.histogram("repro_sets_per_plan").count == 1
    (phase,) = recorder.profiler.stats()
    assert (phase.name, phase.seconds, phase.calls) == (PHASE_MODELLED, 1.5, 4)


def test_null_recorder_hooks_are_shared_noops():
    null = NullRecorder()
    assert null.span("x", category="y", huge_kwargs=1) is NULL_SPAN
    null.count("anything")
    null.observe("anything", 1)
    null.gauge_set("anything", 1)
    null.add_phase_seconds("anything", 1.0)
    assert null.tracer.records() == []
    assert null.metrics.to_prometheus() == ""


def test_standard_metrics_predeclared_with_help_text():
    recorder = Recorder()
    text = recorder.metrics.to_prometheus()
    for name in (
        "repro_operations_evaluated_total",
        "repro_kernel_launches_total",
        "repro_sets_per_plan",
        "repro_pool_jobs_completed_total",
        "repro_mcmc_steps_total",
    ):
        assert f"# HELP {name} " in text
        assert f"# TYPE {name} " in text


def test_likelihood_evaluation_traces_all_layers(tmp_path):
    tree = pectinate_tree(12, branch_length=0.1)
    model = JC69()
    alignment = simulate_alignment(tree, model, 32, seed=3)
    with recording() as obs:
        evaluator = TreeLikelihood(
            tree, model, alignment, mode="concurrent", reroot="fast"
        )
        value = evaluator.log_likelihood()
    # Same computation, no recorder: values are identical.
    silent = TreeLikelihood(
        tree, model, alignment, mode="concurrent", reroot="fast"
    )
    assert silent.log_likelihood() == value

    categories = obs.tracer.categories()
    for expected in ("kernel", "plan", "reroot"):
        assert expected in categories
    assert obs.metrics.counter("repro_kernel_launches_total").value > 0
    assert obs.metrics.counter("repro_operations_evaluated_total").value > 0
    assert obs.metrics.counter("repro_reroot_searches_total").value == 1
    assert obs.profiler.total_seconds() > 0

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    obs.tracer.write(trace_path)
    obs.metrics.write_json(metrics_path)
    assert validate_trace(json.loads(trace_path.read_text())) == []
    assert validate_metrics(json.loads(metrics_path.read_text())) == []


def test_schedule_validation_counts_runs_and_violations():
    from repro.beagle.operations import Operation, validate_operation_order

    good = [
        Operation(destination=5, child1=0, child1_matrix=0,
                  child2=1, child2_matrix=1),
        Operation(destination=6, child1=5, child1_matrix=2,
                  child2=2, child2_matrix=3),
    ]
    with recording() as obs:
        validate_operation_order(good)
        try:
            validate_operation_order(list(reversed(good)))
        except ValueError:
            pass
        else:  # pragma: no cover - the reversed order must not validate
            raise AssertionError("expected a cross-set dependency error")
    assert obs.metrics.counter("repro_schedule_validations_total").value == 2
    assert obs.metrics.counter("repro_schedule_violations_total").value == 1


def test_record_pool_stats_exports_gauges_and_imbalances():
    recorder = Recorder()
    stats = PoolStats(workers=2, offered=5, completed=4, shed=1)
    stats.faults.errors = 0
    record_pool_stats(stats, registry=recorder.metrics)
    assert recorder.metrics.gauge("repro_pool_offered").value == 5
    assert recorder.metrics.gauge("repro_pool_completed").value == 4
    assert recorder.metrics.gauge("repro_pool_ledger_imbalances").value == 0

    broken = PoolStats(workers=2, offered=5, completed=3)  # 2 jobs lost
    record_pool_stats(broken, registry=recorder.metrics)
    assert recorder.metrics.gauge("repro_pool_ledger_imbalances").value == 1


def test_record_pool_stats_defaults_to_global_recorder():
    with recording() as obs:
        record_pool_stats(PoolStats(workers=1))
    assert obs.metrics.gauge("repro_pool_workers").value == 1


def test_record_serve_stats_exports_gauges_and_labeled_breakdowns():
    from repro.serve import SHED_EXPIRED, ServeLedger

    ledger = ServeLedger()
    for _ in range(3):
        ledger.record_offered("a")
        ledger.record_admitted("a")
    ledger.record_offered("b")
    ledger.record_rejected("b", "queue-full")
    ledger.record_dispatched("a")
    ledger.record_served("a")
    ledger.record_dispatched("a")
    ledger.record_served("a", late=True)
    ledger.record_shed("a", SHED_EXPIRED)

    recorder = Recorder()
    record_serve_stats(ledger, registry=recorder.metrics)
    assert recorder.metrics.gauge("repro_serve_offered").value == 4
    assert recorder.metrics.gauge("repro_serve_served").value == 2
    assert recorder.metrics.gauge("repro_serve_late").value == 1
    assert recorder.metrics.gauge("repro_serve_tenants").value == 2
    assert (
        recorder.metrics.gauge(
            "repro_serve_rejected_by_reason", labels={"reason": "queue-full"}
        ).value
        == 1
    )
    assert (
        recorder.metrics.gauge(
            "repro_serve_shed_by_cause", labels={"cause": SHED_EXPIRED}
        ).value
        == 1
    )
    # The ledger above closes: every identity holds.
    assert recorder.metrics.gauge("repro_serve_ledger_imbalances").value == 0


def test_record_serve_stats_flags_an_unbalanced_ledger():
    from repro.serve import ServeLedger

    broken = ServeLedger()
    broken.record_offered("a")
    broken.record_admitted("a")
    broken.queued = 0  # lose the request: admitted != served+shed+failed+...
    recorder = Recorder()
    record_serve_stats(broken, registry=recorder.metrics)
    assert recorder.metrics.gauge("repro_serve_ledger_imbalances").value >= 1


def test_pool_stats_explain_names_each_identity():
    balanced = PoolStats(offered=3, completed=2, shed=1)
    lines = balanced.explain().splitlines()
    assert len(lines) == 3
    assert all(line.startswith("[ok]") for line in lines)

    broken = PoolStats(offered=3, completed=1)
    lines = broken.explain().splitlines()
    assert lines[0].startswith("[VIOLATED]")
    assert "offered == completed + shed + surfaced" in lines[0]
    assert "(3 vs 1)" in lines[0]
    assert "terminal outcome" in lines[0]
    # explain() and imbalances() must agree on what is violated.
    assert len([l for l in lines if "VIOLATED" in l]) == len(broken.imbalances())
