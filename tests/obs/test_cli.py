"""End-to-end CLI coverage: synthetictest --trace/--metrics/--profile and
the ``python -m repro.obs`` artifact validator."""

from __future__ import annotations

import io
import json

from repro.bench.synthetictest import run as run_synthetictest
from repro.obs import get_recorder, NULL_RECORDER, validate_metrics, validate_trace
from repro.obs.__main__ import run as run_validator


def synthetictest(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = run_synthetictest(list(argv), out=out)
    return code, out.getvalue()


def validator(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = run_validator(list(argv), out=out)
    return code, out.getvalue()


BASE = ("--taxa", "12", "--sites", "32", "--reps", "2", "--seed", "1")


def test_trace_flag_writes_valid_trace_with_many_subsystems(tmp_path):
    trace_path = tmp_path / "trace.json"
    code, text = synthetictest(
        *BASE, "--randomtree", "--reroot", "--trace", str(trace_path)
    )
    assert code == 0
    assert "trace:" in text
    document = json.loads(trace_path.read_text())
    assert validate_trace(document) == []
    categories = {
        e.get("cat") for e in document["traceEvents"] if e.get("ph") == "X"
    }
    assert {"bench", "plan", "kernel", "reroot"} <= categories


def test_metrics_flag_json_and_prometheus(tmp_path):
    json_path = tmp_path / "metrics.json"
    code, _ = synthetictest(*BASE, "--metrics", str(json_path))
    assert code == 0
    document = json.loads(json_path.read_text())
    assert validate_metrics(document) == []
    names = {entry["name"] for entry in document["metrics"]}
    assert "repro_kernel_launches_total" in names

    prom_path = tmp_path / "metrics.prom"
    code, _ = synthetictest(*BASE, "--metrics", str(prom_path))
    assert code == 0
    text = prom_path.read_text()
    assert "# TYPE repro_kernel_launches_total counter" in text
    assert "repro_operations_evaluated_total " in text


def test_profile_flag_prints_phase_table():
    code, text = synthetictest(*BASE, "--profile")
    assert code == 0
    assert "profile: phase" in text
    assert "partials" in text


def test_obs_flags_leave_global_recorder_restored(tmp_path):
    code, _ = synthetictest(*BASE, "--trace", str(tmp_path / "t.json"))
    assert code == 0
    assert get_recorder() is NULL_RECORDER


def test_pool_run_with_metrics_exports_ledger_gauges(tmp_path):
    json_path = tmp_path / "metrics.json"
    code, text = synthetictest(
        "--taxa", "12", "--sites", "32", "--reps", "4", "--seed", "1",
        "--pool", "2", "--pool-inline", "--full-timing",
        "--metrics", str(json_path),
    )
    assert code == 0
    assert "[ok] offered == completed + shed + surfaced" in text
    names = {
        entry["name"]: entry
        for entry in json.loads(json_path.read_text())["metrics"]
    }
    assert names["repro_pool_offered"]["value"] == 4
    assert names["repro_pool_ledger_imbalances"]["value"] == 0


def test_unwritable_trace_path_is_a_clean_error(tmp_path):
    code, text = synthetictest(
        *BASE, "--trace", str(tmp_path / "no-such-dir" / "t.json")
    )
    assert code == 2
    assert "error:" in text
    assert "Traceback" not in text


def test_validator_accepts_good_artifacts(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    code, _ = synthetictest(
        *BASE, "--randomtree", "--reroot",
        "--trace", str(trace_path), "--metrics", str(metrics_path),
    )
    assert code == 0
    code, text = validator(
        "--trace", str(trace_path),
        "--metrics", str(metrics_path),
        "--require-categories", "bench,plan,kernel,reroot",
    )
    assert code == 0, text
    assert "valid trace" in text and "valid metrics" in text


def test_validator_rejects_bad_trace(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nope": []}))
    code, text = validator("--trace", str(bad))
    assert code == 1
    assert "traceEvents" in text


def test_validator_flags_missing_categories(tmp_path):
    trace_path = tmp_path / "trace.json"
    code, _ = synthetictest(*BASE, "--trace", str(trace_path))
    assert code == 0
    code, text = validator(
        "--trace", str(trace_path), "--require-categories", "pool,mcmc"
    )
    assert code == 1
    assert "pool" in text and "mcmc" in text


def test_validator_requires_something_to_validate():
    code, _ = validator()
    assert code == 2
