"""Span lifecycle, trace export and the trace_event schema validator."""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.tracing import (
    NULL_SPAN,
    NullTracer,
    Tracer,
    validate_trace,
)


class FakeClock:
    """Deterministic monotonic clock advancing a fixed step per read."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_span_records_name_category_and_attributes():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("kernel.batch", category="kernel", operations=7) as span:
        span.set_attribute("outcome", "ok")
    (record,) = tracer.records()
    assert record.name == "kernel.batch"
    assert record.category == "kernel"
    assert record.attributes == {"operations": 7, "outcome": "ok"}
    assert record.duration_us > 0
    assert tracer.open_spans == 0


def test_nested_spans_get_increasing_depth_and_containment():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    by_name = {r.name: r for r in tracer.records()}
    assert by_name["outer"].depth == 0
    assert by_name["middle"].depth == 1
    assert by_name["inner"].depth == 2
    # Children lie fully inside their parents on the timeline.
    for child, parent in (("inner", "middle"), ("middle", "outer")):
        c, p = by_name[child], by_name[parent]
        assert c.start_us >= p.start_us
        assert c.start_us + c.duration_us <= p.start_us + p.duration_us


def test_span_lifecycle_misuse_raises():
    tracer = Tracer()
    span = tracer.span("once")
    span.start()
    with pytest.raises(RuntimeError):
        span.start()
    span.finish()
    with pytest.raises(RuntimeError):
        span.finish()
    with pytest.raises(RuntimeError):
        tracer.span("never-started").finish()


def test_exception_inside_span_is_tagged_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (record,) = tracer.records()
    assert record.attributes["error"] == "ValueError"


def test_export_is_valid_and_json_serialisable(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer", category="plan", mode="concurrent"):
        with tracer.span("inner", category="kernel", weird=object()):
            pass
    path = tmp_path / "trace.json"
    tracer.write(path)
    document = json.loads(path.read_text())
    assert validate_trace(document) == []
    names = [e["name"] for e in document["traceEvents"]]
    assert "process_name" in names  # metadata events present
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    # Non-JSON attribute values are coerced to strings.
    inner = next(e for e in complete if e["name"] == "inner")
    assert isinstance(inner["args"]["weird"], str)


def test_categories_and_reset():
    tracer = Tracer()
    with tracer.span("a", category="kernel"):
        pass
    with tracer.span("b", category="plan"):
        pass
    assert tracer.categories() == ["kernel", "plan"]
    tracer.reset()
    assert tracer.records() == []


def test_null_tracer_is_allocation_free_and_exports_empty(tmp_path):
    tracer = NullTracer()
    assert tracer.span("anything", category="x", k=1) is NULL_SPAN
    with tracer.span("nested"):
        with tracer.span("deeper") as span:
            span.set_attribute("ignored", 1)
    assert tracer.records() == []
    assert tracer.open_spans == 0
    path = tmp_path / "empty.json"
    tracer.write(path)
    assert validate_trace(json.loads(path.read_text())) == []


@pytest.mark.parametrize(
    "document, fragment",
    [
        ([], "top level"),
        ({"events": []}, "top level"),
        ({"traceEvents": {}}, "must be an array"),
        ({"traceEvents": ["x"]}, "not an object"),
        ({"traceEvents": [{"ph": "X"}]}, "missing string 'name'"),
        ({"traceEvents": [{"name": "a"}]}, "missing string 'ph'"),
        (
            {"traceEvents": [{"name": "a", "ph": "X", "ts": -1, "dur": 1,
                              "pid": 1, "tid": 1}]},
            "non-negative",
        ),
        (
            {"traceEvents": [{"name": "a", "ph": "X", "ts": float("nan"),
                              "dur": 1, "pid": 1, "tid": 1}]},
            "non-negative",
        ),
        (
            {"traceEvents": [{"name": "a", "ph": "X", "ts": 0, "dur": 1,
                              "pid": "p", "tid": 1}]},
            "integer",
        ),
        (
            {"traceEvents": [{"name": "a", "ph": "X", "ts": 0, "dur": 1,
                              "pid": 1, "tid": 1, "args": []}]},
            "'args' must be an object",
        ),
    ],
)
def test_validate_trace_rejects_malformed_documents(document, fragment):
    problems = validate_trace(document)
    assert problems and any(fragment in p for p in problems)


def test_validate_trace_flags_partial_overlap_on_one_thread():
    # [0, 10] and [5, 15] on the same tid partially overlap: not a
    # well-formed timeline of nested spans.
    document = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
        ]
    }
    problems = validate_trace(document)
    assert problems and "overlaps" in problems[0]
    # The same two spans on different threads are fine.
    document["traceEvents"][1]["tid"] = 2
    assert validate_trace(document) == []


# ----------------------------------------------------------------------
# Property: any nesting executed on any number of threads exports a
# well-formed trace (balanced, contained, schema-valid).
# ----------------------------------------------------------------------
@given(
    shapes=st.lists(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=8),
        min_size=1,
        max_size=4,
    )
)
def test_threaded_span_sequences_export_well_formed_traces(shapes):
    tracer = Tracer()

    def run(thread_index: int, chains) -> None:
        for chain_index, depth in enumerate(chains):
            spans = [
                tracer.span(
                    f"t{thread_index}.c{chain_index}.d{level}",
                    category=f"cat{thread_index}",
                )
                for level in range(depth)
            ]
            for span in spans:
                span.start()
            for span in reversed(spans):
                span.finish()

    threads = [
        threading.Thread(target=run, args=(i, chains))
        for i, chains in enumerate(shapes)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert tracer.open_spans == 0
    assert len(tracer.records()) == sum(sum(c) for c in shapes)
    document = json.loads(json.dumps(tracer.export()))
    assert validate_trace(document) == []
