"""Counters, gauges, histogram bucket edges, and the Prometheus export."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    MetricsRegistry,
    escape_help,
    escape_label_value,
    validate_metrics,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    counter = MetricsRegistry().counter("events_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("queue_depth")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(12)
    assert gauge.value == 3.0


def test_registry_returns_same_instrument_and_enforces_type():
    registry = MetricsRegistry()
    a = registry.counter("x_total")
    b = registry.counter("x_total")
    assert a is b
    with pytest.raises(TypeError):
        registry.gauge("x_total")
    with pytest.raises(ValueError):
        registry.counter("0-bad-name")
    with pytest.raises(ValueError):
        registry.counter("ok_total", labels={"0bad": "v"})


def test_labelled_instruments_are_distinct_series():
    registry = MetricsRegistry()
    a = registry.counter("jobs_total", labels={"worker": "0"})
    b = registry.counter("jobs_total", labels={"worker": "1"})
    assert a is not b
    a.inc(3)
    text = registry.to_prometheus()
    assert 'jobs_total{worker="0"} 3' in text
    assert 'jobs_total{worker="1"} 0' in text


# ----------------------------------------------------------------------
# Histogram bucket edges
# ----------------------------------------------------------------------
def test_histogram_boundary_values_are_inclusive():
    hist = MetricsRegistry().histogram("sizes", buckets=[1, 2, 4])
    for value in (1, 2, 4):  # each exactly on a bound -> its own bucket
        hist.observe(value)
    assert hist.cumulative_counts() == [
        (1.0, 1),
        (2.0, 2),
        (4.0, 3),
        (math.inf, 3),
    ]


def test_histogram_overflow_lands_only_in_inf_bucket():
    hist = MetricsRegistry().histogram("sizes", buckets=[1, 2])
    hist.observe(100)
    assert hist.cumulative_counts() == [(1.0, 0), (2.0, 0), (math.inf, 1)]
    assert hist.count == 1
    assert hist.sum == 100.0


def test_histogram_observation_counts_exactly_once():
    hist = MetricsRegistry().histogram("sizes", buckets=[1, 2, 4, 8])
    hist.observe(3)
    # Cumulative counts: nothing <= 2, one <= 4, one <= 8, one total.
    assert hist.cumulative_counts() == [
        (1.0, 0),
        (2.0, 0),
        (4.0, 1),
        (8.0, 1),
        (math.inf, 1),
    ]


def test_histogram_negative_and_zero_values():
    hist = MetricsRegistry().histogram("deltas", buckets=[0, 10])
    hist.observe(-5)
    hist.observe(0)
    assert hist.cumulative_counts() == [(0.0, 2), (10.0, 2), (math.inf, 2)]
    assert hist.sum == -5.0


def test_histogram_rejects_bad_bucket_specs():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("a", buckets=[])
    with pytest.raises(ValueError):
        registry.histogram("b", buckets=[2, 1])
    with pytest.raises(ValueError):
        registry.histogram("c", buckets=[1, 1])
    with pytest.raises(ValueError):
        registry.histogram("d", buckets=[1, math.inf])


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        max_size=50,
    )
)
def test_histogram_cumulative_counts_are_monotone_and_total(values):
    hist = MetricsRegistry().histogram("h", buckets=[0.1, 1, 10, 100])
    for value in values:
        hist.observe(value)
    cumulative = hist.cumulative_counts()
    counts = [count for _, count in cumulative]
    assert counts == sorted(counts)
    assert cumulative[-1] == (math.inf, len(values))
    assert hist.count == len(values)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_export_shape():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "Jobs processed").inc(5)
    registry.gauge("depth", "Queue depth").set(2.5)
    registry.histogram("sizes", "Set sizes", buckets=[1, 2]).observe(2)
    text = registry.to_prometheus()
    assert "# HELP jobs_total Jobs processed" in text
    assert "# TYPE jobs_total counter" in text
    assert "jobs_total 5" in text  # integer: no trailing .0
    assert "depth 2.5" in text
    assert "# TYPE sizes histogram" in text
    assert 'sizes_bucket{le="1"} 0' in text
    assert 'sizes_bucket{le="2"} 1' in text
    assert 'sizes_bucket{le="+Inf"} 1' in text
    assert "sizes_sum 2" in text
    assert "sizes_count 1" in text
    assert text.endswith("\n")


def test_prometheus_escaping_of_help_and_label_values():
    assert escape_help("a\\b\nc") == "a\\\\b\\nc"
    assert escape_label_value('say "hi"\n\\') == 'say \\"hi\\"\\n\\\\'
    registry = MetricsRegistry()
    registry.counter(
        "weird_total",
        'help with "quotes"\nand newline \\ backslash',
        labels={"path": 'C:\\tmp\n"x"'},
    ).inc()
    text = registry.to_prometheus()
    help_line = next(l for l in text.splitlines() if l.startswith("# HELP"))
    # Newlines and backslashes must be escaped; quotes are legal in HELP.
    assert "\n" not in help_line
    assert "\\\\" in help_line and "\\n" in help_line
    sample = next(l for l in text.splitlines() if l.startswith("weird_total{"))
    assert '\\"x\\"' in sample and "\\n" in sample and "C:\\\\tmp" in sample


def test_empty_registry_exports_empty_text():
    assert MetricsRegistry().to_prometheus() == ""


# ----------------------------------------------------------------------
# JSON export + validator
# ----------------------------------------------------------------------
def test_json_export_round_trips_and_validates(tmp_path):
    registry = MetricsRegistry()
    registry.counter("jobs_total").inc(4)
    registry.gauge("depth").set(-1)
    registry.histogram("sizes", buckets=[1, 2]).observe(1.5)
    path = tmp_path / "metrics.json"
    registry.write_json(path)
    document = json.loads(path.read_text())
    assert validate_metrics(document) == []
    by_name = {entry["name"]: entry for entry in document["metrics"]}
    assert by_name["jobs_total"]["value"] == 4
    assert by_name["sizes"]["buckets"][-1] == {"le": "+Inf", "count": 1}


@pytest.mark.parametrize(
    "document, fragment",
    [
        ([], "top level"),
        ({"metrics": 3}, "must be an array"),
        ({"metrics": ["x"]}, "not an object"),
        ({"metrics": [{"name": "1bad", "type": "counter", "labels": {},
                       "value": 1}]}, "invalid name"),
        ({"metrics": [{"name": "a", "type": "summary", "labels": {},
                       "value": 1}]}, "unknown type"),
        ({"metrics": [{"name": "a", "type": "counter", "labels": {},
                       "value": True}]}, "must be a number"),
        ({"metrics": [{"name": "a", "type": "histogram", "labels": {},
                       "count": 1, "sum": 1.0, "buckets": []}]},
         "non-empty 'buckets'"),
        ({"metrics": [{"name": "a", "type": "histogram", "labels": {},
                       "count": 1, "sum": 1.0,
                       "buckets": [{"le": 1, "count": 2},
                                   {"le": "+Inf", "count": 1}]}]},
         "non-decreasing"),
        ({"metrics": [{"name": "a", "type": "histogram", "labels": {},
                       "count": 2, "sum": 1.0,
                       "buckets": [{"le": 1, "count": 1},
                                   {"le": "+Inf", "count": 1}]}]},
         "'+Inf' bucket must equal"),
        ({"metrics": [{"name": "a", "type": "histogram", "labels": {},
                       "count": 1, "sum": 1.0,
                       "buckets": [{"le": 1, "count": 1}]}]},
         "last bucket"),
    ],
)
def test_validate_metrics_rejects_malformed_documents(document, fragment):
    problems = validate_metrics(document)
    assert problems and any(fragment in p for p in problems)
