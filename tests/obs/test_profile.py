"""Per-phase timer accumulation and reporting."""

from __future__ import annotations

from repro.obs.profile import (
    PHASE_MODELLED,
    PHASE_PARTIALS,
    NullProfiler,
    PhaseProfiler,
)


class FakeClock:
    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_phase_timer_accumulates_calls_and_seconds():
    profiler = PhaseProfiler(clock=FakeClock(step=0.5))
    with profiler.phase(PHASE_PARTIALS):
        pass
    with profiler.phase(PHASE_PARTIALS):
        pass
    (stats,) = profiler.stats()
    assert stats.name == PHASE_PARTIALS
    assert stats.calls == 2
    assert stats.seconds == 1.0  # two intervals of one clock step each
    assert stats.mean_seconds == 0.5


def test_add_credits_modelled_time_without_a_clock():
    profiler = PhaseProfiler()
    profiler.add(PHASE_MODELLED, 2.0, calls=10)
    profiler.add(PHASE_MODELLED, 1.0, calls=5)
    (stats,) = profiler.stats()
    assert stats.seconds == 3.0
    assert stats.calls == 15
    assert profiler.total_seconds() == 3.0


def test_stats_sorted_slowest_first_and_reset():
    profiler = PhaseProfiler()
    profiler.add("fast", 0.1)
    profiler.add("slow", 9.0)
    assert [s.name for s in profiler.stats()] == ["slow", "fast"]
    report = profiler.report()
    assert "slow" in report and "%" in report
    profiler.reset()
    assert profiler.stats() == []
    assert profiler.report() == "profile: no phases recorded"


def test_stats_are_snapshots():
    profiler = PhaseProfiler()
    profiler.add("p", 1.0)
    snapshot = profiler.stats()[0]
    profiler.add("p", 1.0)
    assert snapshot.seconds == 1.0  # older snapshot untouched
    assert profiler.stats()[0].seconds == 2.0


def test_null_profiler_records_nothing():
    profiler = NullProfiler()
    with profiler.phase("anything"):
        pass
    profiler.add("anything", 5.0)
    assert profiler.stats() == []
    assert profiler.total_seconds() == 0.0
    assert "no phases" in profiler.report()
