"""Unit tests for deadlines, circuit breakers and the sentinel probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DeadlineGuard,
    FaultInjector,
    FaultSpec,
    ResilientInstance,
    RetryPolicy,
    Sentinel,
)
from repro.exec.faults import BiasInjector
from repro.exec.health import CLOSED, EVICTED, HALF_OPEN, OPEN
from repro.models import JC69
from repro.trees import balanced_tree


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def small_case(n_tips=8, n_patterns=16, seed=3):
    tree = balanced_tree(n_tips)
    patterns = random_patterns(
        tree.tip_names(), n_patterns, rng=np.random.default_rng(seed)
    )
    instance = create_instance(tree, JC69(), patterns)
    return instance, make_plan(tree, "concurrent")


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_unbounded_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        deadline.check()  # no raise

    def test_expiry_and_typed_error(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(0.4)
        assert not deadline.expired
        deadline.check()
        clock.advance(0.2)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("job")
        assert info.value.budget_s == pytest.approx(0.5)
        assert info.value.elapsed_s == pytest.approx(0.6)
        assert not info.value.retryable

    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.25)
        assert deadline.remaining == pytest.approx(0.75)


class TestDeadlineGuard:
    def test_guard_raises_at_launch_boundary(self):
        clock = FakeClock()
        instance, plan = small_case()
        guard = DeadlineGuard(instance, Deadline(1.0, clock=clock))
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            execute_plan(guard, plan)

    def test_guard_transparent_within_budget(self):
        instance, plan = small_case()
        reference = execute_plan(instance, plan)
        instance2, _ = small_case()
        guard = DeadlineGuard(instance2, Deadline(60.0))
        assert execute_plan(guard, plan) == reference

    def test_deadline_punches_through_retries(self):
        # Inside a resilient facade, an expired budget must not be
        # retried away: DeadlineExceeded is non-retryable.
        clock = FakeClock()
        instance, plan = small_case()
        guard = DeadlineGuard(instance, Deadline(1.0, clock=clock))
        resilient = ResilientInstance(guard, RetryPolicy())
        clock.advance(5.0)
        with pytest.raises(DeadlineExceeded):
            resilient.execute(plan)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.available()
        assert breaker.times_opened == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_promotes_to_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=0.5, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.cooldown_remaining() == pytest.approx(0.5)
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN
        assert breaker.wants_probe()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=0.1, clock=clock
        )
        breaker.record_failure()
        clock.advance(0.2)
        assert breaker.wants_probe()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.available()

    def test_half_open_probe_failure_evicts_permanently(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=0.1, clock=clock
        )
        breaker.record_failure()
        clock.advance(0.2)
        breaker.record_failure()  # the one half-open probe fails
        assert breaker.state == EVICTED
        assert breaker.evicted
        # Terminal: nothing reopens an evicted breaker.
        breaker.record_success()
        assert breaker.state == EVICTED
        clock.advance(100.0)
        assert not breaker.available()

    def test_direct_eviction(self):
        breaker = CircuitBreaker()
        breaker.evict()
        assert breaker.evicted


class TestBreakerTransitions:
    def test_transitions_record_every_edge_in_order(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=0.1, clock=clock
        )
        breaker.record_failure()          # closed -> open
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN  # open -> half-open (lazy)
        breaker.record_success()          # half-open -> closed
        breaker.record_failure()          # closed -> open
        clock.advance(0.2)
        breaker.record_failure()          # probe fails: half-open -> evicted
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, EVICTED),
        ]

    def test_same_state_is_not_a_transition(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_success()
        breaker.record_failure()
        assert breaker.transitions == []

    def test_transitions_export_as_labeled_counter(self):
        from repro.obs import recording

        clock = FakeClock()
        with recording() as obs:
            breaker = CircuitBreaker(
                failure_threshold=1, cooldown_s=0.1, clock=clock
            )
            breaker.record_failure()
            clock.advance(0.2)
            breaker.record_failure()  # half-open probe fails -> evicted
        edges = {
            tuple(dict(c.labels)[k] for k in ("from", "to")): c.value
            for c in obs.metrics.instruments()
            if c.name == "repro_breaker_transitions_total"
        }
        assert edges == {
            (CLOSED, OPEN): 1,
            (OPEN, HALF_OPEN): 1,
            (HALF_OPEN, EVICTED): 1,
        }

    def test_no_export_without_recorder(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()  # must not raise with the null recorder
        assert breaker.transitions == [(CLOSED, OPEN)]


class TestSentinel:
    def test_expected_matches_reference_oracle(self):
        sentinel = Sentinel()
        instance, plan = sentinel.make_case()
        assert sentinel.passes(execute_plan(instance, plan))

    def test_wrong_value_fails(self):
        sentinel = Sentinel()
        assert not sentinel.passes(sentinel.expected * 1.05)
        assert not sentinel.passes(float("nan"))
        assert not sentinel.passes(float("-inf"))

    def test_catches_silent_corruption(self):
        sentinel = Sentinel()
        instance, plan = sentinel.make_case()
        value = execute_plan(BiasInjector(instance, 1.05), plan)
        assert not sentinel.passes(value)

    def test_recoverable_faults_do_not_move_the_value(self):
        sentinel = Sentinel()
        instance, plan = sentinel.make_case()
        stack = ResilientInstance(
            FaultInjector(instance, FaultSpec(rate=0.4, seed=9)),
            RetryPolicy(),
        )
        assert sentinel.passes(stack.execute(plan))
