"""Unit tests for the deterministic fault-injection layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import (
    AllocationError,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    KernelLaunchError,
    TransientDeviceError,
)
from repro.exec.faults import RAISED_BEFORE_EXECUTION, underflow_poison_factor
from repro.models import JC69
from repro.trees import balanced_tree


def make_case(n_tips=16, n_patterns=32, seed=1, dtype=np.float64):
    tree = balanced_tree(n_tips)
    patterns = random_patterns(
        tree.tip_names(), n_patterns, rng=np.random.default_rng(seed)
    )
    model = JC69()
    instance = create_instance(tree, model, patterns, dtype=dtype)
    plan = make_plan(tree, "concurrent")
    return instance, plan


class TestFaultSpec:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(rate=1.1)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=0.1, classes=("launch", "meltdown"))

    def test_positive_rate_needs_classes(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=0.1, classes=())
        FaultSpec(rate=0.0, classes=())  # fine when never firing

    def test_negative_max_faults_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=0.1, max_faults=-1)


class TestFaultSchedule:
    def test_deterministic_replay(self):
        spec = FaultSpec(rate=0.4, seed=99)
        a = FaultSchedule(spec)
        b = FaultSchedule(spec)
        draws_a = [a.draw(batched=i % 3 != 0) for i in range(300)]
        draws_b = [b.draw(batched=i % 3 != 0) for i in range(300)]
        assert draws_a == draws_b
        assert a.injected == b.injected > 0

    def test_stream_independent_of_batched_flag(self):
        # The decision for attempt i must not depend on the batched flag
        # of earlier attempts: same seed, different batching histories,
        # identical hit pattern (modulo batched_only suppression).
        spec = FaultSpec(rate=0.5, seed=7)
        all_batched = [FaultSchedule(spec).draw(batched=True) for _ in range(1)]
        a = FaultSchedule(spec)
        b = FaultSchedule(spec)
        a.draw(batched=True)
        b.draw(batched=False)
        assert a.draw(batched=True) == b.draw(batched=True)
        assert all_batched  # silence unused warning

    def test_batched_only_suppresses_serial_attempts(self):
        spec = FaultSpec(rate=1.0, seed=1, batched_only=True)
        schedule = FaultSchedule(spec)
        assert all(schedule.draw(batched=False) is None for _ in range(50))
        assert schedule.injected == 0
        assert schedule.draw(batched=True) is not None

    def test_max_faults_budget(self):
        spec = FaultSpec(rate=1.0, seed=1, max_faults=3)
        schedule = FaultSchedule(spec)
        draws = [schedule.draw() for _ in range(10)]
        assert sum(d is not None for d in draws) == 3
        assert all(d is None for d in draws[3:])

    def test_zero_rate_never_fires(self):
        schedule = FaultSchedule(FaultSpec())
        assert all(schedule.draw() is None for _ in range(100))
        assert schedule.injected == 0


class TestFaultInjector:
    @pytest.mark.parametrize(
        "cls,exc_type",
        [
            ("launch", KernelLaunchError),
            ("transient", TransientDeviceError),
            ("alloc", AllocationError),
        ],
    )
    def test_pre_execution_faults_raise_typed_errors(self, cls, exc_type):
        assert cls in RAISED_BEFORE_EXECUTION
        instance, plan = make_case()
        injector = FaultInjector(
            instance, FaultSpec(rate=1.0, seed=0, classes=(cls,))
        )
        with pytest.raises(exc_type) as info:
            execute_plan(injector, plan)
        assert info.value.launch_index == 0
        assert injector.log.injected == 1
        assert injector.log.by_class == {cls: 1}

    def test_nan_poisoning_corrupts_silently(self):
        instance, plan = make_case()
        injector = FaultInjector(
            instance, FaultSpec(rate=1.0, seed=0, classes=("nan",), max_faults=1)
        )
        ll = execute_plan(injector, plan)
        assert np.isnan(ll)
        assert injector.log.poisoned_buffers == 1

    def test_underflow_poisoning_shrinks_partials(self):
        instance, plan = make_case()
        clean = execute_plan(instance, plan)
        injector = FaultInjector(
            instance,
            FaultSpec(rate=1.0, seed=0, classes=("underflow",), max_faults=1),
        )
        poisoned = execute_plan(injector, plan)
        # The poisoned evaluation is silently *wrong*, not an error.
        assert np.isfinite(poisoned)
        assert poisoned != clean

    def test_underflow_poison_factor_is_dtype_aware(self):
        assert underflow_poison_factor(np.float32) == pytest.approx(1e-35)
        assert underflow_poison_factor(np.float64) == pytest.approx(1e-250)

    def test_zero_rate_is_transparent(self):
        instance, plan = make_case()
        clean = execute_plan(instance, plan)
        injector = FaultInjector(instance, FaultSpec())
        assert execute_plan(injector, plan) == clean
        assert injector.log.injected == 0

    def test_delegation(self):
        instance, plan = make_case()
        injector = FaultInjector(instance, FaultSpec())
        assert injector.tip_count == instance.tip_count
        assert injector.inner is instance
        assert injector.pattern_count == instance.pattern_count

    def test_replay_is_bit_identical(self):
        spec = FaultSpec(rate=0.6, seed=11, classes=("underflow",))
        results = []
        for _ in range(2):
            instance, plan = make_case()
            injector = FaultInjector(instance, spec)
            results.append(execute_plan(injector, plan))
        assert results[0] == results[1]
