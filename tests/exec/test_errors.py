"""Unit tests for the typed execution-error hierarchy."""

from __future__ import annotations

import pytest

from repro.exec import (
    AllocationError,
    DeviceFault,
    ExecutionError,
    KernelLaunchError,
    NumericalError,
    TransientDeviceError,
)


class TestHierarchy:
    def test_all_are_execution_errors(self):
        for cls in (
            DeviceFault,
            KernelLaunchError,
            TransientDeviceError,
            AllocationError,
            NumericalError,
        ):
            assert issubclass(cls, ExecutionError)
        assert issubclass(ExecutionError, RuntimeError)

    def test_device_fault_covers_launch_and_transient(self):
        assert issubclass(KernelLaunchError, DeviceFault)
        assert issubclass(TransientDeviceError, DeviceFault)
        assert not issubclass(AllocationError, DeviceFault)
        assert not issubclass(NumericalError, DeviceFault)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ExecutionError):
            raise NumericalError("boom", kind="underflow")
        with pytest.raises(ExecutionError):
            raise KernelLaunchError("boom")


class TestContext:
    def test_launch_context(self):
        exc = TransientDeviceError("boom", launch_index=3, n_operations=8)
        assert exc.launch_index == 3
        assert exc.n_operations == 8
        assert exc.context() == "launch=3 ops=8"

    def test_context_omits_unknowns(self):
        assert ExecutionError("boom").context() == ""
        assert ExecutionError("boom", launch_index=1).context() == "launch=1"


class TestNumericalError:
    def test_kind_and_buffers(self):
        exc = NumericalError("bad", kind="underflow", buffers=[7, 9])
        assert exc.kind == "underflow"
        assert exc.buffers == (7, 9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NumericalError("bad", kind="overflow")

    def test_retryable(self):
        assert NumericalError("bad", kind="nan").retryable
        assert KernelLaunchError("bad").retryable
