"""Checkpoint/resume tests: a killed MCMC run resumes bit-identically."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import simulate_alignment
from repro.exec import CheckpointError, MCMCCheckpoint
from repro.exec.checkpoint import CHECKPOINT_VERSION
from repro.inference.likelihood import TreeLikelihood
from repro.inference.mcmc import run_mcmc
from repro.models import JC69
from repro.trees import yule_tree


@pytest.fixture(scope="module")
def evaluator():
    tree = yule_tree(10, np.random.default_rng(5))
    aln = simulate_alignment(tree, JC69(), 80, seed=5)
    return TreeLikelihood(tree, JC69(), aln)


def make_checkpoint(**overrides) -> MCMCCheckpoint:
    rng = np.random.default_rng(3)
    rng.random(5)
    fields = dict(
        iteration=7,
        iterations=20,
        seed=3,
        rng_state=rng.bit_generator.state,
        current_newick="(A:0.1,B:0.2);",
        current_log_likelihood=-12.5,
        current_log_prior=-1.25,
        best_newick="(A:0.1,B:0.2);",
        best_log_likelihood=-12.0,
        trace=[-13.0, -12.5],
        accepted=3,
        proposed=7,
        rerootings=1,
        kernel_launches=99,
        device_seconds=0.5,
        config={"nni_probability": 0.3},
    )
    fields.update(overrides)
    return MCMCCheckpoint(**fields)


class TestRoundTrip:
    def test_save_load_preserves_every_field(self, tmp_path):
        path = tmp_path / "ck.json"
        original = make_checkpoint()
        original.save(path)
        loaded = MCMCCheckpoint.load(path)
        assert loaded == original

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_restored_rng_continues_the_stream(self, tmp_path):
        rng = np.random.default_rng(11)
        rng.random(10)
        checkpoint = make_checkpoint(rng_state=rng.bit_generator.state)
        path = tmp_path / "ck.json"
        checkpoint.save(path)
        expected = rng.random(5)
        resumed = MCMCCheckpoint.load(path).restore_rng()
        assert np.array_equal(resumed.random(5), expected)


class TestValidation:
    def test_corrupt_json_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            MCMCCheckpoint.load(path)

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            MCMCCheckpoint.load(tmp_path / "absent.json")

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        payload = json.loads(path.read_text())
        payload["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            MCMCCheckpoint.load(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        payload = json.loads(path.read_text())
        del payload["rng_state"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            MCMCCheckpoint.load(path)

    def test_check_matches_guards_run_parameters(self):
        checkpoint = make_checkpoint()
        checkpoint.check_matches(
            iterations=20, seed=3, config={"nni_probability": 0.3}
        )
        with pytest.raises(CheckpointError):
            checkpoint.check_matches(iterations=21, seed=3, config={})
        with pytest.raises(CheckpointError):
            checkpoint.check_matches(iterations=20, seed=4, config={})
        with pytest.raises(CheckpointError):
            checkpoint.check_matches(
                iterations=20, seed=3, config={"nni_probability": 0.5}
            )


class TestResume:
    def test_killed_run_resumes_bit_identically(self, evaluator, tmp_path, monkeypatch):
        full = run_mcmc(evaluator, 20, seed=7)

        calls = {"n": 0}
        original = TreeLikelihood.log_likelihood

        def dying(self):
            calls["n"] += 1
            if calls["n"] > 12:
                raise RuntimeError("simulated kill")
            return original(self)

        path = tmp_path / "ck.json"
        monkeypatch.setattr(TreeLikelihood, "log_likelihood", dying)
        with pytest.raises(RuntimeError):
            run_mcmc(
                evaluator, 20, seed=7, checkpoint_every=4, checkpoint_path=path
            )
        monkeypatch.setattr(TreeLikelihood, "log_likelihood", original)
        assert path.exists()

        resumed = run_mcmc(
            evaluator,
            20,
            seed=7,
            checkpoint_every=4,
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.resumed_at > 0
        assert resumed.log_likelihoods == full.log_likelihoods
        assert resumed.best_log_likelihood == full.best_log_likelihood
        assert resumed.accepted == full.accepted
        assert resumed.kernel_launches == full.kernel_launches

    def test_uninterrupted_checkpointed_run_matches_plain_run(
        self, evaluator, tmp_path
    ):
        plain = run_mcmc(evaluator, 15, seed=2)
        checkpointed = run_mcmc(
            evaluator,
            15,
            seed=2,
            checkpoint_every=4,
            checkpoint_path=tmp_path / "ck.json",
        )
        assert checkpointed.log_likelihoods == plain.log_likelihoods
        # 15 % 4 != 0: three periodic writes plus the final-state write.
        assert checkpointed.checkpoints_written == 4

    def test_resume_of_finished_run_is_a_no_op(self, evaluator, tmp_path):
        path = tmp_path / "ck.json"
        done = run_mcmc(
            evaluator, 12, seed=2, checkpoint_every=3, checkpoint_path=path
        )
        again = run_mcmc(
            evaluator,
            12,
            seed=2,
            checkpoint_every=3,
            checkpoint_path=path,
            resume=True,
        )
        assert again.resumed_at == 12
        assert again.log_likelihoods == done.log_likelihoods

    def test_resume_with_mismatched_parameters_fails_loudly(
        self, evaluator, tmp_path
    ):
        path = tmp_path / "ck.json"
        run_mcmc(evaluator, 10, seed=2, checkpoint_every=5, checkpoint_path=path)
        with pytest.raises(CheckpointError):
            run_mcmc(
                evaluator,
                30,
                seed=2,
                checkpoint_every=5,
                checkpoint_path=path,
                resume=True,
            )

    def test_checkpointing_requires_a_path(self, evaluator):
        with pytest.raises(ValueError):
            run_mcmc(evaluator, 5, seed=1, checkpoint_every=2)

    def test_resume_without_existing_checkpoint_starts_fresh(
        self, evaluator, tmp_path
    ):
        plain = run_mcmc(evaluator, 8, seed=9)
        fresh = run_mcmc(
            evaluator,
            8,
            seed=9,
            checkpoint_every=4,
            checkpoint_path=tmp_path / "new.json",
            resume=True,
        )
        assert fresh.resumed_at == 0
        assert fresh.log_likelihoods == plain.log_likelihoods
