"""Integration tests for the supervised likelihood pool.

The contract under test (ISSUE acceptance criteria): for any mix of
worker fault rates — including a permanently circuit-broken worker — a
drained pool produces log-likelihoods bit-identical to serial fault-free
evaluation, and the extended ledger accounts for every job (nothing is
silently dropped).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import (
    DeadlineExceeded,
    FaultSpec,
    LikelihoodPool,
    NoHealthyWorkersError,
    PoolSaturatedError,
)
from repro.models import JC69
from repro.trees import balanced_tree


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def case():
    tree = balanced_tree(8)
    patterns = random_patterns(
        tree.tip_names(), 24, rng=np.random.default_rng(11)
    )
    model = JC69()
    plan = make_plan(tree, "concurrent")

    def make_case():
        return create_instance(tree, model, patterns), plan

    reference = execute_plan(*make_case())
    return make_case, reference


def submit_reps(pool, make_case, n):
    for rep in range(n):
        pool.submit_case(make_case, label=f"rep-{rep}")


def assert_verified(outcomes, stats, reference, n):
    assert len(outcomes) == n
    assert [o.index for o in outcomes] == list(range(n))
    assert all(o.ok for o in outcomes)
    assert all(o.value == reference for o in outcomes)
    assert stats.balances(), stats.imbalances()
    assert stats.completed == n


class TestFaultFreePool:
    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_bit_identical_to_serial(self, case, executor):
        make_case, reference = case
        pool = LikelihoodPool(3, executor=executor)
        submit_reps(pool, make_case, 9)
        outcomes = pool.drain()
        assert_verified(outcomes, pool.stats(), reference, 9)
        assert pool.stats().faults.injected == 0

    def test_map_returns_values_in_submission_order(self, case):
        make_case, reference = case
        pool = LikelihoodPool(2, executor="inline")
        values = pool.map_cases([make_case] * 5)
        assert values == [reference] * 5

    def test_empty_drain(self):
        assert LikelihoodPool(2).drain() == []


class TestFaultyWorkers:
    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_chaotic_workers_still_bit_identical(self, case, executor):
        make_case, reference = case
        pool = LikelihoodPool(
            4,
            worker_fault_specs=[
                FaultSpec(rate=0.3, seed=101),
                FaultSpec(rate=0.3, seed=202),
                None,
                FaultSpec(rate=1.0, seed=303),  # permanently dead
            ],
            executor=executor,
            cooldown_s=0.0,
        )
        submit_reps(pool, make_case, 12)
        outcomes = pool.drain()
        stats = pool.stats()
        assert_verified(outcomes, stats, reference, 12)
        assert stats.faults.injected > 0

    def test_dead_worker_jobs_reroute(self, case):
        make_case, reference = case
        # No retry policy: the dead worker fails every job it touches and
        # the pool must reroute each one to the clean worker.
        pool = LikelihoodPool(
            2,
            policy=None,
            worker_fault_specs=[FaultSpec(rate=1.0, seed=5), None],
            executor="inline",
            cooldown_s=0.0,
        )
        submit_reps(pool, make_case, 6)
        outcomes = pool.drain()
        stats = pool.stats()
        assert_verified(outcomes, stats, reference, 6)
        assert stats.rerouted > 0
        # Ledger identity: every typed worker error was rerouted,
        # surfaced, or burned during a probe.
        assert stats.balances(), stats.imbalances()

    def test_silently_corrupt_worker_is_caught_and_rescued(self, case):
        make_case, reference = case
        pool = LikelihoodPool(
            3,
            worker_bias={2: 1.05},  # finite-but-wrong results
            executor="inline",
        )
        submit_reps(pool, make_case, 9)
        outcomes = pool.drain()
        stats = pool.stats()
        # The final audit's sentinel probe must unmask the corrupt
        # worker, evict it, and re-run its completions on clean workers.
        assert_verified(outcomes, stats, reference, 9)
        assert 2 in stats.evicted
        assert stats.rescued > 0
        assert stats.probe_failures >= 1

    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_worker_evicted_mid_drain_completions_rescued(
        self, case, executor
    ):
        make_case, reference = case
        # Worker 0 silently corrupts AND faults: it completes jobs
        # (finite but wrong, status=ok), then a fault trips its
        # one-failure breaker and the half-open probe unmasks the bias,
        # evicting it mid-drain. The final audit must rescue the
        # completions stranded on the already-evicted worker — they can
        # never be vouched for by a probe.
        pool = LikelihoodPool(
            2,
            policy=None,
            worker_bias={0: 1.05},
            worker_fault_specs=[FaultSpec(rate=0.5, seed=9), None],
            failure_threshold=1,
            cooldown_s=0.0,
            executor=executor,
        )
        submit_reps(pool, make_case, 8)
        outcomes = pool.drain()
        stats = pool.stats()
        assert_verified(outcomes, stats, reference, 8)
        assert 0 in stats.evicted
        if executor == "inline":  # deterministic scheduler
            assert stats.rescued > 0

    def test_threaded_periodic_health_check_catches_bias(self, case):
        make_case, reference = case
        # Exercises the probe path of the threaded executor (sentinel
        # evaluated outside the pool lock, verdict recorded under it).
        pool = LikelihoodPool(
            3,
            worker_bias={1: 1.05},
            health_check_every=1,
            executor="thread",
        )
        submit_reps(pool, make_case, 9)
        outcomes = pool.drain()
        stats = pool.stats()
        assert_verified(outcomes, stats, reference, 9)
        assert 1 in stats.evicted

    def test_all_workers_dead_surfaces_every_job(self, case):
        make_case, _reference = case
        pool = LikelihoodPool(
            2,
            policy=None,
            worker_fault_specs=[
                FaultSpec(rate=1.0, seed=1),
                FaultSpec(rate=1.0, seed=2),
            ],
            failure_threshold=1,
            cooldown_s=0.0,
            executor="inline",
            audit=False,
        )
        submit_reps(pool, make_case, 3)
        outcomes = pool.drain()
        stats = pool.stats()
        assert all(o.status == "surfaced" for o in outcomes)
        causes = {o.cause for o in outcomes}
        assert causes <= {"failure", "unplaced"}
        unplaced = [o for o in outcomes if o.cause == "unplaced"]
        assert all(
            isinstance(o.error, NoHealthyWorkersError) for o in unplaced
        )
        assert stats.balances(), stats.imbalances()
        assert stats.completed == 0
        assert stats.surfaced == 3

    def test_inline_chaos_run_is_replayable(self, case):
        make_case, _reference = case

        def run():
            pool = LikelihoodPool(
                3,
                worker_fault_specs=[
                    FaultSpec(rate=0.4, seed=41),
                    FaultSpec(rate=0.4, seed=42),
                    None,
                ],
                executor="inline",
                cooldown_s=0.0,
            )
            submit_reps(pool, make_case, 8)
            outcomes = pool.drain()
            stats = pool.stats()
            return (
                [(o.status, o.worker_id, o.attempts, o.value) for o in outcomes],
                stats.format(),
            )

        assert run() == run()


class TestAdmissionControl:
    def test_saturated_queue_rejects_with_typed_error(self, case):
        make_case, reference = case
        pool = LikelihoodPool(2, max_pending=2, executor="inline")
        submit_reps(pool, make_case, 2)
        with pytest.raises(PoolSaturatedError) as info:
            pool.submit_case(make_case, label="overflow")
        assert info.value.capacity == 2
        outcomes = pool.drain()
        stats = pool.stats()
        assert all(o.ok for o in outcomes)
        # The rejection is part of the ledger: offered = completed + shed.
        assert stats.offered == 3
        assert stats.rejected == 1
        assert stats.shed == 1
        assert stats.balances(), stats.imbalances()

    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_map_batches_larger_than_max_pending(self, case, executor):
        make_case, reference = case
        # Admission control bounds *queued* work; map drains in chunks,
        # so the batch size is not capped by max_pending.
        pool = LikelihoodPool(2, max_pending=2, executor=executor)
        values = pool.map_cases([make_case] * 7)
        assert values == [reference] * 7
        stats = pool.stats()
        assert stats.completed == 7
        assert stats.rejected == 0
        assert stats.balances(), stats.imbalances()


class TestDeadlines:
    def test_job_expired_in_queue_is_shed(self, case):
        make_case, _reference = case
        clock = FakeClock()
        pool = LikelihoodPool(
            1, deadline_s=0.5, executor="inline", clock=clock, audit=False
        )
        pool.submit_case(make_case, label="stale")
        clock.advance(1.0)  # budget burns while queued
        outcomes = pool.drain()
        stats = pool.stats()
        assert outcomes[0].status == "shed"
        assert outcomes[0].cause == "expired"
        assert isinstance(outcomes[0].error, DeadlineExceeded)
        assert stats.shed == 1
        assert stats.balances(), stats.imbalances()

    def test_deadline_mid_job_is_surfaced_not_rerouted(self, case):
        make_case, _reference = case
        clock = FakeClock()
        pool = LikelihoodPool(
            2,
            policy=None,
            deadline_s=1.0,
            executor="inline",
            clock=clock,
            audit=False,
        )

        def slow_job(ctx):
            clock.advance(5.0)  # the evaluation overruns its budget
            return ctx.evaluate(make_case)  # guard raises at first launch

        pool.submit(slow_job, label="slow")
        outcomes = pool.drain()
        stats = pool.stats()
        assert outcomes[0].status == "surfaced"
        assert outcomes[0].cause == "failure"
        assert isinstance(outcomes[0].error, DeadlineExceeded)
        # The budget is spent — rerouting would just burn another worker.
        assert stats.rerouted == 0
        assert outcomes[0].attempts == 1
        assert stats.balances(), stats.imbalances()

    def test_generous_deadline_changes_nothing(self, case):
        make_case, reference = case
        pool = LikelihoodPool(2, deadline_s=60.0, executor="inline")
        submit_reps(pool, make_case, 4)
        outcomes = pool.drain()
        assert_verified(outcomes, pool.stats(), reference, 4)


class TestFatalErrors:
    def test_programmer_errors_stay_loud(self, case):
        make_case, _reference = case
        pool = LikelihoodPool(2, executor="inline", audit=False)

        def broken_job(ctx):
            raise KeyError("bug in job function")

        pool.submit(broken_job, label="broken")
        with pytest.raises(KeyError):
            pool.drain()
        stats = pool.stats()
        assert stats.surfaced == 1
        assert stats.balances(), stats.imbalances()


class TestPoolValidation:
    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            LikelihoodPool(0)
        with pytest.raises(ValueError):
            LikelihoodPool(2, executor="fibers")

    def test_stats_format_is_one_line(self, case):
        make_case, _reference = case
        pool = LikelihoodPool(2, executor="inline")
        submit_reps(pool, make_case, 2)
        pool.drain()
        text = pool.stats().format()
        assert "\n" not in text
        assert "workers=2" in text
