"""Property test: recovery is exact.

For *any* fault seed whose injected faults are all recoverable, the
resilient engine's final log-likelihood equals the fault-free run's —
not approximately: bit for bit, because retries recompute the identical
arithmetic.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import FaultInjector, FaultSpec, ResilientInstance, RetryPolicy
from repro.models import JC69
from repro.trees import balanced_tree

#: Fault classes recoverable at launch level (no rescaling escalation
#: needed): pre-execution raises and NaN poisoning cured by recompute.
RECOVERABLE = ("launch", "transient", "alloc", "nan")

_TREE = balanced_tree(16)
_MODEL = JC69()
_PATTERNS = random_patterns(
    _TREE.tip_names(), 32, rng=np.random.default_rng(20180521)
)
_PLAN = make_plan(_TREE, "concurrent")
_CLEAN = execute_plan(
    create_instance(_TREE, _MODEL, _PATTERNS), _PLAN
)


@given(
    fault_seed=st.integers(0, 2**31 - 1),
    rate=st.sampled_from([0.05, 0.15, 0.3]),
)
@settings(max_examples=60, deadline=None)
def test_recoverable_fault_seeds_reproduce_fault_free_loglik(fault_seed, rate):
    spec = FaultSpec(rate=rate, seed=fault_seed, classes=RECOVERABLE)
    instance = create_instance(_TREE, _MODEL, _PATTERNS)
    engine = ResilientInstance(
        FaultInjector(instance, spec), RetryPolicy(max_retries=64)
    )
    assert engine.execute(_PLAN) == _CLEAN
    stats = engine.fault_stats
    # Accounting closes: every injected fault was detected and recovered.
    assert stats.detected == stats.injected
    assert stats.errors == 0


@given(fault_seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_bounded_underflow_injection_is_recovered_exactly(fault_seed):
    # A bounded budget of injected underflow clears on recomputation (the
    # injector stops, genuine underflow would recur); recovery is exact.
    spec = FaultSpec(
        rate=0.3, seed=fault_seed, classes=("underflow",), max_faults=1
    )
    instance = create_instance(_TREE, _MODEL, _PATTERNS)
    engine = ResilientInstance(FaultInjector(instance, spec))
    assert engine.execute(_PLAN) == _CLEAN
    assert engine.fault_stats.rescued == 0
    assert engine.fault_stats.errors == 0
