"""Unit tests for pool workers and the health supervisor."""

from __future__ import annotations

import pytest

from repro.core.planner import execute_plan
from repro.exec import (
    FaultSpec,
    PoolWorker,
    ResilientInstance,
    RetryPolicy,
    Sentinel,
    Supervisor,
)
from repro.exec.faults import BiasInjector, FaultInjector
from repro.exec.health import Deadline, DeadlineGuard


def clean_worker(worker_id=0, **kwargs):
    kwargs.setdefault("policy", RetryPolicy())
    kwargs.setdefault("sleep", lambda _s: None)
    return PoolWorker(worker_id, **kwargs)


class TestPoolWorkerStack:
    def test_stack_ordering(self):
        # resilient( deadline( injector( bias( engine )))) — retries must
        # re-check the budget, injected faults must face both layers.
        worker = clean_worker(
            fault_spec=FaultSpec(rate=0.5, seed=1), bias=1.01
        )
        sentinel = Sentinel()
        instance, _plan = sentinel.make_case()
        stack = worker.build_stack(instance, Deadline(60.0))
        assert isinstance(stack, ResilientInstance)
        guard = stack.inner
        assert isinstance(guard, DeadlineGuard)
        injector = guard.inner
        assert isinstance(injector, FaultInjector)
        assert isinstance(injector.inner, BiasInjector)

    def test_no_policy_runs_bare_engine(self):
        worker = PoolWorker(0)
        sentinel = Sentinel()
        instance, plan = sentinel.make_case()
        assert worker.build_stack(instance) is instance
        assert sentinel.passes(worker.execute_stack(instance, plan))

    def test_execute_is_bit_identical_to_clean_run(self):
        sentinel = Sentinel()
        instance, plan = sentinel.make_case()
        reference = execute_plan(instance, plan)
        worker = clean_worker(fault_spec=FaultSpec(rate=0.4, seed=7))
        for _ in range(5):
            assert worker.execute(sentinel.make_case) == reference

    def test_fault_stream_persists_across_jobs(self):
        worker = clean_worker(fault_spec=FaultSpec(rate=0.5, seed=3))
        sentinel = Sentinel()
        counts = []
        for _ in range(4):
            worker.execute(sentinel.make_case)
            counts.append(worker.stats.injected)
        # Monotone non-decreasing across jobs: one persistent schedule,
        # not one reseeded per job.
        assert counts == sorted(counts)
        assert counts[-1] > 0

    def test_bare_worker_counts_escaped_errors(self):
        worker = PoolWorker(
            0, fault_spec=FaultSpec(rate=1.0, seed=1, classes=("launch",))
        )
        sentinel = Sentinel()
        with pytest.raises(Exception):
            worker.execute(sentinel.make_case)
        assert worker.stats.errors == 1


class TestSupervisorProbes:
    def test_probe_passes_on_clean_worker(self):
        worker = clean_worker()
        supervisor = Supervisor([worker])
        worker.unaudited.extend([0, 1])
        assert supervisor.probe(worker)
        assert worker.unaudited == []
        assert supervisor.probes == 1
        assert supervisor.probe_failures == 0

    def test_probe_evicts_silently_corrupting_worker(self):
        worker = clean_worker(bias=1.05)
        supervisor = Supervisor([worker])
        worker.unaudited.extend([2, 5])
        assert not supervisor.probe(worker)
        assert worker.breaker.evicted
        # The corrupt completions stay listed for the pool to rescue.
        assert worker.unaudited == [2, 5]
        assert supervisor.probe_failures == 1

    def test_probe_counts_escaped_errors_separately(self):
        worker = PoolWorker(0, fault_spec=FaultSpec(rate=1.0, seed=2))
        supervisor = Supervisor([worker])
        assert not supervisor.probe(worker)
        assert supervisor.probe_errors == 1


class TestSupervisorAcquire:
    def test_evicted_worker_is_refused(self):
        worker = clean_worker()
        worker.breaker.evict()
        supervisor = Supervisor([worker])
        assert not supervisor.acquire(worker)

    def test_half_open_worker_is_probed_on_acquire(self):
        worker = clean_worker(failure_threshold=1, cooldown_s=0.0)
        supervisor = Supervisor([worker])
        supervisor.record_failure(worker)
        # cooldown 0 -> immediately half-open; acquire runs the probe,
        # the clean worker passes and closes the circuit.
        assert supervisor.acquire(worker)
        assert supervisor.probes == 1
        assert worker.breaker.available()

    def test_periodic_cadence_probes_after_k_jobs(self):
        worker = clean_worker()
        supervisor = Supervisor([worker], health_check_every=2)
        for index in range(2):
            assert supervisor.acquire(worker)
            supervisor.record_success(worker, index)
        assert supervisor.probes == 0
        assert supervisor.acquire(worker)  # third acquire is the probe
        assert supervisor.probes == 1
        assert worker.unaudited == []  # passing probe vouched for both

    def test_cadence_validation(self):
        with pytest.raises(ValueError):
            Supervisor([clean_worker()], health_check_every=-1)


class TestSupervisorBookkeeping:
    def test_alive_and_evicted_views(self):
        workers = [clean_worker(i) for i in range(3)]
        supervisor = Supervisor(workers)
        workers[1].breaker.evict()
        assert [w.id for w in supervisor.alive()] == [0, 2]
        assert supervisor.evicted() == [1]

    def test_audit_pending_lists_unvouched_workers(self):
        workers = [clean_worker(i) for i in range(2)]
        supervisor = Supervisor(workers)
        supervisor.record_success(workers[0], 7)
        assert supervisor.audit_pending() == [workers[0]]
        workers[0].breaker.evict()
        assert supervisor.audit_pending() == []
