"""Shadow-state sanitizer under the pool (ISSUE acceptance criteria).

Two halves of the contract: a deliberately racy schedule — two threads
driving one shared engine instance — is *caught* (offender pair with
buffer index and both thread ids), while the PR 3 degraded-fleet soak
configuration (25% worker fault rates plus one dead worker, full
resilience, threaded executor) runs sanitizer-clean, because every job
builds a fresh instance and drains are synchronization barriers.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import FaultSpec, LikelihoodPool
from repro.models import JC69
from repro.trees import balanced_tree


@pytest.fixture(scope="module")
def case():
    tree = balanced_tree(8)
    patterns = random_patterns(
        tree.tip_names(), 24, rng=np.random.default_rng(11)
    )
    model = JC69()
    plan = make_plan(tree, "concurrent")

    def make_case():
        return create_instance(tree, model, patterns), plan

    reference = execute_plan(*make_case())
    return make_case, reference


class TestSanitizerOff:
    def test_off_by_default(self, case):
        pool = LikelihoodPool(2)
        assert pool.detector is None
        assert pool.sanitizer_clean
        assert pool.race_report().clean


class TestSanitizerClean:
    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_fresh_instances_never_race(self, case, executor):
        make_case, reference = case
        pool = LikelihoodPool(3, sanitize=True, executor=executor)
        for rep in range(9):
            pool.submit_case(make_case, label=f"rep-{rep}")
        outcomes = pool.drain()
        assert all(o.ok and o.value == reference for o in outcomes)
        assert pool.sanitizer_clean, pool.detector.format()
        # The sanitizer actually observed the traffic, it just found no
        # cross-thread pair — a zero-access "clean" proves nothing.
        assert pool.detector.accesses_recorded > 0
        assert pool.race_report().clean

    def test_values_bit_identical_with_sanitizer_on(self, case):
        make_case, reference = case
        plain = LikelihoodPool(2, executor="inline")
        wrapped = LikelihoodPool(2, sanitize=True, executor="inline")
        assert plain.map_cases([make_case] * 4) == [reference] * 4
        assert wrapped.map_cases([make_case] * 4) == [reference] * 4

    def test_drain_is_an_epoch_barrier(self, case):
        make_case, reference = case
        # The SAME instance evaluated in two different drains from
        # (potentially) different worker threads: ordered by the drain
        # barrier, so no race may be reported.
        instance, plan = make_case()
        pool = LikelihoodPool(2, sanitize=True, executor="thread")
        for _ in range(2):
            pool.submit(lambda ctx: ctx.execute(instance, plan))
            outcomes = pool.drain()
            assert all(o.ok and o.value == reference for o in outcomes)
        assert pool.sanitizer_clean, pool.detector.format()
        assert pool.detector.epoch == 2

    def test_soak_config_is_sanitizer_clean(self, case):
        # PR 3 degraded-fleet soak: 25% fault rates + one dead worker,
        # full resilience, threaded executor, three seeds.
        make_case, reference = case
        for seed in (1, 2, 3):
            pool = LikelihoodPool(
                4,
                sanitize=True,
                worker_fault_specs=[
                    FaultSpec(rate=0.25, seed=seed * 101),
                    FaultSpec(rate=0.25, seed=seed * 202),
                    FaultSpec(rate=0.25, seed=seed * 303),
                    FaultSpec(rate=1.0, seed=seed * 404),  # dead
                ],
                executor="thread",
                cooldown_s=0.0,
            )
            for rep in range(8):
                pool.submit_case(make_case, label=f"s{seed}-rep-{rep}")
            outcomes = pool.drain()
            stats = pool.stats()
            assert all(o.ok and o.value == reference for o in outcomes)
            assert stats.balances(), stats.imbalances()
            assert pool.sanitizer_clean, pool.detector.format()


class TestSanitizerCatchesRaces:
    def test_shared_instance_across_threads_is_caught(self, case):
        make_case, _ = case
        shared, plan = make_case()
        # Two jobs, two worker threads, one shared engine. The barrier
        # pins the interleaving: neither thread proceeds until both hold
        # the job, so their buffer accesses land in the same epoch.
        barrier = threading.Barrier(2, timeout=10.0)

        def racy(ctx):
            barrier.wait()
            return ctx.execute(shared, plan)

        pool = LikelihoodPool(
            2, sanitize=True, executor="thread", audit=False
        )
        pool.submit(racy, label="left")
        pool.submit(racy, label="right")
        pool.drain()
        assert not pool.sanitizer_clean
        report = pool.race_report()
        assert report.has_code("data-race")
        race = pool.detector.races[0]
        # Offender pair: buffer index plus both thread ids.
        assert race.index >= 0
        assert race.first_thread != race.second_thread
        assert "write" in (race.first_access, race.second_access)
        assert str(race.index) in race.format()

    def test_one_report_per_offending_pair(self, case):
        make_case, _ = case
        shared, plan = make_case()
        barrier = threading.Barrier(2, timeout=10.0)

        def racy(ctx):
            barrier.wait()
            return ctx.execute(shared, plan)

        pool = LikelihoodPool(
            2, sanitize=True, executor="thread", audit=False
        )
        pool.submit(racy, label="left")
        pool.submit(racy, label="right")
        pool.drain()
        races = pool.detector.races
        pairs = {
            (r.kind, r.index, *sorted((r.first_thread, r.second_thread)))
            for r in races
        }
        assert len(pairs) == len(races)  # deduplicated

    def test_inline_executor_never_races(self, case):
        # Single OS thread: even a shared instance cannot race.
        make_case, reference = case
        shared, plan = make_case()
        pool = LikelihoodPool(2, sanitize=True, executor="inline")
        for _ in range(4):
            pool.submit(lambda ctx: ctx.execute(shared, plan))
        outcomes = pool.drain()
        assert all(o.ok and o.value == reference for o in outcomes)
        assert pool.sanitizer_clean, pool.detector.format()
