"""Unit tests for site-pattern sharding (repro.exec.sharding).

The property suite (tests/property/test_shard_determinism.py) fuzzes the
bit-stability contract; these tests pin down the mechanics — shard
planning, the reduction tree, ledger identities, checkpoint/resume, the
crash drill, fault escalation and speculation accounting.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data import random_patterns
from repro.exec import (
    LikelihoodPool,
    ShardAborted,
    ShardFailure,
    ShardFaultSpec,
    ShardLedger,
    ShardedLikelihood,
    deterministic_sum,
    plan_shards,
)
from repro.exec.sharding import MIN_SHARD_WIDTH, reference_terms
from repro.models import random_gtr
from repro.trees import yule_tree


def _problem(taxa=6, sites=96, seed=3):
    rng = np.random.default_rng(seed)
    tree = yule_tree(taxa, rng)
    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), sites, rng=rng)
    return tree, model, patterns


class TestPlanShards:
    def test_even_split_is_contiguous_and_complete(self):
        shards = plan_shards(100, 4, min_width=1)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert shards[0].start == 0 and shards[-1].stop == 100
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        assert sum(s.width for s in shards) == 100

    def test_width_floor_clamps_shard_count(self):
        # 20 patterns can host at most 2 shards of MIN_SHARD_WIDTH=8.
        shards = plan_shards(20, 10)
        assert len(shards) == 20 // MIN_SHARD_WIDTH == 2
        assert all(s.width >= MIN_SHARD_WIDTH for s in shards)

    def test_single_shard_when_too_narrow(self):
        shards = plan_shards(5, 4)
        assert len(shards) == 1
        assert shards[0].width == 5

    def test_weighted_cuts_balance_site_counts(self):
        # One heavy pattern at the front: the weighted plan gives the
        # first shard fewer patterns than the even split would.
        weights = np.ones(64)
        weights[0] = 64.0
        shards = plan_shards(64, 4, weights=weights, min_width=8)
        assert shards[0].width < 16
        assert sum(s.width for s in shards) == 64
        assert all(s.width >= 8 for s in shards)

    def test_plan_is_deterministic(self):
        w = np.random.default_rng(0).integers(1, 50, size=200).astype(float)
        a = plan_shards(200, 7, weights=w)
        b = plan_shards(200, 7, weights=w)
        assert a == b

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(0, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(10, 2, weights=np.ones(3))


class TestDeterministicSum:
    def test_matches_fsum_closely(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=1001) * 10.0 ** rng.integers(-6, 6, 1001)
        assert deterministic_sum(values) == pytest.approx(
            math.fsum(values), rel=1e-12
        )

    def test_shape_depends_only_on_length(self):
        # Concatenation order of equal-length halves changes the bits of
        # a naive left-to-right sum far more often than the pairwise
        # tree; what we actually guarantee is repeatability.
        values = np.random.default_rng(1).normal(size=37)
        assert deterministic_sum(values) == deterministic_sum(values.copy())

    def test_empty_and_singleton(self):
        assert deterministic_sum(np.array([])) == 0.0
        assert deterministic_sum(np.array([2.5])) == 2.5


class TestShardLedger:
    def test_balanced_ledger_closes(self):
        ledger = ShardLedger(
            total_shards=3, computed=3, submissions=4, ok=4,
            wins=3, wasted=1,
        )
        assert ledger.balances()

    def test_imbalances_name_the_identity(self):
        ledger = ShardLedger(total_shards=3, computed=2, submissions=1)
        problems = ledger.imbalances()
        assert any("total_shards" in p for p in problems)
        assert any("submissions" in p for p in problems)


class TestShardedLikelihood:
    def test_matches_reference_bitwise(self):
        tree, model, patterns = _problem()
        engine = ShardedLikelihood(tree, model, patterns, n_shards=4)
        value = engine.log_likelihood()
        assert value == engine.reference_log_likelihood()
        assert value == deterministic_sum(
            reference_terms(tree, model, patterns)
        )
        assert engine.ledger.balances()

    def test_terms_cover_every_pattern(self):
        tree, model, patterns = _problem()
        engine = ShardedLikelihood(tree, model, patterns, n_shards=3)
        engine.evaluate()
        np.testing.assert_array_equal(
            engine.terms, reference_terms(tree, model, patterns)
        )

    def test_speculation_accounting(self):
        tree, model, patterns = _problem()
        engine = ShardedLikelihood(
            tree, model, patterns, n_shards=4, speculate=True
        )
        value = engine.log_likelihood()
        assert value == engine.reference_log_likelihood()
        ledger = engine.ledger
        assert ledger.balances(), ledger.imbalances()
        # Every shard was submitted twice; the losing copies are
        # reconciled as wasted, never silently dropped.
        assert ledger.submissions == 2 * engine.n_shards
        assert ledger.wins == engine.n_shards
        assert ledger.wasted == engine.n_shards

    def test_injected_underflow_escalates_and_preserves_bits(self):
        tree, model, patterns = _problem()
        engine = ShardedLikelihood(
            tree,
            model,
            patterns,
            n_shards=4,
            fault_spec=ShardFaultSpec(
                rate=1.0, seed=9, classes=("shard_underflow",), max_faults=2
            ),
        )
        value = engine.log_likelihood()
        assert value == engine.reference_log_likelihood()
        assert engine.ledger.escalations == 2
        assert engine.ledger.balances()

    def test_retry_budget_exhaustion_raises_shard_failure(self):
        tree, model, patterns = _problem()
        engine = ShardedLikelihood(
            tree,
            model,
            patterns,
            n_shards=2,
            retries=1,
            fault_spec=ShardFaultSpec(
                rate=1.0, seed=0, classes=("shard_lost",)
            ),
        )
        with pytest.raises(ShardFailure):
            engine.evaluate()

    def test_with_tree_shares_pool_and_config(self):
        tree, model, patterns = _problem()
        pool = LikelihoodPool(2, executor="inline", deadline_s=None)
        engine = ShardedLikelihood(
            tree, model, patterns, n_shards=3, pool=pool, speculate=True
        )
        other = engine.with_tree(tree)
        assert other.pool is pool
        assert other.n_shards == engine.n_shards
        assert other.speculate
        assert other.log_likelihood() == engine.log_likelihood()


class TestCheckpointResume:
    def test_crash_drill_resumes_without_recompute(self, tmp_path):
        tree, model, patterns = _problem(sites=128)
        path = tmp_path / "shards.json"
        drill = ShardedLikelihood(
            tree,
            model,
            patterns,
            n_shards=4,
            checkpoint_path=path,
            abort_after=2,
        )
        with pytest.raises(ShardAborted):
            drill.evaluate()
        assert path.exists()

        resumed = ShardedLikelihood(
            tree,
            model,
            patterns,
            n_shards=4,
            checkpoint_path=path,
            resume=True,
        )
        value = resumed.log_likelihood()
        assert value == resumed.reference_log_likelihood()
        assert resumed.ledger.resumed == 2
        assert resumed.ledger.computed == resumed.n_shards - 2
        assert resumed.ledger.recomputed_completed == 0
        assert resumed.ledger.balances()

    def test_resume_with_missing_checkpoint_computes_everything(
        self, tmp_path
    ):
        tree, model, patterns = _problem()
        engine = ShardedLikelihood(
            tree,
            model,
            patterns,
            n_shards=3,
            checkpoint_path=tmp_path / "none.json",
            resume=True,
        )
        assert engine.log_likelihood() == engine.reference_log_likelihood()
        assert engine.ledger.resumed == 0

    def test_resume_refuses_a_different_problem(self, tmp_path):
        tree, model, patterns = _problem(sites=128)
        path = tmp_path / "shards.json"
        drill = ShardedLikelihood(
            tree, model, patterns, n_shards=4,
            checkpoint_path=path, abort_after=2,
        )
        with pytest.raises(ShardAborted):
            drill.evaluate()

        other_tree, other_model, other_patterns = _problem(seed=99, sites=128)
        stale = ShardedLikelihood(
            other_tree, other_model, other_patterns, n_shards=4,
            checkpoint_path=path, resume=True,
        )
        # A fingerprint mismatch must not splice foreign shard results:
        # either the resume is refused outright or nothing is restored.
        try:
            stale.evaluate()
        except Exception:
            pass
        else:
            assert stale.ledger.resumed == 0
