"""Unit tests for the retry/degrade/rescale recovery pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle.reference import pruning_log_likelihood
from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import (
    FaultInjector,
    FaultSpec,
    KernelLaunchError,
    NumericalError,
    ResilientInstance,
    RetryPolicy,
)
from repro.models import JC69
from repro.trees import balanced_tree, pectinate_tree


def make_case(n_tips=16, n_patterns=32, seed=1, dtype=np.float64, topology="balanced"):
    tree = (
        pectinate_tree(n_tips) if topology == "pectinate" else balanced_tree(n_tips)
    )
    patterns = random_patterns(
        tree.tip_names(), n_patterns, rng=np.random.default_rng(seed)
    )
    model = JC69()
    instance = create_instance(tree, model, patterns, dtype=dtype)
    plan = make_plan(tree, "concurrent")
    return tree, model, patterns, instance, plan


def clean_loglik(tree, model, patterns, dtype=np.float64):
    instance = create_instance(tree, model, patterns, dtype=dtype)
    return execute_plan(instance, make_plan(tree, "concurrent"))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.5)

    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, max_backoff=0.35)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.35)  # clamped

    def test_zero_base_disables_sleeping(self):
        assert RetryPolicy().backoff_seconds(5) == 0.0


class TestRetryRecovery:
    def test_retries_reproduce_fault_free_result_exactly(self):
        tree, model, patterns, instance, plan = make_case()
        clean = clean_loglik(tree, model, patterns)
        spec = FaultSpec(
            rate=0.4, seed=5, classes=("launch", "transient", "alloc", "nan")
        )
        engine = ResilientInstance(
            FaultInjector(instance, spec), RetryPolicy(max_retries=50)
        )
        assert engine.execute(plan) == clean
        stats = engine.fault_stats
        assert stats.injected > 0
        assert stats.detected == stats.injected
        assert stats.retried == stats.injected
        assert stats.errors == 0

    def test_single_injected_underflow_clears_on_recompute(self):
        tree, model, patterns, instance, plan = make_case()
        clean = clean_loglik(tree, model, patterns)
        spec = FaultSpec(rate=1.0, seed=0, classes=("underflow",), max_faults=1)
        engine = ResilientInstance(FaultInjector(instance, spec))
        assert engine.execute(plan) == clean
        stats = engine.fault_stats
        assert stats.detected_by_class == {"underflow": 1}
        assert stats.rescued == 0  # recompute sufficed; no escalation

    def test_nan_detection_and_cure(self):
        tree, model, patterns, instance, plan = make_case()
        clean = clean_loglik(tree, model, patterns)
        spec = FaultSpec(rate=1.0, seed=0, classes=("nan",), max_faults=2)
        engine = ResilientInstance(FaultInjector(instance, spec))
        assert engine.execute(plan) == clean
        assert engine.fault_stats.detected_by_class == {"nan": 2}

    def test_backoff_sleeps_are_recorded(self):
        tree, model, patterns, instance, plan = make_case()
        sleeps = []
        spec = FaultSpec(rate=1.0, seed=0, classes=("transient",), max_faults=2)
        engine = ResilientInstance(
            FaultInjector(instance, spec),
            RetryPolicy(backoff_base=0.01, backoff_factor=2.0, max_backoff=1.0),
            sleep=sleeps.append,
        )
        engine.execute(plan)
        assert sleeps == pytest.approx([0.01, 0.02])


class TestDegradation:
    def test_persistent_batched_fault_degrades_to_per_op(self):
        tree, model, patterns, instance, plan = make_case()
        clean = clean_loglik(tree, model, patterns)
        # Batched-only faults at rate 1: every batched attempt fails, the
        # per-operation fallback is clean.
        spec = FaultSpec(rate=1.0, seed=0, classes=("transient",), batched_only=True)
        engine = ResilientInstance(
            FaultInjector(instance, spec), RetryPolicy(max_retries=1)
        )
        assert engine.execute(plan) == clean
        stats = engine.fault_stats
        assert stats.degraded > 0
        assert stats.errors == 0

    def test_degradation_disabled_surfaces_the_error(self):
        tree, model, patterns, instance, plan = make_case()
        spec = FaultSpec(rate=1.0, seed=0, classes=("launch",), batched_only=True)
        engine = ResilientInstance(
            FaultInjector(instance, spec),
            RetryPolicy(max_retries=1, degrade=False),
        )
        with pytest.raises(KernelLaunchError):
            engine.execute(plan)
        assert engine.fault_stats.errors == 1

    def test_unrecoverable_fault_is_typed(self):
        tree, model, patterns, instance, plan = make_case()
        # Faults on every attempt, batched or not: nothing can recover.
        spec = FaultSpec(rate=1.0, seed=0, classes=("launch",))
        engine = ResilientInstance(
            FaultInjector(instance, spec), RetryPolicy(max_retries=2)
        )
        with pytest.raises(KernelLaunchError):
            engine.execute(plan)
        stats = engine.fault_stats
        assert stats.errors == 1
        assert stats.retried > 0


class TestRescalingEscalation:
    def make_deep_case(self, dtype=np.float32):
        tree = pectinate_tree(256, branch_length=0.05)
        patterns = random_patterns(
            tree.tip_names(), 8, rng=np.random.default_rng(2)
        )
        model = JC69()
        instance = create_instance(tree, model, patterns, dtype=dtype)
        plan = make_plan(tree, "concurrent")
        return tree, model, patterns, instance, plan

    def test_genuine_underflow_escalates_to_rescaling(self):
        tree, model, patterns, instance, plan = self.make_deep_case()
        reference = pruning_log_likelihood(tree, model, patterns, rescaled=True)
        engine = ResilientInstance(instance)
        ll = engine.execute(plan)
        stats = engine.fault_stats
        assert stats.rescued == 1
        assert stats.errors == 0
        assert ll == pytest.approx(reference, abs=0.5)  # float32 slack

    def test_escalation_is_cached(self):
        tree, model, patterns, instance, plan = self.make_deep_case()
        engine = ResilientInstance(instance)
        first = engine.execute(plan)
        detected_after_first = engine.fault_stats.detected
        second = engine.execute(plan)
        assert second == first
        # The cached scaled plan runs directly: no second detection pass.
        assert engine.fault_stats.detected == detected_after_first
        assert engine.fault_stats.rescued == 1

    def test_rescale_disabled_surfaces_numerical_error(self):
        tree, model, patterns, instance, plan = self.make_deep_case()
        engine = ResilientInstance(instance, RetryPolicy(rescale=False))
        with pytest.raises(NumericalError) as info:
            engine.execute(plan)
        assert info.value.kind == "underflow"
        assert engine.fault_stats.errors == 1


class TestDelegationAndStats:
    def test_delegation(self):
        tree, model, patterns, instance, plan = make_case()
        engine = ResilientInstance(instance)
        assert engine.tip_count == instance.tip_count
        assert engine.inner is instance

    def test_execute_matches_execute_plan_when_healthy(self):
        tree, model, patterns, instance, plan = make_case()
        engine = ResilientInstance(instance)
        direct = clean_loglik(tree, model, patterns)
        assert engine.execute(plan) == direct
        stats = engine.fault_stats
        assert (stats.detected, stats.retried, stats.errors) == (0, 0, 0)

    def test_stats_format_and_reset(self):
        tree, model, patterns, instance, plan = make_case()
        spec = FaultSpec(rate=1.0, seed=0, classes=("transient",), max_faults=1)
        engine = ResilientInstance(FaultInjector(instance, spec))
        engine.execute(plan)
        line = engine.fault_stats.format()
        assert "injected=1" in line and "retried=1" in line
        engine.fault_stats.reset()
        assert engine.fault_stats.detected == 0

    def test_launch_level_error_counter(self):
        # Errors escaping the raw launch surface (not via execute()) are
        # counted once at the surface.
        tree, model, patterns, instance, plan = make_case()
        spec = FaultSpec(rate=1.0, seed=0, classes=("launch",))
        engine = ResilientInstance(
            FaultInjector(instance, spec), RetryPolicy(max_retries=0, degrade=False)
        )
        ops = list(plan.operation_sets[0])
        with pytest.raises(KernelLaunchError):
            engine.update_partials_set(ops)
        assert engine.fault_stats.errors == 1


class TestBackoffJitter:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff_seconds(2, key=7) == policy.backoff_seconds(2)

    def test_jitter_is_pure_function_of_seed_key_attempt(self):
        # Determinism contract: no shared RNG stream, no clock — the same
        # (seed, key, attempt) triple always yields the same delay, in
        # any call order, so threaded chaos runs replay exactly.
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=42)
        forward = [policy.backoff_seconds(a, key=3) for a in (1, 2, 3)]
        backward = [policy.backoff_seconds(a, key=3) for a in (3, 2, 1)]
        assert forward == backward[::-1]
        twin = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=42)
        assert [twin.backoff_seconds(a, key=3) for a in (1, 2, 3)] == forward

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=1.0, jitter=0.25, jitter_seed=1
        )
        for key in range(8):
            for attempt in range(1, 6):
                delay = policy.backoff_seconds(attempt, key=key)
                assert 0.075 <= delay <= 0.125

    def test_workers_decorrelate_by_key(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=0)
        delays = {policy.backoff_seconds(1, key=key) for key in range(16)}
        assert len(delays) > 1

    def test_seed_changes_the_sequence(self):
        a = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=1)
        b = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=2)
        assert a.backoff_seconds(1) != b.backoff_seconds(1)

    def test_jittered_sleeps_are_recorded_and_replayable(self):
        tree, model, patterns, instance, plan = make_case()
        spec = FaultSpec(rate=1.0, seed=0, classes=("transient",), max_faults=2)
        policy = RetryPolicy(backoff_base=0.01, jitter=0.5, jitter_seed=7)
        sleeps: list[float] = []
        engine = ResilientInstance(
            FaultInjector(instance, spec), policy, sleep=sleeps.append
        )
        engine.execute(plan)
        assert sleeps  # backoff actually consulted the jittered delays
        expected = [policy.backoff_seconds(i + 1) for i in range(len(sleeps))]
        assert sleeps == expected
