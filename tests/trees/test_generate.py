"""Unit and property tests for tree generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    balanced_tree,
    coalescent_tree,
    colless_index,
    is_pectinate,
    is_perfectly_balanced,
    node_depths,
    pectinate_tree,
    random_attachment_tree,
    tip_labels,
    tree_height,
    yule_tree,
)


class TestBalanced:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 16, 33, 64])
    def test_counts_and_bifurcating(self, n):
        t = balanced_tree(n)
        assert t.n_tips == n
        assert t.is_bifurcating()

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_power_of_two_height(self, k):
        t = balanced_tree(2**k)
        assert tree_height(t) == k
        assert is_perfectly_balanced(t)
        assert colless_index(t) == 0

    def test_non_power_of_two_near_balanced(self):
        t = balanced_tree(12)
        # height is ceil(log2 n)
        assert tree_height(t) == 4
        # every split differs by at most one tip
        from repro.trees.metrics import _subtree_tip_counts

        counts = _subtree_tip_counts(t)
        for node in t.internals():
            a, b = (counts[id(c)] for c in node.children)
            assert abs(a - b) <= 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            balanced_tree(0)

    def test_custom_names(self):
        t = balanced_tree(3, names=["x", "y", "z"])
        assert sorted(t.tip_names()) == ["x", "y", "z"]
        with pytest.raises(ValueError):
            balanced_tree(3, names=["only", "two"])


class TestPectinate:
    @pytest.mark.parametrize("n", [2, 3, 8, 50])
    def test_shape(self, n):
        t = pectinate_tree(n)
        assert t.n_tips == n
        assert t.is_bifurcating()
        assert is_pectinate(t)
        assert tree_height(t) == n - 1

    def test_max_colless(self):
        n = 10
        t = pectinate_tree(n)
        assert colless_index(t) == (n - 1) * (n - 2) // 2

    def test_tip_depth_structure(self):
        t = pectinate_tree(5)
        depths = sorted(node_depths(t)[id(tip)] for tip in t.tips())
        # Caterpillar: depths 1, 2, 3, 4, 4.
        assert depths == [1, 2, 3, 4, 4]


class TestRandomAttachment:
    @given(st.integers(1, 60), st.integers(0, 10_000))
    def test_valid_bifurcating(self, n, seed):
        t = random_attachment_tree(n, seed)
        assert t.n_tips == n
        assert t.is_bifurcating()
        assert sorted(t.tip_names()) == tip_labels(n)

    def test_deterministic_for_seed(self):
        a = random_attachment_tree(25, 7)
        b = random_attachment_tree(25, 7)
        assert a.topology_key() == b.topology_key()

    def test_different_seeds_differ(self):
        keys = {random_attachment_tree(25, s).topology_key() for s in range(10)}
        assert len(keys) > 1

    def test_produces_unbalanced_shapes(self):
        # The paper relies on random attachment producing topologies that
        # benefit from rerooting; verify the ensemble is not all balanced.
        heights = [tree_height(random_attachment_tree(32, s)) for s in range(50)]
        assert max(heights) > 5  # strictly above perfect balance

    def test_random_lengths(self):
        t = random_attachment_tree(10, 3, random_lengths=True)
        lengths = [e.length for e in t.edges()]
        assert len(set(lengths)) > 1
        assert all(l >= 0 for l in lengths)


class TestYule:
    @given(st.integers(1, 50), st.integers(0, 10_000))
    def test_valid(self, n, seed):
        t = yule_tree(n, seed)
        assert t.n_tips == n
        assert t.is_bifurcating()

    def test_more_balanced_than_uniform_attachment(self):
        # Yule trees are known to be more balanced on average than the
        # paper's uniform-attachment trees.
        rng = range(40)
        yule_mean = np.mean([colless_index(yule_tree(32, s)) for s in rng])
        unif_mean = np.mean([colless_index(random_attachment_tree(32, s)) for s in rng])
        assert yule_mean < unif_mean


class TestCoalescent:
    @given(st.integers(2, 40), st.integers(0, 10_000))
    def test_valid(self, n, seed):
        t = coalescent_tree(n, seed)
        assert t.n_tips == n
        assert t.is_bifurcating()

    def test_ultrametric(self):
        t = coalescent_tree(12, 5)
        # Root-to-tip path lengths must all be equal (coalescent time).
        def path_length(tip):
            total = tip.length
            for anc in tip.ancestors():
                if anc.parent is not None:
                    total += anc.length
            return total

        lengths = [path_length(tip) for tip in t.tips()]
        assert max(lengths) - min(lengths) < 1e-9

    def test_theta_scales_depth(self):
        deep = np.mean(
            [coalescent_tree(10, s, theta=10.0).total_branch_length() for s in range(30)]
        )
        shallow = np.mean(
            [coalescent_tree(10, s, theta=0.1).total_branch_length() for s in range(30)]
        )
        assert deep > shallow


class TestBirthDeath:
    def test_valid(self):
        from repro.trees import birth_death_tree

        for seed in range(5):
            t = birth_death_tree(10, seed, birth_rate=1.0, death_rate=0.3)
            assert t.n_tips == 10
            assert t.is_bifurcating()
            assert all(e.length >= 0 for e in t.edges())

    def test_yule_limit(self):
        from repro.trees import birth_death_tree

        t = birth_death_tree(12, 3, birth_rate=1.0, death_rate=0.0)
        assert t.n_tips == 12
        assert t.is_bifurcating()

    def test_deterministic(self):
        from repro.trees import birth_death_tree

        a = birth_death_tree(8, 7, death_rate=0.2)
        b = birth_death_tree(8, 7, death_rate=0.2)
        assert a.topology_key() == b.topology_key()

    def test_validation(self):
        from repro.trees import birth_death_tree

        with pytest.raises(ValueError):
            birth_death_tree(0, 1)
        with pytest.raises(ValueError):
            birth_death_tree(5, 1, birth_rate=0.5, death_rate=0.6)
        with pytest.raises(ValueError):
            birth_death_tree(5, 1, birth_rate=-1.0)

    def test_named_tips(self):
        from repro.trees import birth_death_tree

        t = birth_death_tree(4, 2, names=["w", "x", "y", "z"])
        assert sorted(t.tip_names()) == ["w", "x", "y", "z"]
