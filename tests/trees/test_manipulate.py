"""Tests for tree manipulation and alignment utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beagle import pruning_log_likelihood
from repro.data import (
    Alignment,
    compress,
    concatenate,
    proportion_variable_sites,
    simulate_alignment,
    site_variability,
)
from repro.models import JC69
from repro.trees import (
    balanced_tree,
    common_ancestor,
    extract_clade,
    ladderize,
    parse_newick,
    prune_to_taxa,
    same_unrooted_topology,
    yule_tree,
)
from tests.strategies import tree_strategy


class TestPruneToTaxa:
    def test_basic(self):
        t = parse_newick("(((a:1,b:1):1,c:1):1,(d:1,e:1):1);")
        pruned = prune_to_taxa(t, ["a", "c", "d"])
        assert sorted(pruned.tip_names()) == ["a", "c", "d"]
        assert pruned.is_bifurcating()

    def test_path_lengths_preserved(self):
        t = parse_newick("(((a:1,b:2):3,c:4):5,(d:6,e:7):8);")
        pruned = prune_to_taxa(t, ["a", "c", "e"])
        # a-to-c path: 1 + 3 + 4 = 8 in both trees.
        a = pruned.find("a")
        c = pruned.find("c")
        mrca = common_ancestor(pruned, ["a", "c"])
        def up(node, stop):
            total = 0.0
            while node is not stop:
                total += node.length
                node = node.parent
            return total
        assert up(a, mrca) + up(c, mrca) == pytest.approx(8.0)

    def test_likelihood_on_restricted_data_matches(self):
        # Likelihood of a pruned tree on the taxon-subset data must equal
        # the... well, it equals the subset-likelihood only when the
        # removed taxa carried all-unknown data; here we just assert the
        # pruned tree is a valid evaluator on the subset.
        tree = yule_tree(8, 3, random_lengths=True)
        aln = simulate_alignment(tree, JC69(), 30, seed=1)
        keep = sorted(tree.tip_names())[:5]
        pruned = prune_to_taxa(tree, keep)
        sub = aln.taxon_subset(keep)
        ll = pruning_log_likelihood(pruned, JC69(), compress(sub))
        assert np.isfinite(ll)

    @given(tree_strategy(min_tips=5, max_tips=25), st.integers(2, 4))
    @settings(max_examples=15)
    def test_property_valid_result(self, tree, k):
        keep = sorted(tree.tip_names())[:k]
        pruned = prune_to_taxa(tree, keep)
        assert sorted(pruned.tip_names()) == keep
        assert pruned.is_bifurcating()

    def test_validation(self):
        t = balanced_tree(4)
        with pytest.raises(KeyError):
            prune_to_taxa(t, ["t0001", "ghost"])
        with pytest.raises(ValueError):
            prune_to_taxa(t, ["t0001"])

    def test_input_untouched(self):
        t = balanced_tree(8)
        key = t.topology_key()
        prune_to_taxa(t, ["t0001", "t0002", "t0005"])
        assert t.topology_key() == key


class TestCommonAncestorAndClade:
    def test_mrca(self):
        t = parse_newick("(((a,b),c),(d,e));")
        mrca = common_ancestor(t, ["a", "b"])
        assert sorted(x.name for x in mrca.tips()) == ["a", "b"]
        assert common_ancestor(t, ["a", "d"]) is t.root

    def test_extract_clade(self):
        t = parse_newick("(((a:1,b:1):1,c:1):1,(d:1,e:1):1);")
        clade = extract_clade(t, ["a", "b"])
        assert sorted(clade.tip_names()) == ["a", "b"]
        assert clade.root.length == 0.0

    def test_validation(self):
        t = balanced_tree(4)
        with pytest.raises(ValueError):
            common_ancestor(t, [])


class TestLadderize:
    def test_topology_preserved(self):
        t = yule_tree(12, 5, random_lengths=True)
        assert same_unrooted_topology(t, ladderize(t))

    def test_sorted_by_size(self):
        t = parse_newick("(((a,b),(c,(d,e))),f);")
        ordered = ladderize(t)
        for node in ordered.internals():
            sizes = [len(list(c.tips())) for c in node.children]
            assert sizes == sorted(sizes)

    def test_descending(self):
        t = parse_newick("(((a,b),(c,(d,e))),f);")
        ordered = ladderize(t, ascending=False)
        for node in ordered.internals():
            sizes = [len(list(c.tips())) for c in node.children]
            assert sizes == sorted(sizes, reverse=True)


class TestAlignmentUtilities:
    def test_concatenate(self):
        a = Alignment({"x": "AC", "y": "GT"})
        b = Alignment({"y": "TT", "x": "AA"})
        joined = concatenate([a, b])
        assert joined.n_sites == 4
        assert "".join(joined.sequence("x")) == "ACAA"
        assert "".join(joined.sequence("y")) == "GTTT"

    def test_concatenate_validation(self):
        a = Alignment({"x": "AC"})
        b = Alignment({"z": "AC"})
        with pytest.raises(ValueError):
            concatenate([a, b])
        with pytest.raises(ValueError):
            concatenate([])

    def test_concatenate_likelihood_additivity(self):
        tree = balanced_tree(5, branch_length=0.2)
        a = simulate_alignment(tree, JC69(), 20, seed=2)
        b = simulate_alignment(tree, JC69(), 30, seed=3)
        joined = concatenate([a, b])
        ll = pruning_log_likelihood(tree, JC69(), compress(joined))
        parts = pruning_log_likelihood(tree, JC69(), compress(a)) + (
            pruning_log_likelihood(tree, JC69(), compress(b))
        )
        assert ll == pytest.approx(parts, abs=1e-9)

    def test_site_variability(self):
        a = Alignment({"x": "AAAN", "y": "AC-N", "z": "AGTN"})
        assert site_variability(a).tolist() == [1, 3, 2, 0]

    def test_proportion_variable(self):
        a = Alignment({"x": "AAAA", "y": "AACG"})
        assert proportion_variable_sites(a) == pytest.approx(0.5)
