"""Tests for ASCII rendering."""

from __future__ import annotations

from repro.trees import (
    balanced_tree,
    parse_newick,
    pectinate_tree,
    render_ascii,
    render_schedule,
)


class TestRenderAscii:
    def test_all_tip_names_present(self):
        t = balanced_tree(8)
        art = render_ascii(t)
        for name in t.tip_names():
            assert name in art

    def test_line_count_reasonable(self):
        t = balanced_tree(4)
        art = render_ascii(t)
        lines = art.splitlines()
        # 4 tips plus connector rows.
        assert 4 <= len(lines) <= 12

    def test_pectinate_renders(self):
        t = pectinate_tree(6)
        art = render_ascii(t)
        assert art.count("t000") == 6

    def test_custom_labels(self):
        t = parse_newick("((a,b),c);")
        art = render_ascii(t, label=lambda n: (n.name or "").upper())
        assert "A" in art and "C" in art

    def test_single_tip(self):
        t = parse_newick("solo;")
        assert "solo" in render_ascii(t)


class TestRenderSchedule:
    def test_set_annotations_present(self):
        t = parse_newick("(((a,b),(c,d)),((e,f),(g,h)));")
        sets = {id(n): i for i, n in enumerate(t.internals())}
        art = render_schedule(t, sets)
        assert "[0]" in art and f"[{len(t.internals()) - 1}]" in art

    def test_tips_unannotated(self):
        t = parse_newick("((a,b),c);")
        art = render_schedule(t, {id(n): 0 for n in t.internals()})
        assert "a" in art and "[0]" in art


class TestMultifurcation:
    def test_trifurcating_root_renders(self):
        t = parse_newick("(a,b,c,d);")
        art = render_ascii(t)
        for name in "abcd":
            assert name in art
