"""Unit tests for repro.trees.tree."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.trees import Node, Tree, balanced_tree, parse_newick, pectinate_tree
from tests.strategies import tree_strategy


class TestBasics:
    def test_counts(self):
        t = balanced_tree(8)
        assert t.n_tips == 8
        assert t.n_nodes == 15
        assert len(t.internals()) == 7
        assert len(t.edges()) == 14

    def test_find(self):
        t = balanced_tree(4)
        assert t.find("t0002").name == "t0002"
        with pytest.raises(KeyError):
            t.find("nope")

    def test_tip_names_order(self):
        t = pectinate_tree(4, names=["w", "x", "y", "z"])
        assert set(t.tip_names()) == {"w", "x", "y", "z"}

    def test_total_branch_length(self):
        t = balanced_tree(4, branch_length=0.25)
        assert t.total_branch_length() == pytest.approx(0.25 * 6)

    def test_is_bifurcating(self):
        t = parse_newick("((a,b),(c,d));")
        assert t.is_bifurcating()
        m = parse_newick("(a,b,c);")
        assert not m.is_bifurcating()


class TestIndexing:
    def test_tips_before_internals(self):
        t = balanced_tree(8)
        idx = t.assign_indices()
        tips = {idx[id(n)] for n in t.tips()}
        internals = {idx[id(n)] for n in t.internals()}
        assert tips == set(range(8))
        assert internals == set(range(8, 15))

    def test_children_index_below_parent_for_internals(self):
        t = pectinate_tree(9)
        t.assign_indices()
        for node in t.internals():
            for child in node.children:
                if not child.is_tip:
                    assert t.index_of(child) < t.index_of(node)

    def test_explicit_tip_order(self):
        t = balanced_tree(4)
        order = ["t0003", "t0001", "t0004", "t0002"]
        t.assign_indices(tip_order=order)
        for i, name in enumerate(order):
            assert t.index_of(t.find(name)) == i

    def test_bad_tip_order_rejected(self):
        t = balanced_tree(4)
        with pytest.raises(ValueError):
            t.assign_indices(tip_order=["a", "b", "c", "d"])

    def test_invalidate(self):
        t = balanced_tree(4)
        t.index_of(t.find("t0001"))
        t.invalidate_indices()
        assert t._index is None

    def test_root_gets_highest_index(self):
        t = balanced_tree(16)
        t.assign_indices()
        assert t.index_of(t.root) == t.n_nodes - 1


class TestCopy:
    @given(tree_strategy(max_tips=20))
    def test_copy_is_deep_and_equal(self, tree):
        dup = tree.copy()
        assert dup.topology_key() == tree.topology_key()
        assert dup.root is not tree.root
        originals = {id(n) for n in tree.nodes()}
        assert all(id(n) not in originals for n in dup.nodes())

    def test_copy_preserves_lengths(self):
        t = balanced_tree(4, branch_length=0.33)
        dup = t.copy()
        assert dup.total_branch_length() == pytest.approx(t.total_branch_length())

    def test_mutating_copy_leaves_original(self):
        t = balanced_tree(4)
        dup = t.copy()
        dup.find("t0001").name = "changed"
        assert t.find("t0001").name == "t0001"


class TestRepair:
    def test_resolve_multifurcations(self):
        t = parse_newick("(a,b,c,d,e);")
        assert not t.is_bifurcating()
        t.resolve_multifurcations()
        assert t.is_bifurcating()
        assert t.n_tips == 5
        # Inserted branches must be zero length to preserve likelihoods.
        assert t.total_branch_length() == pytest.approx(0.0)

    def test_suppress_unary_merges_lengths(self):
        t = parse_newick("((a:1.0):2.0,b:3.0);")
        t.suppress_unary()
        assert t.is_bifurcating()
        a = t.find("a")
        assert a.length == pytest.approx(3.0)

    def test_suppress_unary_root(self):
        t = parse_newick("((a:1.0,b:2.0):5.0);")
        t.suppress_unary()
        assert t.root.name is None
        assert {c.name for c in t.root.children} == {"a", "b"}


class TestTopologyKey:
    def test_key_ignores_child_order(self):
        t1 = parse_newick("((a,b),c);")
        t2 = parse_newick("(c,(b,a));")
        assert t1.topology_key() == t2.topology_key()

    def test_key_distinguishes_shapes(self):
        t1 = parse_newick("((a,b),(c,d));")
        t2 = parse_newick("(((a,b),c),d);")
        assert t1.topology_key() != t2.topology_key()

    def test_key_ignores_lengths(self):
        t1 = parse_newick("((a:1,b:2),c:3);")
        t2 = parse_newick("((a:9,b:8),c:7);")
        assert t1.topology_key() == t2.topology_key()
