"""Unit and property tests for mechanical rerooting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    balanced_tree,
    parse_newick,
    pectinate_tree,
    reroot_above,
    reroot_on_edge,
    root_tip_split,
    same_unrooted_topology,
    unrooted_adjacency,
    unrooted_edges,
)
from tests.strategies import tree_strategy


class TestUnrootedView:
    def test_edge_count(self):
        # A bifurcating tree of n tips has 2n - 3 unrooted edges.
        for n in (3, 4, 8, 13):
            t = balanced_tree(n)
            assert len(unrooted_edges(t)) == 2 * n - 3

    def test_root_suppressed(self):
        t = parse_newick("((a:1,b:2):3,(c:4,d:5):6);")
        adjacency, nodes = unrooted_adjacency(t)
        assert id(t.root) not in adjacency
        # The pulley edge merges the two root branches: 3 + 6 = 9.
        left, right = t.root.children
        pulley = [L for n, L in adjacency[id(left)] if n is right]
        assert pulley == [pytest.approx(9.0)]

    def test_degrees(self):
        t = balanced_tree(8)
        adjacency, _ = unrooted_adjacency(t)
        degrees = sorted(len(v) for v in adjacency.values())
        # 8 tips of degree 1, 6 internal nodes of degree 3.
        assert degrees == [1] * 8 + [3] * 6

    def test_two_tip_tree(self):
        t = parse_newick("(a:1,b:2);")
        assert len(unrooted_edges(t)) == 1
        (u, v, length) = unrooted_edges(t)[0]
        assert length == pytest.approx(3.0)


class TestRerootOnEdge:
    def test_preserves_unrooted_topology(self):
        t = balanced_tree(8)
        for u, v, _ in unrooted_edges(t):
            r = reroot_on_edge(t, u, v)
            assert r.is_bifurcating()
            assert same_unrooted_topology(t, r)

    def test_preserves_total_branch_length(self):
        t = balanced_tree(8, branch_length=0.2)
        for u, v, _ in unrooted_edges(t):
            r = reroot_on_edge(t, u, v)
            assert r.total_branch_length() == pytest.approx(t.total_branch_length())

    def test_fraction_splits_edge(self):
        t = parse_newick("((a:1,b:1):1,(c:1,d:1):1);")
        a = t.find("a")
        r = reroot_on_edge(t, a, a.parent, fraction=0.25)
        new_a = r.find("a")
        assert new_a.parent is r.root
        assert new_a.length == pytest.approx(0.25)
        sibling_side = [c for c in r.root.children if c is not new_a][0]
        assert sibling_side.length == pytest.approx(0.75)

    def test_rejects_non_adjacent(self):
        t = balanced_tree(8)
        a = t.find("t0001")
        z = t.find("t0008")
        with pytest.raises(ValueError):
            reroot_on_edge(t, a, z)

    def test_rejects_bad_fraction(self):
        t = balanced_tree(4)
        a = t.find("t0001")
        with pytest.raises(ValueError):
            reroot_on_edge(t, a, a.parent, fraction=1.5)

    def test_input_untouched(self):
        t = balanced_tree(8)
        before = t.topology_key()
        a = t.find("t0001")
        reroot_on_edge(t, a, a.parent)
        assert t.topology_key() == before

    @given(tree_strategy(min_tips=3, max_tips=25), st.integers(0, 10**6))
    def test_property_any_edge(self, tree, pick):
        edges = unrooted_edges(tree)
        u, v, _ = edges[pick % len(edges)]
        r = reroot_on_edge(tree, u, v)
        assert r.is_bifurcating()
        assert same_unrooted_topology(tree, r)
        assert r.total_branch_length() == pytest.approx(
            tree.total_branch_length(), rel=1e-9, abs=1e-12
        )


class TestRerootAbove:
    def test_pectinate_to_balanced_split(self):
        # Rerooting a pectinate tree at the deep cherry's grandparent edge
        # moves tips to the other side of the root.
        t = pectinate_tree(8)
        assert root_tip_split(t) == (1, 7)
        # Walk down to an internal node about halfway.
        node = t.root
        for _ in range(4):
            node = [c for c in node.children if not c.is_tip][0]
        r = reroot_above(t, node)
        a, b = root_tip_split(r)
        assert a == 4 and b == 4

    def test_root_branch_raises(self):
        t = balanced_tree(4)
        with pytest.raises(ValueError):
            reroot_above(t, t.root)

    def test_rerooting_child_of_root_is_identity_topology(self):
        t = balanced_tree(8)
        child = t.root.children[0]
        r = reroot_above(t, child)
        assert same_unrooted_topology(t, r)
        assert r.topology_key() == t.topology_key()
