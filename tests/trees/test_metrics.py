"""Unit tests for tree shape metrics."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.trees import (
    balanced_tree,
    colless_index,
    is_pectinate,
    is_perfectly_balanced,
    n_cherries,
    normalized_colless,
    parse_newick,
    pectinate_tree,
    root_tip_split,
    sackin_index,
    shape_summary,
    tree_height,
)
from tests.strategies import tree_strategy


class TestColless:
    def test_balanced_zero(self):
        assert colless_index(balanced_tree(16)) == 0

    def test_pectinate_maximum(self):
        n = 12
        assert colless_index(pectinate_tree(n)) == (n - 1) * (n - 2) // 2

    def test_normalization_bounds(self):
        assert normalized_colless(pectinate_tree(10)) == pytest.approx(1.0)
        assert normalized_colless(balanced_tree(16)) == pytest.approx(0.0)

    @given(tree_strategy(min_tips=3, max_tips=30))
    def test_normalized_in_unit_interval(self, tree):
        assert 0.0 <= normalized_colless(tree) <= 1.0

    def test_requires_bifurcating(self):
        t = parse_newick("(a,b,c);")
        with pytest.raises(ValueError):
            colless_index(t)


class TestSackin:
    def test_balanced(self):
        # All 8 tips at depth 3.
        assert sackin_index(balanced_tree(8)) == 24

    def test_pectinate(self):
        # Depths 1..n-1 plus one extra at n-1.
        n = 6
        expected = sum(range(1, n)) + (n - 1)
        assert sackin_index(pectinate_tree(n)) == expected

    @given(tree_strategy(min_tips=2, max_tips=30))
    def test_pectinate_dominates(self, tree):
        assert sackin_index(tree) <= sackin_index(pectinate_tree(tree.n_tips))


class TestCherries:
    def test_balanced(self):
        assert n_cherries(balanced_tree(8)) == 4

    def test_pectinate(self):
        assert n_cherries(pectinate_tree(10)) == 1


class TestClassifiers:
    def test_is_pectinate(self):
        assert is_pectinate(pectinate_tree(7))
        assert not is_pectinate(balanced_tree(8))

    def test_is_perfectly_balanced(self):
        assert is_perfectly_balanced(balanced_tree(8))
        assert not is_perfectly_balanced(pectinate_tree(8))
        # Near-balanced (n not a power of two) counts only if every split
        # is exactly even, which is impossible for odd subtree sizes.
        assert not is_perfectly_balanced(balanced_tree(6))

    def test_small_trees(self):
        assert is_pectinate(pectinate_tree(2))
        assert is_perfectly_balanced(balanced_tree(2))


class TestRootSplit:
    def test_balanced_even_split(self):
        assert root_tip_split(balanced_tree(8)) == (4, 4)

    def test_pectinate_worst_split(self):
        assert root_tip_split(pectinate_tree(8)) == (1, 7)

    @given(tree_strategy(min_tips=2, max_tips=30))
    def test_split_sums_to_n(self, tree):
        a, b = root_tip_split(tree)
        assert a + b == tree.n_tips


class TestHeightAndSummary:
    def test_height_extremes(self):
        assert tree_height(balanced_tree(16)) == 4
        assert tree_height(pectinate_tree(16)) == 15

    def test_summary_keys(self):
        s = shape_summary(balanced_tree(8))
        assert s["n_tips"] == 8
        assert s["height"] == 3
        assert s["root_height"] == 3
        assert s["cherries"] == 4
        assert s["colless"] == 0
