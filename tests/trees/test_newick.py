"""Unit and property tests for Newick parsing/writing."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.trees import (
    NewickError,
    parse_newick,
    pectinate_tree,
    same_unrooted_topology,
    write_newick,
)
from tests.strategies import tree_strategy


class TestParse:
    def test_simple(self):
        t = parse_newick("((a,b),c);")
        assert t.n_tips == 3
        assert sorted(t.tip_names()) == ["a", "b", "c"]

    def test_lengths(self):
        t = parse_newick("((a:0.1,b:0.2):0.3,c:0.4);")
        assert t.find("a").length == pytest.approx(0.1)
        assert t.find("c").length == pytest.approx(0.4)
        internal = t.find("a").parent
        assert internal.length == pytest.approx(0.3)

    def test_internal_labels(self):
        t = parse_newick("((a,b)ab,c)root;")
        assert t.root.name == "root"
        assert t.find("a").parent.name == "ab"

    def test_quoted_names(self):
        t = parse_newick("('Homo sapiens':1,'it''s':2);")
        assert sorted(t.tip_names()) == ["Homo sapiens", "it's"]

    def test_comments_skipped(self):
        t = parse_newick("((a[&rate=1],b):0.5[comment],c);")
        assert sorted(t.tip_names()) == ["a", "b", "c"]

    def test_whitespace_tolerated(self):
        t = parse_newick("( (a , b) ,\n c ) ;")
        assert t.n_tips == 3

    def test_single_leaf(self):
        t = parse_newick("onlyone;")
        assert t.n_tips == 1
        assert t.root.name == "onlyone"

    def test_multifurcation(self):
        t = parse_newick("(a,b,c,d);")
        assert len(t.root.children) == 4

    def test_scientific_notation_length(self):
        t = parse_newick("(a:1e-3,b:2.5E2);")
        assert t.find("a").length == pytest.approx(1e-3)
        assert t.find("b").length == pytest.approx(250.0)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ";",
            "((a,b);",
            "(a,b));",
            "(a:xyz,b);",
            "(a,'unterminated);",
            "(a[no end,b);",
            "a,b;",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(NewickError):
            parse_newick(bad)

    def test_deep_nesting_is_stack_safe(self):
        text = write_newick(pectinate_tree(5000))
        t = parse_newick(text)
        assert t.n_tips == 5000


class TestErrorPositions:
    """NewickError carries the line/column of the offending character."""

    def test_unbalanced_close_paren_position(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a,b));")
        assert (info.value.line, info.value.column) == (1, 6)
        assert info.value.position == 5

    def test_truncated_tree_points_past_the_end(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a,(b,c)")
        assert "truncated" in str(info.value)
        assert info.value.position == 8

    def test_bad_branch_length_position(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a:xyz,b);")
        assert info.value.column == 4
        assert "xyz" in str(info.value)

    def test_multiline_input_reports_line_number(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a,\nb));")
        assert info.value.line == 2
        assert info.value.column == 3

    def test_unterminated_quote_position(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a,'oops);")
        assert info.value.column == 4

    def test_unterminated_comment_position(self):
        with pytest.raises(NewickError) as info:
            parse_newick("(a[no end,b);")
        assert info.value.column == 3

    def test_newick_error_is_parse_error_and_value_error(self):
        from repro.errors import ParseError

        assert issubclass(NewickError, ParseError)
        assert issubclass(NewickError, ValueError)

    def test_message_renders_location(self):
        with pytest.raises(NewickError, match="line 1, column 6"):
            parse_newick("(a,b));")


class TestWrite:
    def test_writes_lengths(self):
        t = parse_newick("((a:0.1,b:0.2):0.3,c:0.4);")
        out = write_newick(t)
        assert ":0.1" in out and ":0.3" in out

    def test_no_lengths_option(self):
        t = parse_newick("((a:0.1,b:0.2):0.3,c:0.4);")
        assert ":" not in write_newick(t, lengths=False)

    def test_internal_names_option(self):
        t = parse_newick("((a,b)ab,c)r;")
        assert "ab" in write_newick(t, lengths=False, internal_names=True)
        assert "ab" not in write_newick(t, lengths=False)

    def test_quoting_roundtrip(self):
        t = parse_newick("('Homo sapiens',\"x\");")
        out = write_newick(t, lengths=False)
        back = parse_newick(out)
        assert sorted(back.tip_names()) == sorted(t.tip_names())

    def test_precision(self):
        t = parse_newick("(a:0.123456789,b:1);")
        out = write_newick(t, precision=3)
        assert ":0.123" in out and "0.1234" not in out


class TestRoundTrip:
    @given(tree_strategy(max_tips=30))
    def test_roundtrip_topology_and_lengths(self, tree):
        text = write_newick(tree)
        back = parse_newick(text)
        assert back.topology_key() == tree.topology_key()
        assert back.total_branch_length() == pytest.approx(
            tree.total_branch_length(), rel=1e-9
        )

    @given(tree_strategy(min_tips=4, max_tips=25))
    def test_roundtrip_unrooted(self, tree):
        back = parse_newick(write_newick(tree))
        assert same_unrooted_topology(tree, back)
