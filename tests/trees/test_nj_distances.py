"""Tests for sequence distances, neighbor joining, and tree enumeration."""

from __future__ import annotations

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Alignment, simulate_alignment
from repro.models import JC69
from repro.trees import (
    Tree,
    all_unrooted_topologies,
    balanced_tree,
    bipartitions,
    distance_matrix,
    gamma_jc_distance,
    jc_distance,
    n_rooted_topologies,
    n_unrooted_topologies,
    neighbor_joining,
    p_distance,
    same_unrooted_topology,
    yule_tree,
)
from repro.trees.reroot import unrooted_adjacency
from tests.strategies import tree_strategy


def path_distance_matrix(tree: Tree):
    """True additive (path-length) distances between tips."""
    adjacency, _ = unrooted_adjacency(tree)
    tips = tree.tips()
    names = [t.name for t in tips]
    n = len(tips)
    D = np.zeros((n, n))
    for i, tip in enumerate(tips):
        dist = {id(tip): 0.0}
        queue = collections.deque([tip])
        while queue:
            x = queue.popleft()
            for neighbor, length in adjacency[id(x)]:
                if id(neighbor) not in dist:
                    dist[id(neighbor)] = dist[id(x)] + length
                    queue.append(neighbor)
        for j, other in enumerate(tips):
            D[i, j] = dist[id(other)]
    return names, D


class TestSequenceDistances:
    def test_p_distance(self):
        aln = Alignment({"a": "AAAA", "b": "AATT"})
        assert p_distance(aln, "a", "b") == pytest.approx(0.5)

    def test_identical_sequences(self):
        aln = Alignment({"a": "ACGT", "b": "ACGT"})
        assert jc_distance(aln, "a", "b") == 0.0

    def test_jc_formula(self):
        aln = Alignment({"a": "A" * 100, "b": "A" * 90 + "C" * 10})
        p = 0.1
        expected = -0.75 * np.log(1 - 4 * p / 3)
        assert jc_distance(aln, "a", "b") == pytest.approx(expected)

    def test_saturation_capped(self):
        aln = Alignment({"a": "ACGT" * 5, "b": "CATG" * 5})  # 100% mismatch
        assert jc_distance(aln, "a", "b") == 10.0

    def test_ambiguity_excluded(self):
        aln = Alignment({"a": "AANN", "b": "ATRC"})
        # Comparable sites: positions 0, 1 only (N and R excluded).
        assert p_distance(aln, "a", "b") == pytest.approx(0.5)

    def test_no_comparable_sites(self):
        aln = Alignment({"a": "NN", "b": "AC"})
        with pytest.raises(ValueError):
            p_distance(aln, "a", "b")

    def test_gamma_reduces_to_jc_at_large_alpha(self):
        aln = Alignment({"a": "A" * 100, "b": "A" * 85 + "G" * 15})
        jc = jc_distance(aln, "a", "b")
        gamma = gamma_jc_distance(aln, "a", "b", alpha=500.0)
        assert gamma == pytest.approx(jc, rel=1e-2)

    def test_gamma_exceeds_jc_for_small_alpha(self):
        aln = Alignment({"a": "A" * 100, "b": "A" * 70 + "G" * 30})
        assert gamma_jc_distance(aln, "a", "b", 0.3) > jc_distance(aln, "a", "b")

    def test_distance_matrix_symmetric(self):
        tree = balanced_tree(5, branch_length=0.2)
        aln = simulate_alignment(tree, JC69(), 200, seed=31)
        names, D = distance_matrix(aln)
        assert np.allclose(D, D.T)
        assert np.all(np.diag(D) == 0)
        assert names == aln.names

    def test_distance_matrix_methods(self):
        tree = balanced_tree(4, branch_length=0.2)
        aln = simulate_alignment(tree, JC69(), 100, seed=32)
        for method in ("p", "jc", "gamma_jc"):
            _, D = distance_matrix(aln, method=method)
            assert np.all(D >= 0)
        with pytest.raises(ValueError):
            distance_matrix(aln, method="hamming3000")

    def test_jc_estimates_true_branch_length(self):
        # Long sequences: JC distance between two tips approaches the
        # true path length used for simulation.
        from repro.trees import parse_newick

        tree = parse_newick("(a:0.15,b:0.15);")
        aln = simulate_alignment(tree, JC69(), 50_000, seed=33)
        assert jc_distance(aln, "a", "b") == pytest.approx(0.3, abs=0.02)


class TestNeighborJoining:
    @given(tree_strategy(min_tips=4, max_tips=20, random_lengths=True))
    @settings(max_examples=20)
    def test_consistency_on_additive_distances(self, tree):
        # Guard against zero-length internal branches which make the
        # topology unidentifiable from distances.
        for edge in tree.edges():
            edge.length = max(edge.length, 0.05)
        names, D = path_distance_matrix(tree)
        result = neighbor_joining(names, D)
        assert result.is_bifurcating()
        assert same_unrooted_topology(result, tree)

    def test_recovers_branch_lengths_from_additive(self):
        tree = yule_tree(6, 5, random_lengths=True)
        for edge in tree.edges():
            edge.length = max(edge.length, 0.05)
        names, D = path_distance_matrix(tree)
        result = neighbor_joining(names, D)
        _, D_result = path_distance_matrix(result)
        # Reorder result matrix rows to original name order.
        order = [result.tip_names().index(n) for n in names]
        # Rebuild via dict for clarity:
        names_r, D_r = path_distance_matrix(result)
        index = {n: i for i, n in enumerate(names_r)}
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                assert D[i, j] == pytest.approx(D_r[index[a], index[b]], abs=1e-9)

    def test_two_taxa(self):
        tree = neighbor_joining(["a", "b"], np.array([[0.0, 0.4], [0.4, 0.0]]))
        assert tree.n_tips == 2
        assert tree.total_branch_length() == pytest.approx(0.4)

    def test_from_sequence_data(self):
        truth = yule_tree(8, 9, random_lengths=True)
        for edge in truth.edges():
            edge.length = max(edge.length, 0.08)
        aln = simulate_alignment(truth, JC69(), 5000, seed=34)
        names, D = distance_matrix(aln, method="jc")
        result = neighbor_joining(names, D)
        assert same_unrooted_topology(result, truth)

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbor_joining(["a"], np.zeros((1, 1)))
        with pytest.raises(ValueError):
            neighbor_joining(["a", "b"], np.zeros((3, 3)))
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            neighbor_joining(["a", "b"], bad)  # asymmetric
        with pytest.raises(ValueError):
            neighbor_joining(["a", "b"], np.array([[1.0, 1.0], [1.0, 0.0]]))

    def test_multifurcating_option(self):
        names, D = path_distance_matrix(balanced_tree(5, branch_length=0.1))
        unresolved = neighbor_joining(names, D, bifurcating=False)
        assert len(unresolved.root.children) == 3


class TestEnumeration:
    def test_counts(self):
        assert n_unrooted_topologies(3) == 1
        assert n_unrooted_topologies(4) == 3
        assert n_unrooted_topologies(5) == 15
        assert n_unrooted_topologies(6) == 105
        assert n_unrooted_topologies(10) == 2_027_025
        assert n_rooted_topologies(3) == 3
        assert n_rooted_topologies(4) == 15

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_enumeration_complete_and_distinct(self, n):
        names = [f"t{i}" for i in range(n)]
        trees = list(all_unrooted_topologies(names))
        assert len(trees) == n_unrooted_topologies(n)
        keys = {
            frozenset(tuple(sorted(s)) for s in bipartitions(t)) for t in trees
        }
        assert len(keys) == len(trees)
        assert all(t.is_bifurcating() for t in trees)

    def test_limit(self):
        names = [f"t{i}" for i in range(7)]
        sample = list(all_unrooted_topologies(names, limit=10))
        assert len(sample) == 10

    def test_guard_for_large_n(self):
        with pytest.raises(ValueError):
            list(all_unrooted_topologies([f"t{i}" for i in range(10)]))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(all_unrooted_topologies(["a", "b"]))
        with pytest.raises(ValueError):
            list(all_unrooted_topologies(["a", "a", "b"]))
