"""Unit and property tests for tree distances."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    balanced_tree,
    bipartitions,
    parse_newick,
    pectinate_tree,
    random_attachment_tree,
    reroot_on_edge,
    robinson_foulds,
    same_unrooted_topology,
    unrooted_edges,
)
from tests.strategies import tree_strategy


class TestBipartitions:
    def test_count_for_bifurcating(self):
        # Unrooted bifurcating tree on n tips has n - 3 internal edges.
        for n in (4, 8, 12):
            t = balanced_tree(n)
            assert len(bipartitions(t)) == n - 3

    def test_quartet(self):
        t = parse_newick("((a,b),(c,d));")
        splits = bipartitions(t)
        assert splits == {frozenset({"a", "b"})} or splits == {frozenset({"c", "d"})}

    def test_rooted_position_invisible(self):
        t = parse_newick("((a,b),(c,d));")
        s = parse_newick("(a,(b,(c,d)));")
        assert bipartitions(t) == bipartitions(s)


class TestRobinsonFoulds:
    def test_identical_zero(self):
        t = balanced_tree(10)
        assert robinson_foulds(t, t.copy()) == 0

    def test_different_positive(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        assert robinson_foulds(a, b) == 2

    def test_requires_same_tips(self):
        with pytest.raises(ValueError):
            robinson_foulds(parse_newick("((a,b),c);"), parse_newick("((a,b),d);"))

    def test_balanced_vs_pectinate(self):
        a = balanced_tree(16)
        b = pectinate_tree(16)
        assert robinson_foulds(a, b) > 0

    @given(tree_strategy(min_tips=4, max_tips=20), st.integers(0, 10**6))
    def test_rerooting_never_changes_distance(self, tree, pick):
        edges = unrooted_edges(tree)
        u, v, _ = edges[pick % len(edges)]
        rerooted = reroot_on_edge(tree, u, v)
        assert robinson_foulds(tree, rerooted) == 0
        assert same_unrooted_topology(tree, rerooted)

    def test_symmetry(self):
        a = random_attachment_tree(12, 1)
        b = random_attachment_tree(12, 2)
        assert robinson_foulds(a, b) == robinson_foulds(b, a)
