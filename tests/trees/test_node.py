"""Unit tests for repro.trees.node."""

from __future__ import annotations

import pytest

from repro.trees import Node


def make_cherry() -> Node:
    root = Node("r")
    root.add_child(Node("a", 1.0))
    root.add_child(Node("b", 2.0))
    return root


class TestWiring:
    def test_add_child_sets_parent(self):
        root = make_cherry()
        assert all(c.parent is root for c in root.children)

    def test_add_child_rejects_attached_node(self):
        root = make_cherry()
        other = Node("x")
        with pytest.raises(ValueError):
            other.add_child(root.children[0])

    def test_remove_child_detaches(self):
        root = make_cherry()
        a = root.children[0]
        returned = root.remove_child(a)
        assert returned is a
        assert a.parent is None
        assert len(root.children) == 1

    def test_remove_child_rejects_stranger(self):
        root = make_cherry()
        with pytest.raises(ValueError):
            root.remove_child(Node("zzz"))


class TestPredicates:
    def test_tip_and_root_flags(self):
        root = make_cherry()
        a = root.children[0]
        assert root.is_root and not root.is_tip
        assert a.is_tip and not a.is_root

    def test_is_binary(self):
        root = make_cherry()
        assert root.is_binary
        root.add_child(Node("c"))
        assert not root.is_binary
        assert Node("solo").is_binary  # a tip is fine

    def test_left_right(self):
        root = make_cherry()
        assert root.left.name == "a"
        assert root.right.name == "b"

    def test_sibling(self):
        root = make_cherry()
        a, b = root.children
        assert a.sibling() is b
        assert b.sibling() is a
        assert root.sibling() is None

    def test_sibling_none_for_multifurcation(self):
        root = make_cherry()
        root.add_child(Node("c"))
        assert root.children[0].sibling() is None


class TestTraversal:
    def test_postorder_children_first(self):
        root = Node()
        inner = root.add_child(Node())
        inner.add_child(Node("a"))
        inner.add_child(Node("b"))
        root.add_child(Node("c"))
        order = [n.name for n in root.traverse_postorder()]
        assert order == ["a", "b", None, "c", None]

    def test_preorder_parents_first(self):
        root = Node("r")
        inner = root.add_child(Node("i"))
        inner.add_child(Node("a"))
        inner.add_child(Node("b"))
        root.add_child(Node("c"))
        order = [n.name for n in root.traverse_preorder()]
        assert order == ["r", "i", "a", "b", "c"]

    def test_deep_tree_does_not_recurse(self):
        # 10,000 nested nodes would blow the default recursion limit if
        # traversal were recursive.
        root = Node("0")
        node = root
        for i in range(10_000):
            child = Node(str(i + 1))
            node.add_child(child)
            node = child
        assert sum(1 for _ in root.traverse_postorder()) == 10_001
        assert sum(1 for _ in root.traverse_preorder()) == 10_001

    def test_ancestors_and_depth(self):
        root = make_cherry()
        a = root.children[0]
        assert list(a.ancestors()) == [root]
        assert a.depth() == 1
        assert root.depth() == 0

    def test_tips_and_counts(self):
        root = make_cherry()
        assert [t.name for t in root.tips()] == ["a", "b"]
        assert root.n_tips() == 2
        assert root.children[0].n_tips() == 1
