"""Unit and property tests for traversal orders."""

from __future__ import annotations

from hypothesis import given

from repro.trees import (
    balanced_tree,
    levelorder,
    levels,
    node_depths,
    node_heights,
    parse_newick,
    pectinate_tree,
    postorder,
    preorder,
    reverse_levelorder,
    tree_height,
)
from tests.strategies import tree_strategy


def figure2_tree():
    """The eight-OTU balanced tree from Figure 2 of the paper."""
    return parse_newick("(((a,b),(c,d)),((e,f),(g,h)));")


class TestOrders:
    def test_postorder_children_first_property(self):
        t = figure2_tree()
        seen = set()
        for node in postorder(t):
            for child in node.children:
                assert id(child) in seen
            seen.add(id(node))

    def test_preorder_parents_first_property(self):
        t = figure2_tree()
        seen = {None}
        for node in preorder(t):
            assert (id(node.parent) if node.parent else None) in seen
            seen.add(id(node))

    def test_levelorder_nondecreasing_depth(self):
        t = figure2_tree()
        depths = node_depths(t)
        order = [depths[id(n)] for n in levelorder(t)]
        assert order == sorted(order)

    def test_reverse_levelorder_nonincreasing_depth(self):
        t = figure2_tree()
        depths = node_depths(t)
        order = [depths[id(n)] for n in reverse_levelorder(t)]
        assert order == sorted(order, reverse=True)

    @given(tree_strategy(max_tips=25))
    def test_all_orders_cover_all_nodes(self, tree):
        n = tree.n_nodes
        assert len(list(postorder(tree))) == n
        assert len(list(preorder(tree))) == n
        assert len(list(levelorder(tree))) == n
        assert len(reverse_levelorder(tree)) == n

    @given(tree_strategy(max_tips=25))
    def test_reverse_levelorder_children_precede_parents(self, tree):
        # Deeper-first ordering guarantees every child is emitted before
        # its parent — the property the BEAGLE scheduler relies on.
        seen = set()
        for node in reverse_levelorder(tree):
            for child in node.children:
                assert id(child) in seen
            seen.add(id(node))


class TestLevels:
    def test_levels_grouping(self):
        t = figure2_tree()
        grouped = levels(t)
        assert [len(level) for level in grouped] == [1, 2, 4, 8]

    def test_pectinate_levels(self):
        t = pectinate_tree(5)
        grouped = levels(t)
        # One internal + one tip per level except the deepest (two tips).
        assert len(grouped) == 5
        assert [len(level) for level in grouped] == [1, 2, 2, 2, 2]


class TestDepthsAndHeights:
    def test_depths_root_zero(self):
        t = figure2_tree()
        depths = node_depths(t)
        assert depths[id(t.root)] == 0
        assert all(
            depths[id(c)] == depths[id(n)] + 1
            for n in postorder(t)
            for c in n.children
        )

    def test_heights_tips_zero(self):
        t = figure2_tree()
        heights = node_heights(t)
        assert all(heights[id(tip)] == 0 for tip in t.tips())
        assert heights[id(t.root)] == 3

    def test_pectinate_heights(self):
        n = 9
        t = pectinate_tree(n)
        assert node_heights(t)[id(t.root)] == n - 1

    @given(tree_strategy(max_tips=30))
    def test_root_height_at_most_tree_height(self, tree):
        assert node_heights(tree)[id(tree.root)] <= tree_height(tree)

    def test_balanced_height_log(self):
        t = balanced_tree(64)
        assert node_heights(t)[id(t.root)] == 6
