"""Deep-tree underflow: rescaling is correct, its absence is *detected*.

The satellite of the paper's §VI-F: on a 512-tip tree the partials
product underflows even ``float64``. With scale buffers the engine must
agree with the independent (rescaled) pruning oracle to 1e-6; without
them the failure must surface as a detection — never as a silently wrong
finite number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle.reference import pruning_log_likelihood
from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import NumericalError, ResilientInstance, RetryPolicy
from repro.models import JC69
from repro.trees import pectinate_tree

N_TIPS = 512


@pytest.fixture(scope="module")
def deep_case():
    tree = pectinate_tree(N_TIPS, branch_length=0.05)
    patterns = random_patterns(
        tree.tip_names(), 16, rng=np.random.default_rng(42)
    )
    model = JC69()
    reference = pruning_log_likelihood(tree, model, patterns, rescaled=True)
    return tree, model, patterns, reference


class TestRescaledAgainstOracle:
    def test_float64_with_scaling_matches_reference_to_1e6(self, deep_case):
        tree, model, patterns, reference = deep_case
        instance = create_instance(tree, model, patterns, scaling=True)
        plan = make_plan(tree, "concurrent", scaling=True)
        ll = execute_plan(instance, plan)
        assert np.isfinite(reference)
        assert ll == pytest.approx(reference, abs=1e-6)

    def test_serial_and_concurrent_scaled_plans_agree(self, deep_case):
        tree, model, patterns, reference = deep_case
        lls = []
        for mode in ("serial", "concurrent"):
            instance = create_instance(tree, model, patterns, scaling=True)
            lls.append(
                execute_plan(instance, make_plan(tree, mode, scaling=True))
            )
        assert lls[0] == pytest.approx(lls[1], abs=1e-9)
        assert lls[0] == pytest.approx(reference, abs=1e-6)


class TestUnscaledIsDetected:
    def test_float64_without_scaling_is_not_silently_wrong(self, deep_case):
        tree, model, patterns, reference = deep_case
        instance = create_instance(tree, model, patterns)
        ll = execute_plan(instance, make_plan(tree, "concurrent"))
        # The failure mode is loud (-inf), not a plausible wrong number.
        assert ll == -np.inf

    def test_float32_resilient_detects_underflow(self, deep_case):
        tree, model, patterns, reference = deep_case
        instance = create_instance(tree, model, patterns, dtype=np.float32)
        engine = ResilientInstance(instance, RetryPolicy(rescale=False))
        with pytest.raises(NumericalError) as info:
            engine.execute(make_plan(tree, "concurrent"))
        assert info.value.kind == "underflow"
        assert engine.fault_stats.detected > 0

    def test_float32_rescue_recovers_to_reference(self, deep_case):
        tree, model, patterns, reference = deep_case
        instance = create_instance(tree, model, patterns, dtype=np.float32)
        engine = ResilientInstance(instance)
        ll = engine.execute(make_plan(tree, "concurrent"))
        assert engine.fault_stats.rescued == 1
        assert np.isfinite(ll)
        # float32 arithmetic: looser agreement than the 1e-6 double bound.
        assert ll == pytest.approx(reference, abs=1.0)
