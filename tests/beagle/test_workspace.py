"""The preallocated kernel workspace: reuse, growth and zero-allocation.

The engine's batched path must not allocate per operation set in steady
state: every scratch array lives in a :class:`repro.beagle.workspace.Workspace`
that grows geometrically to the largest set seen and is then reused
byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from repro.beagle.workspace import Workspace
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.models import HKY85
from repro.trees import balanced_tree, pectinate_tree

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


class TestWorkspace:
    def test_ensure_grows_geometrically(self):
        ws = Workspace(np.float64, category_count=2, pattern_count=8, state_count=4)
        assert ws.capacity == 0
        ws.ensure(3)
        assert ws.capacity >= 3
        first = ws.allocations
        cap = ws.capacity
        ws.ensure(cap)  # within capacity: no new allocation
        assert ws.allocations == first
        ws.ensure(cap + 1)  # growth at least doubles
        assert ws.capacity >= 2 * cap
        assert ws.allocations == first + 1

    def test_buffers_have_engine_shapes(self):
        ws = Workspace(np.float32, category_count=3, pattern_count=6, state_count=4)
        ws.ensure(2)
        rows = 2 * ws.capacity
        assert ws.contributions.shape == (rows, 3, 6, 4)
        assert ws.mats.shape == (rows, 3, 4, 4)
        # padded_T carries a ones row at state index S for "unknown" codes.
        assert ws.padded_T.shape == (rows, 3, 5, 4)
        assert ws.codes.shape == (rows, 6)
        assert ws.contributions.dtype == np.float32
        assert ws.scale_logs.dtype == np.float32

    def test_steady_state_executes_without_allocation(self):
        """Repeated plan executions reuse the same buffers: no ensure()
        growth, and the identity of every large array is stable."""
        tree = balanced_tree(16, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 16, seed=1)
        inst = create_instance(tree, MODEL, patterns)
        plan = make_plan(tree)
        execute_plan(inst, plan)  # warm-up sizes the workspace
        ws = inst.workspace
        allocations = ws.allocations
        token = ws.buffer_token()
        values = [execute_plan(inst, plan) for _ in range(5)]
        assert ws.allocations == allocations
        assert ws.buffer_token() == token
        assert len(set(values)) == 1  # bitwise stable, too

    def test_workspace_sized_by_widest_set(self):
        tree = balanced_tree(32, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 8, seed=2)
        inst = create_instance(tree, MODEL, patterns)
        plan = make_plan(tree)
        execute_plan(inst, plan)
        widest = max(plan.set_sizes)
        assert inst.workspace.capacity >= widest

    def test_serial_mode_uses_no_workspace(self):
        tree = pectinate_tree(8, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 8, seed=3)
        inst = create_instance(tree, MODEL, patterns)
        execute_plan(inst, make_plan(tree, "serial"))
        assert inst._workspace is None or inst._workspace.capacity <= 1

    def test_nbytes_reports_footprint(self):
        ws = Workspace(np.float64, category_count=1, pattern_count=4, state_count=4)
        cold = ws.nbytes()  # scaling scratch only
        ws.ensure(2)
        assert ws.nbytes() > cold
