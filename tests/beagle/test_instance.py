"""Unit tests for the BeagleInstance API surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle import BeagleInstance, Operation
from repro.models import HKY85, JC69, discrete_gamma


def make_instance(**overrides):
    kwargs = dict(
        tip_count=4,
        partials_buffer_count=3,
        matrix_count=7,
        pattern_count=8,
        state_count=4,
        category_count=1,
        scale_buffer_count=4,
    )
    kwargs.update(overrides)
    return BeagleInstance(**kwargs)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_instance(tip_count=0)
        with pytest.raises(ValueError):
            make_instance(pattern_count=0)

    def test_flops_property(self):
        inst = make_instance()
        assert inst.flops_per_operation == 8 * 4 * 17


class TestSetters:
    def test_tip_states_roundtrip(self):
        inst = make_instance()
        codes = [0, 1, 2, 3, 4, 0, 1, 2]
        inst.set_tip_states(0, codes)
        partials = inst.get_partials(0)
        assert partials.shape == (1, 8, 4)
        assert np.array_equal(partials[0, 0], [1, 0, 0, 0])
        assert np.array_equal(partials[0, 4], [1, 1, 1, 1])

    def test_tip_states_validation(self):
        inst = make_instance()
        with pytest.raises(IndexError):
            inst.set_tip_states(9, [0] * 8)
        with pytest.raises(ValueError):
            inst.set_tip_states(0, [0] * 5)
        with pytest.raises(ValueError):
            inst.set_tip_states(0, [7] * 8)

    def test_tip_partials(self):
        inst = make_instance(category_count=2)
        mat = np.random.default_rng(0).random((8, 4))
        inst.set_tip_partials(1, mat)
        stored = inst.get_partials(1)
        assert stored.shape == (2, 8, 4)
        assert np.allclose(stored[0], mat)
        assert np.allclose(stored[1], mat)

    def test_tip_partials_replace_states(self):
        inst = make_instance()
        inst.set_tip_states(0, [0] * 8)
        inst.set_tip_partials(0, np.ones((8, 4)))
        assert np.allclose(inst.get_partials(0), 1.0)

    def test_weights_frequencies_validation(self):
        inst = make_instance()
        with pytest.raises(ValueError):
            inst.set_pattern_weights([1.0] * 3)
        with pytest.raises(ValueError):
            inst.set_pattern_weights([-1.0] * 8)
        with pytest.raises(ValueError):
            inst.set_state_frequencies([0.5, 0.5])
        inst.set_state_frequencies([2, 2, 2, 2])  # renormalised
        with pytest.raises(ValueError):
            inst.set_category_weights([0.5, 0.5])  # wrong count

    def test_eigen_validation(self):
        inst = make_instance()
        from repro.models import Poisson

        with pytest.raises(ValueError):
            inst.set_eigen_decomposition(0, Poisson().eigen)  # 20 states


class TestTransitionMatrices:
    def test_update_and_category_rates(self):
        model = JC69()
        inst = make_instance(category_count=2)
        inst.set_category_rates([0.5, 2.0])
        inst.set_eigen_decomposition(0, model.eigen)
        inst.update_transition_matrices(0, [3], [0.2])
        assert np.allclose(inst._matrices[3][0], model.transition_matrix(0.1))
        assert np.allclose(inst._matrices[3][1], model.transition_matrix(0.4))

    def test_missing_eigen(self):
        inst = make_instance()
        with pytest.raises(KeyError):
            inst.update_transition_matrices(0, [0], [0.1])

    def test_mismatched_args(self):
        inst = make_instance()
        inst.set_eigen_decomposition(0, JC69().eigen)
        with pytest.raises(ValueError):
            inst.update_transition_matrices(0, [0, 1], [0.1])

    def test_direct_matrix_set(self):
        inst = make_instance()
        P = JC69().transition_matrix(0.3)
        inst.set_transition_matrix(2, P)
        assert np.allclose(inst._matrices[2][0], P)


class TestExecution:
    def setup_cherry(self, inst):
        """Two tips joined at buffer 4: ((0,1)4)."""
        inst.set_tip_states(0, [0] * 8)
        inst.set_tip_states(1, [1] * 8)
        inst.set_eigen_decomposition(0, JC69().eigen)
        inst.update_transition_matrices(0, [0, 1], [0.1, 0.2])
        return Operation(4, 0, 0, 1, 1)

    def test_single_operation(self):
        inst = make_instance()
        op = self.setup_cherry(inst)
        inst.update_partials_serial([op])
        result = inst.get_partials(4)
        model = JC69()
        expected = np.outer(
            np.ones(8), model.transition_matrix(0.1)[:, 0] * model.transition_matrix(0.2)[:, 1]
        )
        assert np.allclose(result[0], expected)

    def test_stats_counting(self):
        inst = make_instance()
        op = self.setup_cherry(inst)
        inst.update_partials_serial([op])
        assert inst.stats.kernel_launches == 1
        assert inst.stats.operations == 1
        assert inst.stats.flops == inst.flops_per_operation
        inst.stats.reset()
        assert inst.stats.kernel_launches == 0

    def test_set_execution_counts_one_launch(self):
        inst = make_instance()
        self.setup_cherry(inst)
        inst.update_transition_matrices(0, [2, 3], [0.1, 0.3])
        inst.set_tip_states(2, [2] * 8)
        inst.set_tip_states(3, [3] * 8)
        ops = [Operation(4, 0, 0, 1, 1), Operation(5, 2, 2, 3, 3)]
        inst.update_partials_set(ops)
        assert inst.stats.kernel_launches == 1
        assert inst.stats.operations == 2

    def test_set_rejects_dependent_ops(self):
        inst = make_instance()
        self.setup_cherry(inst)
        ops = [Operation(4, 0, 0, 1, 1), Operation(5, 4, 2, 1, 1)]
        with pytest.raises(ValueError):
            inst.update_partials_set(ops)

    def test_read_before_write_rejected(self):
        inst = make_instance()
        self.setup_cherry(inst)
        with pytest.raises(ValueError):
            inst.update_partials_serial([Operation(5, 4, 0, 1, 1)])

    def test_missing_tip_data(self):
        inst = make_instance()
        inst.set_eigen_decomposition(0, JC69().eigen)
        inst.update_transition_matrices(0, [0, 1], [0.1, 0.1])
        with pytest.raises(ValueError):
            inst.update_partials_serial([Operation(4, 0, 0, 1, 1)])

    def test_invalidate_partials(self):
        inst = make_instance()
        op = self.setup_cherry(inst)
        inst.update_partials_serial([op])
        inst.invalidate_partials()
        with pytest.raises(ValueError):
            inst.get_partials(4)

    def test_scaling_writes_buffer(self):
        inst = make_instance()
        op = self.setup_cherry(inst)
        scaled_op = Operation(4, 0, 0, 1, 1, destination_scale=0)
        inst.update_partials_serial([scaled_op])
        logs = inst.scale.read(0)
        assert logs.shape == (8,)
        assert np.all(logs <= 0)  # partials are probabilities < 1
        assert inst.get_partials(4).max() == pytest.approx(1.0)


class TestRootLikelihood:
    def test_known_two_tip_value(self):
        # Likelihood of two tips A, C joined over branches t1 + t2 under
        # JC: pi_z * P(A|z,t1) * P(C|z,t2) summed over z; analytic check.
        model = JC69()
        inst = make_instance(pattern_count=1, scale_buffer_count=0)
        inst.set_tip_states(0, [0])
        inst.set_tip_states(1, [1])
        inst.set_eigen_decomposition(0, model.eigen)
        inst.update_transition_matrices(0, [0, 1], [0.15, 0.25])
        inst.update_partials_serial([Operation(4, 0, 0, 1, 1)])
        ll = inst.calculate_root_log_likelihood(4)
        P1 = model.transition_matrix(0.15)
        P2 = model.transition_matrix(0.25)
        expected = np.log(np.sum(0.25 * P1[:, 0] * P2[:, 1]))
        assert ll == pytest.approx(expected, abs=1e-12)

    def test_root_must_hold_partials(self):
        inst = make_instance()
        inst.set_tip_states(0, [0] * 8)
        with pytest.raises(ValueError):
            inst.calculate_root_log_likelihood(0)

    def test_pattern_weights_multiply(self):
        model = JC69()
        inst = make_instance(pattern_count=2)
        inst.set_tip_states(0, [0, 0])
        inst.set_tip_states(1, [1, 1])
        inst.set_eigen_decomposition(0, model.eigen)
        inst.update_transition_matrices(0, [0, 1], [0.1, 0.1])
        inst.update_partials_serial([Operation(4, 0, 0, 1, 1)])
        base = inst.calculate_root_log_likelihood(4)
        inst.set_pattern_weights([3.0, 5.0])
        weighted = inst.calculate_root_log_likelihood(4)
        assert weighted == pytest.approx(base * 4.0)  # (3+5)/2 per pattern

    def test_edge_likelihood_matches_root(self):
        # Rooting the reduction on the edge above a tip must equal the
        # root reduction of the full tree (pulley principle, in-engine).
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        inst = make_instance(pattern_count=4)
        inst.set_tip_states(0, [0, 1, 2, 3])
        inst.set_tip_states(1, [1, 1, 2, 2])
        inst.set_tip_states(2, [3, 0, 0, 1])
        inst.set_state_frequencies(model.frequencies)
        inst.set_eigen_decomposition(0, model.eigen)
        # Tree ((0,1)4,2)5 with branch matrices 0,1 below 4; 4's own
        # branch matrix 2; tip 2's matrix 3.
        inst.update_transition_matrices(0, [0, 1, 2, 3], [0.1, 0.2, 0.15, 0.3])
        inst.update_partials_serial(
            [Operation(4, 0, 0, 1, 1), Operation(5, 4, 2, 2, 3)]
        )
        root_ll = inst.calculate_root_log_likelihood(5)
        # Edge view: partials at 4, child 2 across combined matrix of
        # t = 0.15 + 0.3 (JC-style merge works for reversible models).
        inst.update_transition_matrices(0, [6], [0.45])
        edge_ll = inst.calculate_edge_log_likelihood(4, 2, 6)
        assert edge_ll == pytest.approx(root_ll, abs=1e-10)


class TestGammaCategories:
    def test_two_categories_average(self):
        model = JC69()
        inst = make_instance(pattern_count=1, category_count=2)
        inst.set_category_rates([0.5, 1.5])
        inst.set_category_weights([0.5, 0.5])
        inst.set_tip_states(0, [0])
        inst.set_tip_states(1, [1])
        inst.set_eigen_decomposition(0, model.eigen)
        inst.update_transition_matrices(0, [0, 1], [0.2, 0.2])
        inst.update_partials_serial([Operation(4, 0, 0, 1, 1)])
        ll = inst.calculate_root_log_likelihood(4)
        site = 0.0
        for rate in (0.5, 1.5):
            P = model.transition_matrix(0.2 * rate)
            site += 0.5 * np.sum(0.25 * P[:, 0] * P[:, 1])
        assert ll == pytest.approx(np.log(site), abs=1e-12)
