"""Unit tests for operation descriptors and dependency analysis."""

from __future__ import annotations

import pytest

from repro.beagle import Operation, operations_independent, validate_operation_order


def op(dest, c1, c2):
    return Operation(dest, c1, c1, c2, c2)


class TestOperation:
    def test_reads(self):
        assert op(8, 0, 1).reads() == (0, 1)

    def test_depends_on(self):
        first = op(8, 0, 1)
        second = op(9, 8, 2)
        third = op(10, 2, 3)
        assert second.depends_on(first)
        assert not third.depends_on(first)
        assert not first.depends_on(second)

    def test_frozen(self):
        with pytest.raises(Exception):
            op(8, 0, 1).destination = 9

    def test_default_no_scaling(self):
        assert op(8, 0, 1).destination_scale == -1


class TestIndependence:
    def test_independent_ops(self):
        assert operations_independent([op(8, 0, 1), op(9, 2, 3)])

    def test_read_after_write(self):
        assert not operations_independent([op(8, 0, 1), op(9, 8, 2)])

    def test_write_before_read_also_conflicts(self):
        # Order within a set must not matter: a set is concurrent.
        assert not operations_independent([op(9, 8, 2), op(8, 0, 1)])

    def test_write_write_collision(self):
        assert not operations_independent([op(8, 0, 1), op(8, 2, 3)])

    def test_empty_and_single(self):
        assert operations_independent([])
        assert operations_independent([op(8, 0, 1)])


class TestValidateOrder:
    def test_good_order(self):
        validate_operation_order([op(8, 0, 1), op(9, 8, 2), op(10, 9, 8)])

    def test_bad_order_raises(self):
        with pytest.raises(ValueError):
            validate_operation_order([op(9, 8, 2), op(8, 0, 1)])

    def test_reads_of_tips_always_fine(self):
        validate_operation_order([op(8, 0, 1), op(9, 2, 3)])
