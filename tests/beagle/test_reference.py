"""Cross-validation of the two reference likelihood implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.beagle import brute_force_log_likelihood, pruning_log_likelihood
from repro.data import Alignment, compress, simulate_alignment
from repro.models import GY94, HKY85, JC69, Poisson, discrete_gamma
from repro.trees import balanced_tree, parse_newick, pectinate_tree
from tests.strategies import small_tree_strategy


class TestBruteForceVsPruning:
    @given(small_tree_strategy(max_tips=5))
    @settings(max_examples=15)
    def test_agree_on_random_trees(self, tree):
        model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
        aln = simulate_alignment(tree, model, 10, seed=0)
        patterns = compress(aln)
        bf = brute_force_log_likelihood(tree, model, patterns)
        pr = pruning_log_likelihood(tree, model, patterns)
        assert bf == pytest.approx(pr, abs=1e-9)

    def test_agree_with_gamma_rates(self):
        tree = balanced_tree(4, branch_length=0.3)
        model = JC69()
        aln = simulate_alignment(tree, model, 15, seed=1)
        patterns = compress(aln)
        rates = discrete_gamma(0.5, 3)
        bf = brute_force_log_likelihood(tree, model, patterns, rates)
        pr = pruning_log_likelihood(tree, model, patterns, rates)
        assert bf == pytest.approx(pr, abs=1e-9)

    def test_agree_with_ambiguity(self):
        tree = parse_newick("((a:0.1,b:0.2):0.1,(c:0.3,d:0.1):0.2);")
        aln = Alignment({"a": "ARN", "b": "ACC", "c": "GC-", "d": "TCW"})
        patterns = compress(aln)
        model = HKY85(2.0)
        bf = brute_force_log_likelihood(tree, model, patterns)
        pr = pruning_log_likelihood(tree, model, patterns)
        assert bf == pytest.approx(pr, abs=1e-9)

    def test_brute_force_size_guard(self):
        tree = pectinate_tree(40, branch_length=0.1)
        aln = simulate_alignment(tree, JC69(), 4, seed=2)
        with pytest.raises(ValueError):
            brute_force_log_likelihood(tree, JC69(), compress(aln))


class TestAnalyticAnchors:
    def test_two_tip_identical_sites(self):
        # Two identical tips A joined by total length t under JC:
        # L = sum_z pi_z P(A|z,t1) P(A|z,t2); for JC this is
        # 0.25 * p_same(t1+t2) by Chapman-Kolmogorov symmetry.
        tree = parse_newick("(a:0.1,b:0.2);")
        aln = Alignment({"a": "A", "b": "A"})
        patterns = compress(aln)
        ll = pruning_log_likelihood(tree, JC69(), patterns)
        t = 0.3
        p_same = 0.25 + 0.75 * np.exp(-4 * t / 3)
        assert ll == pytest.approx(np.log(0.25 * p_same), abs=1e-12)

    def test_all_unknown_gives_zero_loglik(self):
        tree = parse_newick("(a:0.1,b:0.2);")
        aln = Alignment({"a": "N", "b": "N"})
        ll = pruning_log_likelihood(tree, JC69(), compress(aln))
        assert ll == pytest.approx(0.0, abs=1e-12)

    def test_zero_length_star_equals_frequency(self):
        # All branches zero: every tip must show the same state; the
        # likelihood of the constant-A pattern is pi_A.
        tree = parse_newick("((a:0,b:0):0,c:0);")
        aln = Alignment({"a": "A", "b": "A", "c": "A"})
        model = HKY85(2.0, [0.4, 0.2, 0.2, 0.2])
        ll = pruning_log_likelihood(tree, model, compress(aln))
        assert ll == pytest.approx(np.log(0.4), abs=1e-12)

    def test_weighted_patterns(self):
        tree = parse_newick("(a:0.1,b:0.1);")
        aln_expanded = Alignment({"a": "AAAC", "b": "AAAG"})
        aln_unique = Alignment({"a": "AC", "b": "AG"})
        pd_e = compress(aln_expanded)
        pd_u = compress(aln_unique)
        assert pd_e.n_patterns == 2
        ll_e = pruning_log_likelihood(tree, JC69(), pd_e)
        # Manually: 3 * ll(AA) + 1 * ll(CG)
        site = np.exp(
            [
                pruning_log_likelihood(
                    tree, JC69(), compress(Alignment({"a": x, "b": y}))
                )
                for x, y in (("A", "A"), ("C", "G"))
            ]
        )
        assert ll_e == pytest.approx(3 * np.log(site[0]) + np.log(site[1]), abs=1e-10)

    def test_protein_model(self):
        tree = parse_newick("(a:0.2,b:0.3);")
        from repro.data import AMINO_ACID

        aln = Alignment({"a": "MK", "b": "MR"}, AMINO_ACID)
        ll = pruning_log_likelihood(tree, Poisson(), compress(aln))
        # Site 1: same state M; site 2: K vs R.
        t = 0.5
        p_same = 1 / 20 + (19 / 20) * np.exp(-20 * t / 19)
        p_diff = 1 / 20 - (1 / 20) * np.exp(-20 * t / 19)
        expected = np.log(p_same / 20) + np.log(p_diff / 20)
        assert ll == pytest.approx(expected, abs=1e-12)

    def test_codon_model_runs(self):
        tree = balanced_tree(4, branch_length=0.1)
        model = GY94(2.0, 0.3)
        aln = simulate_alignment(tree, model, 5, seed=3)
        ll = pruning_log_likelihood(tree, model, compress(aln))
        assert np.isfinite(ll) and ll < 0
