"""Unit tests for the vectorised likelihood kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle import (
    child_contribution,
    operation_flops,
    rescale_partials,
    root_site_likelihoods,
    update_partials,
    update_partials_batch,
)
from repro.models import HKY85, JC69


@pytest.fixture
def matrices():
    """(C=2, S=4, S=4) transition matrices for two rate categories."""
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    return np.stack([model.transition_matrix(0.1), model.transition_matrix(0.4)])


def naive_contribution(matrices, child_partials):
    C, P, S = child_partials.shape
    out = np.zeros((C, P, S))
    for c in range(C):
        for p in range(P):
            for z in range(S):
                out[c, p, z] = sum(
                    matrices[c, z, x] * child_partials[c, p, x] for x in range(S)
                )
    return out


class TestChildContribution:
    def test_matches_naive_loops(self, matrices):
        rng = np.random.default_rng(0)
        partials = rng.random((2, 5, 4))
        fast = child_contribution(matrices, partials=partials)
        slow = naive_contribution(matrices, partials)
        assert np.allclose(fast, slow, atol=1e-14)

    def test_codes_equal_onehot_partials(self, matrices):
        codes = np.array([0, 3, 1, 2, 0])
        onehot = np.zeros((2, 5, 4))
        for p, s in enumerate(codes):
            onehot[:, p, s] = 1.0
        assert np.allclose(
            child_contribution(matrices, codes=codes),
            child_contribution(matrices, partials=onehot),
            atol=1e-14,
        )

    def test_unknown_code_gives_ones(self, matrices):
        codes = np.array([4, 4])  # unknown
        out = child_contribution(matrices, codes=codes)
        assert np.allclose(out, 1.0)

    def test_requires_exactly_one_source(self, matrices):
        with pytest.raises(ValueError):
            child_contribution(matrices)
        with pytest.raises(ValueError):
            child_contribution(
                matrices, partials=np.ones((2, 1, 4)), codes=np.array([0])
            )


class TestUpdatePartials:
    def test_product_of_contributions(self, matrices):
        rng = np.random.default_rng(1)
        p1 = rng.random((2, 6, 4))
        p2 = rng.random((2, 6, 4))
        dest = update_partials(matrices, matrices, partials1=p1, partials2=p2)
        expected = child_contribution(matrices, partials=p1) * child_contribution(
            matrices, partials=p2
        )
        assert np.allclose(dest, expected, atol=1e-14)

    def test_out_parameter_in_place(self, matrices):
        rng = np.random.default_rng(2)
        p1 = rng.random((2, 3, 4))
        p2 = rng.random((2, 3, 4))
        out = np.empty((2, 3, 4))
        result = update_partials(matrices, matrices, partials1=p1, partials2=p2, out=out)
        assert result is out
        assert np.allclose(out, update_partials(matrices, matrices, partials1=p1, partials2=p2))

    def test_mixed_tip_and_partials(self, matrices):
        rng = np.random.default_rng(3)
        p2 = rng.random((2, 4, 4))
        codes = np.array([0, 1, 2, 4])
        dest = update_partials(matrices, matrices, codes1=codes, partials2=p2)
        assert dest.shape == (2, 4, 4)
        assert np.all(dest >= 0)


class TestBatchedKernel:
    def test_batch_equals_singles(self, matrices):
        rng = np.random.default_rng(4)
        k, C, P, S = 5, 2, 7, 4
        mats1 = np.stack([matrices] * k)
        mats2 = np.stack([matrices[::-1]] * k)
        kids1 = [(rng.random((C, P, S)), None) for _ in range(k)]
        kids2 = [(rng.random((C, P, S)), None) for _ in range(k)]
        outs = np.empty((k, C, P, S))
        update_partials_batch(mats1, mats2, kids1, kids2, outs)
        for i in range(k):
            single = update_partials(
                mats1[i], mats2[i], partials1=kids1[i][0], partials2=kids2[i][0]
            )
            assert np.allclose(outs[i], single, atol=1e-14)

    def test_batch_with_mixed_children(self, matrices):
        rng = np.random.default_rng(5)
        k, C, P, S = 4, 2, 6, 4
        mats = np.stack([matrices] * k)
        kids1 = [
            (rng.random((C, P, S)), None),
            (None, rng.integers(0, 5, size=P)),
            (None, rng.integers(0, 5, size=P)),
            (rng.random((C, P, S)), None),
        ]
        kids2 = [
            (None, rng.integers(0, 5, size=P)),
            (rng.random((C, P, S)), None),
            (None, rng.integers(0, 5, size=P)),
            (rng.random((C, P, S)), None),
        ]
        outs = np.empty((k, C, P, S))
        update_partials_batch(mats, mats, kids1, kids2, outs)
        for i in range(k):
            single = update_partials(
                mats[i],
                mats[i],
                partials1=kids1[i][0],
                codes1=kids1[i][1],
                partials2=kids2[i][0],
                codes2=kids2[i][1],
            )
            assert np.allclose(outs[i], single, atol=1e-14)

    def test_all_code_children(self, matrices):
        rng = np.random.default_rng(6)
        k, P = 3, 5
        mats = np.stack([matrices] * k)
        kids1 = [(None, rng.integers(0, 5, size=P)) for _ in range(k)]
        kids2 = [(None, rng.integers(0, 5, size=P)) for _ in range(k)]
        outs = np.empty((k, 2, P, 4))
        update_partials_batch(mats, mats, kids1, kids2, outs)
        for i in range(k):
            single = update_partials(
                mats[i], mats[i], codes1=kids1[i][1], codes2=kids2[i][1]
            )
            assert np.allclose(outs[i], single, atol=1e-14)

    def test_shape_validation(self, matrices):
        mats = np.stack([matrices])
        with pytest.raises(ValueError):
            update_partials_batch(mats, mats, [], [(None, None)], np.empty((1, 2, 1, 4)))

    def test_rejects_sequence_outs(self, matrices):
        mats = np.stack([matrices])
        kids = [(np.ones((2, 1, 4)), None)]
        with pytest.raises(TypeError, match="stacked"):
            update_partials_batch(mats, mats, kids, kids, [np.empty((2, 1, 4))])

    def test_preserves_float32(self, matrices):
        rng = np.random.default_rng(9)
        k, C, P, S = 2, 2, 3, 4
        mats = np.stack([matrices] * k).astype(np.float32)
        kids1 = [(rng.random((C, P, S), dtype=np.float32), None) for _ in range(k)]
        kids2 = [(None, rng.integers(0, 5, size=P)) for _ in range(k)]
        outs = np.empty((k, C, P, S), dtype=np.float32)
        update_partials_batch(mats, mats, kids1, kids2, outs)
        assert outs.dtype == np.float32
        assert np.all(np.isfinite(outs))


class TestRescale:
    def test_scales_to_max_one(self):
        rng = np.random.default_rng(7)
        partials = rng.random((2, 5, 4)) * 1e-20
        logs = rescale_partials(partials)
        assert partials.max(axis=(0, 2)) == pytest.approx(1.0)
        assert logs.shape == (5,)
        assert np.all(logs < 0)  # tiny values -> negative log factors

    def test_reconstruction(self):
        rng = np.random.default_rng(8)
        original = rng.random((1, 4, 4))
        partials = original.copy()
        logs = rescale_partials(partials)
        assert np.allclose(partials * np.exp(logs)[None, :, None], original)

    def test_zero_pattern_kept_visible(self):
        partials = np.zeros((1, 2, 4))
        partials[0, 0, :] = 0.5
        logs = rescale_partials(partials)
        assert logs[1] == 0.0
        assert np.all(partials[0, 1] == 0.0)


class TestRootReduction:
    def test_uniform_case(self):
        # Root partials all ones with uniform frequencies -> site lik 1.
        partials = np.ones((2, 3, 4))
        site = root_site_likelihoods(
            partials, np.full(4, 0.25), np.array([0.5, 0.5])
        )
        assert np.allclose(site, 1.0)

    def test_category_weighting(self):
        partials = np.zeros((2, 1, 4))
        partials[0] = 1.0  # category 0 likelihood 1, category 1 zero
        site = root_site_likelihoods(
            partials, np.full(4, 0.25), np.array([0.3, 0.7])
        )
        assert site[0] == pytest.approx(0.3)


class TestFlops:
    def test_formula(self):
        assert operation_flops(512, 4, 1) == 512 * 4 * 17
        assert operation_flops(100, 20, 4) == 4 * 100 * 20 * 81

    def test_scales_linearly_in_patterns(self):
        assert operation_flops(1000, 4) == 10 * operation_flops(100, 4)
