"""Single- vs double-precision behaviour (the paper's §VI-F motivation).

The paper enables ``--manualscale`` because single-precision partials
underflow on trees with many taxa. These tests reproduce that failure
mode in the engine and show rescaling curing it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.inference import TreeLikelihood
from repro.models import HKY85, JC69
from repro.trees import balanced_tree, pectinate_tree


MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


def loglik(tree, patterns, dtype, scaling=False):
    inst = create_instance(tree, MODEL, patterns, scaling=scaling, dtype=dtype)
    return execute_plan(inst, make_plan(tree, scaling=scaling))


class TestDtypePlumbing:
    def test_instance_dtype(self):
        tree = balanced_tree(4)
        patterns = random_patterns(tree.tip_names(), 8, seed=1)
        inst = create_instance(tree, MODEL, patterns, dtype=np.float32)
        assert inst._partials.dtype == np.float32
        assert inst._matrices.dtype == np.float32

    def test_rejects_odd_dtype(self):
        from repro.beagle import BeagleInstance

        with pytest.raises(ValueError):
            BeagleInstance(2, 1, 3, 4, 4, dtype=np.int32)

    def test_treelikelihood_precision_option(self):
        tree = balanced_tree(8, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 16, seed=2)
        single = TreeLikelihood(tree, MODEL, patterns, precision="single")
        double = TreeLikelihood(tree, MODEL, patterns)
        assert single.log_likelihood() == pytest.approx(
            double.log_likelihood(), rel=1e-4
        )
        with pytest.raises(ValueError):
            TreeLikelihood(tree, MODEL, patterns, precision="half")

    def test_precision_propagates_to_derived_evaluators(self):
        tree = pectinate_tree(8, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 8, seed=3)
        single = TreeLikelihood(tree, MODEL, patterns, precision="single")
        assert single.rerooted_for_concurrency().precision == "single"
        assert single.with_tree(tree.copy()).precision == "single"

    def test_kernels_preserve_instance_dtype(self):
        """The batched kernel path must never silently widen float32:
        every working buffer, workspace scratch array and stored partial
        keeps the instance dtype end to end."""
        tree = balanced_tree(8, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 16, seed=7)
        for dtype in (np.float32, np.float64):
            inst = create_instance(tree, MODEL, patterns, dtype=dtype)
            execute_plan(inst, make_plan(tree))
            assert inst._partials.dtype == dtype
            assert inst._matrices.dtype == dtype
            ws = inst.workspace
            assert ws.contributions.dtype == dtype
            assert ws.scratch.dtype == dtype
            assert ws.gathered.dtype == dtype
            assert ws.mats.dtype == dtype
            assert ws.padded_T.dtype == dtype

    def test_child_contribution_dtype_follows_matrices(self):
        from repro.beagle.kernels import child_contribution

        mats = np.eye(4, dtype=np.float32)[None].repeat(2, axis=0)
        part = np.full((2, 8, 4), 0.25, dtype=np.float32)
        out = child_contribution(mats, partials=part)
        assert out.dtype == np.float32
        codes = np.zeros(8, dtype=np.int64)
        assert child_contribution(mats, codes=codes).dtype == np.float32


class TestAccuracy:
    def test_small_tree_agreement(self):
        tree = balanced_tree(16, branch_length=0.2)
        patterns = random_patterns(tree.tip_names(), 32, seed=4)
        f64 = loglik(tree, patterns, np.float64)
        f32 = loglik(tree, patterns, np.float32)
        assert f32 == pytest.approx(f64, rel=1e-4)

    def test_single_precision_underflows_first(self):
        """Find a depth where float32 underflows but float64 survives —
        the exact situation the paper's --manualscale addresses."""
        for n in (80, 160, 320, 640, 1280):
            tree = pectinate_tree(n, branch_length=0.8)
            patterns = random_patterns(tree.tip_names(), 4, seed=5)
            f32 = loglik(tree, patterns, np.float32)
            f64 = loglik(tree, patterns, np.float64)
            if f32 == -np.inf and np.isfinite(f64):
                break
        else:
            pytest.fail("no size exhibited single-precision-only underflow")

    def test_manual_scaling_rescues_single_precision(self):
        tree = pectinate_tree(320, branch_length=0.8)
        patterns = random_patterns(tree.tip_names(), 4, seed=5)
        unscaled = loglik(tree, patterns, np.float32)
        scaled = loglik(tree, patterns, np.float32, scaling=True)
        reference = loglik(tree, patterns, np.float64, scaling=True)
        assert unscaled == -np.inf
        assert np.isfinite(scaled)
        assert scaled == pytest.approx(reference, rel=1e-3)

    def test_reroot_invariance_holds_in_single_precision(self):
        tree = pectinate_tree(24, branch_length=0.15)
        patterns = random_patterns(sorted(tree.tip_names()), 16, seed=6)
        base = TreeLikelihood(tree, MODEL, patterns, precision="single")
        rerooted = base.rerooted_for_concurrency()
        assert rerooted.log_likelihood() == pytest.approx(
            base.log_likelihood(), rel=1e-4
        )
