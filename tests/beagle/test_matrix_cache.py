"""The LRU transition-matrix cache: hits, eviction, and bit-identity.

Inference loops re-derive the same ``P(t)`` constantly — a single-edge
proposal changes one matrix and leaves ``n − 2`` untouched. The cache
serves repeated (eigen, rates, length) triples with the exact array the
original miss computed, so likelihoods are bitwise unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle.workspace import TransitionMatrixCache
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.inference import TreeLikelihood
from repro.models import HKY85, discrete_gamma
from repro.obs import recording
from repro.trees import balanced_tree

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


def _case(n_taxa=8, n_patterns=16, seed=1, branch_length=0.1):
    tree = balanced_tree(n_taxa, branch_length=branch_length)
    patterns = random_patterns(tree.tip_names(), n_patterns, seed=seed)
    return tree, patterns


class TestCacheMechanics:
    def test_validates_construction(self):
        with pytest.raises(ValueError):
            TransitionMatrixCache(capacity=0)
        with pytest.raises(ValueError):
            TransitionMatrixCache(quantum=-0.1)

    def test_lru_eviction(self):
        cache = TransitionMatrixCache(capacity=2)
        eigen = object()
        keys = [cache.key_for(eigen, b"r", t) for t in (0.1, 0.2, 0.3)]
        cache.store(keys[0], np.zeros(1))
        cache.store(keys[1], np.ones(1))
        assert cache.lookup(keys[0]) is not None  # refreshes 0.1
        cache.store(keys[2], np.full(1, 2.0))  # evicts 0.2, the LRU
        assert cache.lookup(keys[1]) is None
        assert cache.lookup(keys[0]) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_quantization_snaps_keys(self):
        exact = TransitionMatrixCache()
        assert exact.effective_length(0.123456) == 0.123456
        coarse = TransitionMatrixCache(quantum=0.01)
        assert coarse.effective_length(0.123456) == pytest.approx(0.12)
        assert coarse.effective_length(-0.001) == 0.0
        assert coarse.key_for("e", b"r", 0.1201) == coarse.key_for(
            "e", b"r", 0.1199
        )

    def test_distinct_rates_versions_do_not_alias(self):
        cache = TransitionMatrixCache()
        eigen = object()
        assert cache.key_for(eigen, b"a", 0.1) != cache.key_for(eigen, b"b", 0.1)


class TestEngineIntegration:
    def test_instance_hits_on_repeated_lengths(self):
        tree, patterns = _case()
        cache = TransitionMatrixCache()
        inst = create_instance(tree, MODEL, patterns)
        inst.matrix_cache = cache
        plan = make_plan(tree)
        baseline = execute_plan(inst, plan)
        assert cache.misses >= 1
        # Constant branch lengths: after the first matrix, every further
        # one in the first evaluation — and all of the second — hit.
        hits_after_first = cache.hits
        assert hits_after_first > 0
        value = execute_plan(inst, plan)
        assert value == baseline  # bit-identical through the cache
        assert cache.misses == 1  # one distinct length in the whole tree
        assert cache.hits > hits_after_first

    def test_cache_is_bit_identical_to_uncached(self):
        tree, patterns = _case(n_taxa=16, seed=3)
        rates = discrete_gamma(0.5, 4)
        plain = TreeLikelihood(tree.copy(), MODEL, patterns, rates=rates)
        cached = TreeLikelihood(
            tree.copy(), MODEL, patterns, rates=rates, matrix_cache=True
        )
        assert plain.log_likelihood() == cached.log_likelihood()
        assert cached.matrix_cache.hits > 0

    def test_shared_cache_across_derived_evaluators(self):
        """with_tree/rerooted evaluators share one model, hence one eigen
        object, hence cache keys — the shared cache serves all of them."""
        tree, patterns = _case(n_taxa=8, seed=4)
        base = TreeLikelihood(tree, MODEL, patterns, matrix_cache=True)
        base.log_likelihood()
        misses = base.matrix_cache.misses
        derived = base.with_tree(tree.copy())
        assert derived.matrix_cache is base.matrix_cache
        derived.log_likelihood()
        assert base.matrix_cache.misses == misses  # fully served by cache
        rerooted = base.rerooted_for_concurrency()
        assert rerooted.matrix_cache is base.matrix_cache

    def test_counters_exported_through_obs(self):
        tree, patterns = _case(seed=5)
        with recording() as rec:
            ev = TreeLikelihood(tree, MODEL, patterns, matrix_cache=True)
            ev.log_likelihood()
            ev.invalidate()
            ev.log_likelihood()
        dump = rec.metrics.to_prometheus()
        assert "repro_matrix_cache_hits_total" in dump
        assert "repro_matrix_cache_misses_total" in dump


class TestTreeLikelihoodOption:
    def test_matrix_cache_argument_forms(self):
        tree, patterns = _case()
        assert TreeLikelihood(tree, MODEL, patterns).matrix_cache is None
        assert (
            TreeLikelihood(tree, MODEL, patterns, matrix_cache=False).matrix_cache
            is None
        )
        enabled = TreeLikelihood(tree, MODEL, patterns, matrix_cache=True)
        assert isinstance(enabled.matrix_cache, TransitionMatrixCache)
        own = TransitionMatrixCache(capacity=7)
        passed = TreeLikelihood(tree, MODEL, patterns, matrix_cache=own)
        assert passed.matrix_cache is own
