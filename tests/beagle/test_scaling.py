"""Unit tests for scale-buffer management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle import ScaleBufferBank


class TestScaleBufferBank:
    def test_construction(self):
        bank = ScaleBufferBank(3, 10)
        assert bank.count == 3
        assert np.all(bank.read(0) == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleBufferBank(-1, 10)
        with pytest.raises(ValueError):
            ScaleBufferBank(2, 0)

    def test_write_read(self):
        bank = ScaleBufferBank(2, 4)
        logs = np.array([-1.0, -2.0, 0.0, -0.5])
        bank.write(1, logs)
        assert np.array_equal(bank.read(1), logs)
        assert np.all(bank.read(0) == 0.0)

    def test_read_returns_copy(self):
        bank = ScaleBufferBank(1, 2)
        out = bank.read(0)
        out[:] = 99.0
        assert np.all(bank.read(0) == 0.0)

    def test_out_of_range(self):
        bank = ScaleBufferBank(2, 4)
        with pytest.raises(IndexError):
            bank.read(2)
        with pytest.raises(IndexError):
            bank.write(-1, np.zeros(4))

    def test_reset(self):
        bank = ScaleBufferBank(2, 3)
        bank.write(0, np.full(3, -1.0))
        bank.reset(0)
        assert np.all(bank.read(0) == 0.0)

    def test_reset_all(self):
        bank = ScaleBufferBank(3, 2)
        for i in range(3):
            bank.write(i, np.full(2, -float(i + 1)))
        bank.reset_all()
        assert all(np.all(bank.read(i) == 0.0) for i in range(3))

    def test_accumulate(self):
        bank = ScaleBufferBank(4, 2)
        bank.write(0, np.array([-1.0, -2.0]))
        bank.write(1, np.array([-3.0, -4.0]))
        bank.accumulate([0, 1], 3)
        assert np.array_equal(bank.read(3), [-4.0, -6.0])

    def test_accumulate_self_rejected(self):
        bank = ScaleBufferBank(2, 2)
        with pytest.raises(ValueError):
            bank.accumulate([0, 1], 1)


class TestWriteShapeValidation:
    """Regression: ``write`` used to silently *broadcast* wrong shapes.

    A scalar, a length-1 vector, or a ``(k, n_patterns)`` block all
    broadcast into ``self._logs[index]`` without complaint, corrupting
    every accumulated likelihood downstream. They must raise instead.
    """

    def test_scalar_rejected(self):
        bank = ScaleBufferBank(2, 4)
        with pytest.raises(ValueError):
            bank.write(0, -1.0)

    def test_short_vector_rejected(self):
        bank = ScaleBufferBank(2, 4)
        with pytest.raises(ValueError):
            bank.write(0, np.array([-1.0]))

    def test_long_vector_rejected(self):
        bank = ScaleBufferBank(2, 4)
        with pytest.raises(ValueError):
            bank.write(0, np.zeros(5))

    def test_2d_block_rejected(self):
        bank = ScaleBufferBank(2, 4)
        with pytest.raises(ValueError):
            bank.write(0, np.zeros((1, 4)))

    def test_error_names_expected_shape(self):
        bank = ScaleBufferBank(2, 4)
        with pytest.raises(ValueError, match=r"\(4,\)"):
            bank.write(0, np.zeros(3))

    def test_correct_shape_still_accepted(self):
        bank = ScaleBufferBank(2, 4)
        bank.write(0, [-1.0, -2.0, -3.0, -4.0])  # list coerces fine
        assert np.array_equal(bank.read(0), [-1.0, -2.0, -3.0, -4.0])

    def test_rejected_write_leaves_buffer_untouched(self):
        bank = ScaleBufferBank(1, 3)
        bank.write(0, np.array([-1.0, -2.0, -3.0]))
        with pytest.raises(ValueError):
            bank.write(0, np.zeros(2))
        assert np.array_equal(bank.read(0), [-1.0, -2.0, -3.0])
