"""Key-collision audit of the transition-matrix cache under quantization.

ISSUE satellite: when ``quantum > 0``, distinct branch lengths share a
cache key on purpose. The audit's conclusion — encoded here as
regression tests — is that every such collision is *benign*: the key's
length component and the length the miss is computed at are the **same**
value (``effective_length(t)``), so a colliding lookup is served a
matrix computed at exactly the length its key names. A stale cache can
therefore only arise from a rates-version bypass (mutating the category
rates in place instead of through ``set_category_rates``), which the
``check_cache_coherence`` lint detects.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import check_cache_coherence
from repro.beagle.workspace import TransitionMatrixCache
from repro.core import create_instance, make_plan
from repro.data import random_patterns
from repro.models import HKY85
from repro.trees import balanced_tree

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])

lengths = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
quanta = st.sampled_from([0.0, 1e-4, 1e-3, 0.01, 0.1])


def _instance(quantum=0.0):
    tree = balanced_tree(8, branch_length=0.1)
    patterns = random_patterns(tree.tip_names(), 12, seed=2)
    inst = create_instance(tree, MODEL, patterns)
    inst.matrix_cache = TransitionMatrixCache(quantum=quantum)
    return inst


class TestKeyCollisionAudit:
    @given(lengths, lengths, quanta)
    def test_keys_collide_iff_effective_lengths_agree(self, t1, t2, quantum):
        # The invariant that makes every collision benign: the key is a
        # pure function of effective_length, and effective_length is
        # also what the miss computes at.
        cache = TransitionMatrixCache(quantum=quantum)
        eigen = object()
        same_key = cache.key_for(eigen, b"r", t1) == cache.key_for(
            eigen, b"r", t2
        )
        same_length = cache.effective_length(t1) == cache.effective_length(t2)
        assert same_key == same_length

    @given(lengths)
    def test_exact_mode_never_merges_distinct_lengths(self, t):
        cache = TransitionMatrixCache()  # quantum = 0
        eigen = object()
        if t + 1e-9 != t:
            assert cache.key_for(eigen, b"r", t) != cache.key_for(
                eigen, b"r", t + 1e-9
            )

    def test_colliding_lookup_serves_the_snapped_length_matrix(self):
        # 0.1199 and 0.1201 share the 0.12 cell. The second update must
        # be served the matrix computed at 0.12 — bit-identical to an
        # uncached computation at the snapped length.
        quantized = _instance(quantum=0.01)
        quantized.update_transition_matrices(0, [0], [0.1199])
        quantized.update_transition_matrices(0, [1], [0.1201])
        assert quantized.matrix_cache.misses == 1
        assert quantized.matrix_cache.hits == 1
        np.testing.assert_array_equal(
            quantized._matrices[0], quantized._matrices[1]
        )
        exact = _instance()  # no quantization, same model hence eigens
        exact.update_transition_matrices(0, [0], [0.12])
        np.testing.assert_array_equal(
            quantized._matrices[1], exact._matrices[0]
        )

    def test_distinct_cells_never_collide(self):
        cache = TransitionMatrixCache(quantum=0.01)
        eigen = object()
        assert cache.key_for(eigen, b"r", 0.12) != cache.key_for(
            eigen, b"r", 0.13
        )


class TestRatesVersioning:
    def test_rates_change_invalidates_without_stale_hits(self):
        inst = _instance()
        inst.update_transition_matrices(0, [0], [0.1])
        assert inst.matrix_cache.misses == 1
        before = inst._matrices[0].copy()
        inst.set_category_rates([2.0])
        inst.update_transition_matrices(0, [0], [0.1])
        # New rates version -> new key -> a miss, never a stale hit.
        assert inst.matrix_cache.misses == 2
        assert inst.matrix_cache.hits == 0
        assert not np.array_equal(inst._matrices[0], before)

    def test_coherence_lint_passes_on_well_behaved_instance(self):
        inst = _instance()
        inst.update_transition_matrices(0, [0], [0.1])
        inst.set_category_rates([2.0])
        assert check_cache_coherence(inst) == []

    def test_in_place_rates_mutation_is_flagged(self):
        # The one real staleness hazard: bypassing set_category_rates
        # leaves _rates_key describing the old rates, so cached entries
        # keyed under it would be served for the *new* rates.
        inst = _instance()
        inst.update_transition_matrices(0, [0], [0.1])
        inst._category_rates *= 2.0  # bypasses the version bump
        diagnostics = check_cache_coherence(inst)
        assert [d.code for d in diagnostics] == ["stale-rates-key"]

    def test_executed_plans_stay_coherent(self):
        from repro.core import execute_plan

        tree = balanced_tree(8, branch_length=0.1)
        patterns = random_patterns(tree.tip_names(), 12, seed=2)
        inst = create_instance(tree, MODEL, patterns)
        inst.matrix_cache = TransitionMatrixCache(quantum=0.01)
        plan = make_plan(tree, "concurrent")
        execute_plan(inst, plan)
        assert check_cache_coherence(inst) == []
