"""Engine-level tests for the pre-order upper-partial bank.

The load-bearing parity fact: after one ``execute_gradient_plan`` sweep,
the upper buffer of every non-root node holds, bit for bit, the far-side
half-tree partials that a per-edge rerooted evaluation computes for that
branch — across every bit-identical backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beagle.resources import list_resources, resolve_backend
from repro.core import execute_gradient_plan, make_gradient_plan
from repro.core.planner import create_instance
from repro.data import compress, simulate_alignment
from repro.inference import DerivativeSession, canonical_edges
from repro.models import HKY85
from repro.trees import balanced_tree, pectinate_tree, yule_tree
from repro.trees.reroot import reroot_above

MODEL = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])


def sweep_instance(tree, patterns, backend=None, dtype=np.float64):
    instance = create_instance(
        tree, MODEL, patterns, dtype=dtype, backend=backend
    )
    gplan = make_gradient_plan(tree)
    execute_gradient_plan(instance, gplan)
    return instance


def make_patterns(tree, n_sites=32, seed=4):
    return compress(simulate_alignment(tree, MODEL, n_sites, seed=seed))


class TestUpperBankLifecycle:
    def test_enable_is_idempotent(self):
        tree = balanced_tree(4, branch_length=0.1)
        instance = create_instance(tree, MODEL, make_patterns(tree))
        instance.enable_upper_partials()
        bank = instance._upper
        instance.enable_upper_partials()
        assert instance._upper is bank

    def test_read_before_enable_raises(self):
        tree = balanced_tree(4, branch_length=0.1)
        instance = create_instance(tree, MODEL, make_patterns(tree))
        with pytest.raises(ValueError, match="not enabled"):
            instance.upper_partials(0)

    def test_read_before_compute_raises(self):
        tree = balanced_tree(4, branch_length=0.1)
        instance = create_instance(tree, MODEL, make_patterns(tree))
        instance.enable_upper_partials()
        with pytest.raises(ValueError, match="read before being computed"):
            instance.upper_partials(0)

    def test_out_of_range_raises(self):
        tree = balanced_tree(4, branch_length=0.1)
        instance = create_instance(tree, MODEL, make_patterns(tree))
        instance.enable_upper_partials()
        with pytest.raises(IndexError, match="out of range"):
            instance.upper_partials(instance.upper_base)

    def test_invalidate_forces_recompute(self):
        tree = balanced_tree(4, branch_length=0.1)
        patterns = make_patterns(tree)
        instance = sweep_instance(tree, patterns)
        instance.upper_partials(0)  # computed
        instance.invalidate_upper_partials()
        with pytest.raises(ValueError, match="read before being computed"):
            instance.upper_partials(0)

    def test_dependent_set_rejected(self):
        tree = pectinate_tree(6, branch_length=0.1)
        patterns = make_patterns(tree)
        instance = create_instance(tree, MODEL, patterns)
        instance.enable_upper_partials()
        gplan = make_gradient_plan(tree, "serial")
        chained = [s[0] for s in gplan.upper_operation_sets]
        # A pectinate pre-order pass is a strict chain: flattening it
        # into one launch is exactly the hazard the guard must catch.
        if len(chained) > 1:
            with pytest.raises(ValueError, match="internal dependencies"):
                instance.update_upper_partials_set(chained)

    def test_upper_ops_require_enabled_bank(self):
        tree = balanced_tree(4, branch_length=0.1)
        instance = create_instance(tree, MODEL, make_patterns(tree))
        gplan = make_gradient_plan(tree)
        with pytest.raises(ValueError, match="not enabled"):
            instance.update_upper_partials_set(gplan.upper_operation_sets[0])


class TestUpperEqualsRerootedFarSide:
    @pytest.mark.parametrize(
        "tree",
        [
            balanced_tree(8, branch_length=0.15),
            pectinate_tree(7, branch_length=0.1),
        ],
        ids=["balanced", "pectinate"],
    )
    def test_bitwise_equal_to_oracle_half_tree(self, tree):
        patterns = make_patterns(tree)
        instance = sweep_instance(tree, patterns)
        session = DerivativeSession(MODEL, patterns)
        for edge in canonical_edges(tree):
            rerooted = reroot_above(tree, edge, fraction=0.0)
            _, V, _ = session.half_tree_partials(rerooted)
            upper = instance.upper_partials(tree.index_of(edge))
            assert np.array_equal(upper, V), edge.name or "internal"

    def test_float32_bank_dtype(self):
        tree = balanced_tree(4, branch_length=0.1)
        patterns = make_patterns(tree)
        instance = sweep_instance(tree, patterns, dtype=np.float32)
        assert instance.upper_partials(0).dtype == np.float32


class TestBackendBitIdentity:
    @pytest.mark.parametrize("backend", ["blocked", "pattern-blocked"])
    def test_upper_bank_matches_reference(self, backend):
        tree = yule_tree(9, np.random.default_rng(6))
        patterns = make_patterns(tree)
        ref = sweep_instance(tree, patterns, backend="reference")
        alt = sweep_instance(tree, patterns, backend=backend)
        for node in tree.root.traverse_postorder():
            if node.parent is None or node is tree.root.children[1]:
                continue
            index = tree.index_of(node)
            assert np.array_equal(
                ref.upper_partials(index), alt.upper_partials(index)
            )

    def test_sweep_never_touches_scale_bank(self):
        # The gradient engine runs unscaled, like the per-edge oracle;
        # rescaling an upper destination would silently break parity.
        tree = balanced_tree(8, branch_length=0.1)
        patterns = make_patterns(tree)
        instance = sweep_instance(tree, patterns)
        assert instance.scale.count == 0


class TestPatternBlockedResource:
    def test_registered_and_bit_identical(self):
        names = [d.name for d in list_resources()]
        assert "pattern-blocked" in names
        backend = resolve_backend("pattern-blocked")
        assert backend.info.parity == "bit-identical"
        assert backend.info.tolerance == 0.0
        assert backend.info.kind == "cpu"
