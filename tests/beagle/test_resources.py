"""The kernel-backend resource registry and its resolution funnel."""

from __future__ import annotations

import io

import pytest

from repro.beagle import (
    BACKEND_ENV_VAR,
    BackendInfo,
    BlockedNumpyBackend,
    KernelBackend,
    ReferenceBackend,
    ResourceRequirements,
    UnknownResourceError,
    acquire,
    available_resources,
    list_resources,
    register_resource,
    resolve_backend,
)
from repro.beagle.resources import DEFAULT_RESOURCE, main


class TestRegistry:
    def test_reference_and_blocked_registered(self):
        names = available_resources()
        assert names[0] == "reference"  # preference order: ground truth first
        assert "blocked" in names

    def test_list_resources_returns_descriptors(self):
        infos = list_resources()
        assert all(isinstance(info, BackendInfo) for info in infos)
        assert [i.name for i in infos] == available_resources()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_resource("reference", ReferenceBackend)

    def test_replace_allows_reregistration(self):
        register_resource("reference", ReferenceBackend, replace=True)
        assert isinstance(acquire("reference"), ReferenceBackend)


class TestAcquire:
    def test_by_name(self):
        assert isinstance(acquire("blocked"), BlockedNumpyBackend)

    def test_default_is_reference(self):
        assert acquire().info.name == DEFAULT_RESOURCE == "reference"

    def test_unknown_name_is_typed_and_lists_available(self):
        with pytest.raises(UnknownResourceError) as excinfo:
            acquire("does-not-exist")
        err = excinfo.value
        assert err.requested == "does-not-exist"
        assert err.available == available_resources()
        # The message itself must name the available resources.
        for name in available_resources():
            assert name in str(err)

    def test_unknown_is_a_lookup_error(self):
        # CLIs can catch LookupError without importing the module.
        with pytest.raises(LookupError):
            acquire("nope")

    def test_by_requirements_first_match_wins(self):
        backend = acquire(ResourceRequirements(kind="cpu"))
        assert backend.info.name == "reference"

    def test_by_requirements_name_filter(self):
        backend = acquire(ResourceRequirements(name="blocked"))
        assert isinstance(backend, BlockedNumpyBackend)

    def test_unsatisfiable_requirements_raise(self):
        with pytest.raises(UnknownResourceError):
            acquire(ResourceRequirements(kind="tpu"))


class TestResolveBackend:
    def test_none_resolves_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).info.name == "reference"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked")
        assert isinstance(resolve_backend(None), BlockedNumpyBackend)

    def test_env_var_consulted_per_call(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked")
        first = resolve_backend(None)
        monkeypatch.delenv(BACKEND_ENV_VAR)
        second = resolve_backend(None)
        assert first.info.name == "blocked"
        assert second.info.name == "reference"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked")
        assert resolve_backend("reference").info.name == "reference"

    def test_backend_object_passes_through(self):
        backend = BlockedNumpyBackend(block_ops=3)
        assert resolve_backend(backend) is backend

    def test_protocol_is_runtime_checkable(self):
        assert isinstance(ReferenceBackend(), KernelBackend)
        assert isinstance(BlockedNumpyBackend(), KernelBackend)

    def test_garbage_spec_raises_type_error(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)


class TestListingCli:
    def test_module_listing_output(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        out = io.StringIO()
        assert main([], out=out) == 0
        text = out.getvalue()
        assert "kernel backend resource(s):" in text
        for name in available_resources():
            assert name in text
        assert "default resource: reference (built-in default" in text

    def test_module_listing_reports_env_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked")
        out = io.StringIO()
        main([], out=out)
        assert f"default resource: blocked (${BACKEND_ENV_VAR}" in out.getvalue()
