"""Kernel-backend conformance: contract, bit-identity, doc drift."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.beagle import (
    NUMBA_AVAILABLE,
    BackendInfo,
    BlockedNumpyBackend,
    KernelBackend,
    NumbaBackend,
    ReferenceBackend,
    Workspace,
    parity_report,
)
from repro.bench.harness import build_tree
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.models import random_gtr

DOCS = Path(__file__).resolve().parents[2] / "docs" / "BACKENDS.md"


def _case(n_tips=12, n_patterns=40, seed=3):
    rng = np.random.default_rng(seed)
    tree = build_tree("random", n_tips, seed)
    for edge in tree.edges():
        edge.length = float(rng.exponential(0.1))
    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), n_patterns, rng=rng)
    return tree, model, patterns


def _loglik(backend, case, dtype=np.float64, mode="concurrent", scaling=False):
    tree, model, patterns = case
    instance = create_instance(
        tree, model, patterns, dtype=dtype, backend=backend, scaling=scaling
    )
    return execute_plan(instance, make_plan(tree, mode, scaling=scaling))


class TestBackendInfo:
    def test_bit_identical_requires_zero_tolerance(self):
        with pytest.raises(ValueError):
            BackendInfo(name="x", description="d", tolerance=1e-9)

    def test_unknown_parity_class_rejected(self):
        with pytest.raises(ValueError):
            BackendInfo(name="x", description="d", parity="close-enough")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            BackendInfo(
                name="x", description="d", parity="tolerance", tolerance=-1.0
            )


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "backend", [ReferenceBackend(), BlockedNumpyBackend()]
    )
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, KernelBackend)
        info = backend.info
        assert info.name and info.description and info.kind == "cpu"

    @pytest.mark.parametrize(
        "backend", [ReferenceBackend(), BlockedNumpyBackend()]
    )
    def test_create_workspace_shape(self, backend):
        ws = backend.create_workspace(np.float64, 2, 16, 4)
        assert isinstance(ws, Workspace)
        assert ws.compatible_with(np.float64, 2, 16, 4)

    @pytest.mark.parametrize(
        "backend", [ReferenceBackend(), BlockedNumpyBackend()]
    )
    def test_rescale_and_root_reduce_shapes(self, backend):
        rng = np.random.default_rng(0)
        partials = rng.uniform(0.1, 1.0, size=(2, 8, 4))
        logs = backend.rescale(partials)
        assert logs.shape == (8,)
        assert np.all(partials.max(axis=(0, 2)) <= 1.0 + 1e-12)
        freqs = np.full(4, 0.25)
        weights = np.full(2, 0.5)
        site = backend.root_reduce(partials, freqs, weights)
        assert site.shape == (8,)
        assert np.all(site > 0)


class TestBlockedBitIdentity:
    """The tentpole guarantee: blocking never changes a single bit."""

    @pytest.mark.parametrize("block", [1, 3, 8, 1024])
    def test_explicit_block_sizes(self, block):
        case = _case()
        expected = _loglik(ReferenceBackend(), case)
        got = _loglik(BlockedNumpyBackend(block_ops=block), case)
        assert got == expected  # exact, not approx

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_both_precisions(self, dtype):
        case = _case()
        expected = _loglik(ReferenceBackend(), case, dtype=dtype)
        got = _loglik(BlockedNumpyBackend(block_ops=2), case, dtype=dtype)
        assert got == expected

    def test_with_scaling(self):
        case = _case()
        expected = _loglik(ReferenceBackend(), case, scaling=True)
        got = _loglik(BlockedNumpyBackend(block_ops=2), case, scaling=True)
        assert got == expected

    def test_serial_mode(self):
        case = _case()
        expected = _loglik(ReferenceBackend(), case, mode="serial")
        got = _loglik(BlockedNumpyBackend(block_ops=2), case, mode="serial")
        assert got == expected

    def test_parity_battery_green(self):
        report = parity_report("blocked", n_taxa=8, n_patterns=24)
        assert report.ok
        assert report.bit_identical
        assert report.measured_class == "bit-identical"

    def test_auto_block_scales_with_row_size(self):
        backend = BlockedNumpyBackend()
        wide = create_instance(
            *_case(n_tips=6, n_patterns=512), backend=backend
        )
        narrow = create_instance(
            *_case(n_tips=6, n_patterns=8), backend=backend
        )
        assert backend.block_for(narrow) >= backend.block_for(wide)
        assert 4 <= backend.block_for(wide) <= 64

    def test_invalid_block_config_rejected(self):
        with pytest.raises(ValueError):
            BlockedNumpyBackend(block_ops=0)
        with pytest.raises(ValueError):
            BlockedNumpyBackend(cache_budget_bytes=-1)


class TestSharedArena:
    def test_arena_adoption_across_backends(self):
        """One arena may serve instances on different backends."""
        case = _case()
        expected = _loglik(ReferenceBackend(), case)
        tree, model, patterns = case
        ref = create_instance(tree, model, patterns, backend="reference")
        blk = create_instance(tree, model, patterns, backend="blocked")
        blk.adopt_workspace(ref.workspace)
        plan = make_plan(tree, "concurrent")
        assert execute_plan(ref, plan) == expected
        assert execute_plan(blk, plan) == expected


class TestNumbaGating:
    def test_construction_requires_numba(self):
        if NUMBA_AVAILABLE:  # pragma: no cover - depends on environment
            backend = NumbaBackend()
            assert backend.info.parity == "tolerance"
        else:
            with pytest.raises(ImportError, match="numba"):
                NumbaBackend()

    def test_registry_omits_numba_when_absent(self):
        from repro.beagle import available_resources

        if not NUMBA_AVAILABLE:
            assert "numba" not in available_resources()


class TestBackendInfoMetric:
    def test_instance_records_backend_metric(self):
        from repro.obs import Recorder, set_recorder

        recorder = Recorder()
        previous = set_recorder(recorder)
        try:
            create_instance(*_case(n_tips=4, n_patterns=8), backend="blocked")
        finally:
            set_recorder(previous)
        text = recorder.metrics.to_prometheus()
        assert 'repro_backend_info{kind="cpu",name="blocked"' in text


class TestDocDrift:
    """docs/BACKENDS.md must describe the protocol actually shipped."""

    PROTOCOL_METHODS = [
        "create_workspace",
        "materialize_matrices",
        "update_partials_batch",
        "update_partials_single",
        "update_upper_partials",
        "rescale",
        "root_reduce",
    ]

    def test_contract_doc_exists(self):
        assert DOCS.is_file(), "docs/BACKENDS.md is missing"

    def test_every_protocol_method_documented(self):
        text = DOCS.read_text()
        for method in self.PROTOCOL_METHODS:
            assert method in text, f"{method} missing from docs/BACKENDS.md"

    def test_protocol_has_no_undocumented_methods(self):
        public = [
            name
            for name in dir(KernelBackend)
            if not name.startswith("_") and name != "info"
        ]
        assert sorted(public) == sorted(self.PROTOCOL_METHODS)

    def test_doc_names_parity_classes_and_env(self):
        text = DOCS.read_text()
        for needle in ("bit-identical", "tolerance", "REPRO_BACKEND", "--rsrc"):
            assert needle in text
