"""Guard against regenerated observability artifacts entering the tree.

``examples/traced_run.py`` and ``synthetictest --trace`` write Chrome
``trace_event`` JSON files. Those are run outputs, not sources: they must
stay out of version control (``.gitignore`` blocks ``*_trace.json``) and
the example must write to the temp dir, never the working tree. A
regenerated ``traced_run_trace.json`` at the repo root has slipped into
the tree before — this test is the tripwire.
"""

import re
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_files():
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable")
    return proc.stdout.splitlines()


def test_no_trace_artifacts_tracked():
    offenders = [f for f in _git_files() if f.endswith("_trace.json")]
    assert not offenders, f"trace artifacts tracked in git: {offenders}"


def test_gitignore_blocks_trace_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "*_trace.json" in gitignore.splitlines()


def test_traced_run_example_writes_to_tempdir():
    source = (REPO_ROOT / "examples" / "traced_run.py").read_text()
    match = re.search(r"TRACE_PATH\s*=\s*(.+)", source)
    assert match, "traced_run.py no longer defines TRACE_PATH"
    assert "tempfile.gettempdir()" in match.group(1), (
        "traced_run.py must write its trace under the system temp dir, "
        f"not {match.group(1)!r}"
    )
